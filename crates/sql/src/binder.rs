//! Name resolution: AST → typed [`SqlPlan`].
//!
//! The binder resolves table and column names against a
//! [`dbsens_engine::db::Database`] catalog, flattens the `FROM` clause into
//! a left-deep join tree in syntactic order (the optimizer reorders it
//! later), and turns aggregate queries into an explicit
//! [`SqlPlan::Agg`] + rebound select list. All errors carry source
//! positions.

use crate::ast::{self, BinOp, FromItem, JoinType, Query, SelectItem, Statement};
use crate::ir::{SqlAgg, SqlExpr, SqlPlan};
use crate::lexer::Pos;
use crate::SqlError;
use dbsens_engine::db::{Database, TableId};
use dbsens_engine::expr::CmpOp;
use dbsens_engine::plan::{AggFunc, JoinKind};
use dbsens_storage::schema::Schema;
use dbsens_storage::value::{Row, Value};

/// A fully bound statement, ready to optimize/lower (queries) or apply
/// directly to the heap (DML/DDL).
#[derive(Debug, Clone)]
pub enum BoundStatement {
    /// A `SELECT` query as a typed plan.
    Select(SqlPlan),
    /// `INSERT` with fully evaluated rows.
    Insert {
        /// Target table.
        table: TableId,
        /// Rows to append, already coerced to the schema.
        rows: Vec<Row>,
    },
    /// `UPDATE` with bound assignments.
    Update {
        /// Target table.
        table: TableId,
        /// `(column index, value expression over the base layout)`.
        sets: Vec<(usize, SqlExpr)>,
        /// Row predicate over the base layout.
        filter: Option<SqlExpr>,
    },
    /// `DELETE` with a bound predicate.
    Delete {
        /// Target table.
        table: TableId,
        /// Row predicate over the base layout.
        filter: Option<SqlExpr>,
    },
    /// `CREATE TABLE` with a resolved schema.
    CreateTable {
        /// New table name.
        table: String,
        /// Column definitions.
        schema: Schema,
    },
}

/// Binds one parsed statement against the database catalog.
pub fn bind(db: &Database, stmt: &Statement) -> Result<BoundStatement, SqlError> {
    match stmt {
        Statement::Select(q) => Ok(BoundStatement::Select(bind_query(db, q, None)?)),
        Statement::Insert { table, pos, rows } => bind_insert(db, table, *pos, rows),
        Statement::Update {
            table,
            pos,
            sets,
            filter,
        } => bind_update(db, table, *pos, sets, filter.as_ref()),
        Statement::Delete { table, pos, filter } => {
            let (tid, scope) = table_scope(db, table, *pos)?;
            let filter = filter
                .as_ref()
                .map(|e| BindCtx::scalar(db, &scope).bind(e))
                .transpose()?;
            Ok(BoundStatement::Delete { table: tid, filter })
        }
        Statement::CreateTable { table, pos, cols } => {
            if lookup_table(db, table).is_some() {
                return Err(pos.err(format!("table '{table}' already exists")));
            }
            let defs: Vec<(&str, dbsens_storage::schema::ColType)> =
                cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            Ok(BoundStatement::CreateTable {
                table: table.clone(),
                schema: Schema::new(&defs),
            })
        }
    }
}

fn lookup_table(db: &Database, name: &str) -> Option<TableId> {
    db.tables()
        .iter()
        .position(|t| t.name.eq_ignore_ascii_case(name))
        .map(TableId)
}

/// One visible table in a scope.
struct TableRef {
    /// Alias (or table name) in lowercase.
    alias: String,
    /// First column's offset in the row layout.
    offset: usize,
    /// Lowercased column names.
    cols: Vec<String>,
}

/// Name-resolution scope: the current query block's tables, plus an
/// optional enclosing block for correlated subqueries.
struct Scope<'a> {
    tables: Vec<TableRef>,
    outer: Option<&'a Scope<'a>>,
}

/// Where a column reference resolved.
enum Resolved {
    Local(usize),
    Outer(usize),
}

impl Scope<'_> {
    fn resolve(&self, qualifier: Option<&str>, name: &str, pos: Pos) -> Result<Resolved, SqlError> {
        let name_l = name.to_ascii_lowercase();
        let qual_l = qualifier.map(str::to_ascii_lowercase);
        let mut hit: Option<usize> = None;
        for t in &self.tables {
            if let Some(q) = &qual_l {
                if &t.alias != q {
                    continue;
                }
            }
            if let Some(ci) = t.cols.iter().position(|c| c == &name_l) {
                if hit.is_some() {
                    return Err(pos.err(format!("ambiguous column '{name}'")));
                }
                hit = Some(t.offset + ci);
            }
        }
        if let Some(abs) = hit {
            return Ok(Resolved::Local(abs));
        }
        if let Some(outer) = self.outer {
            return match outer.resolve(qualifier, name, pos)? {
                Resolved::Local(abs) => Ok(Resolved::Outer(abs)),
                Resolved::Outer(_) => {
                    Err(pos.err("only one level of subquery correlation is supported"))
                }
            };
        }
        match qualifier {
            Some(q) => Err(pos.err(format!("unknown column '{q}.{name}'"))),
            None => Err(pos.err(format!("unknown column '{name}'"))),
        }
    }
}

/// Binding mode for scalar expressions.
struct BindCtx<'a> {
    db: &'a Database,
    scope: &'a Scope<'a>,
    /// `Some` when binding over an aggregate's output: group-key columns
    /// (absolute input positions) and the bound aggregate list. A plain
    /// column must then be a group key, and `Agg` nodes map to output
    /// positions.
    agg: Option<&'a AggLayout>,
}

/// Output layout of an [`SqlPlan::Agg`] node during rebinding.
struct AggLayout {
    group_cols: Vec<usize>,
    aggs: Vec<SqlAgg>,
}

impl<'a> BindCtx<'a> {
    fn scalar(db: &'a Database, scope: &'a Scope<'a>) -> Self {
        BindCtx {
            db,
            scope,
            agg: None,
        }
    }

    fn bind(&self, e: &ast::Expr) -> Result<SqlExpr, SqlError> {
        match e {
            ast::Expr::Col { table, name, pos } => {
                let resolved = self.scope.resolve(table.as_deref(), name, *pos)?;
                match (resolved, &self.agg) {
                    (Resolved::Local(abs), None) => Ok(SqlExpr::Col(abs)),
                    (Resolved::Local(abs), Some(layout)) => {
                        match layout.group_cols.iter().position(|&g| g == abs) {
                            Some(k) => Ok(SqlExpr::Col(k)),
                            None => Err(pos.err(format!(
                                "column '{name}' must appear in GROUP BY or inside an aggregate"
                            ))),
                        }
                    }
                    (Resolved::Outer(abs), _) => Ok(SqlExpr::OuterCol(abs)),
                }
            }
            ast::Expr::Int(v) => Ok(SqlExpr::Lit(Value::Int(*v))),
            ast::Expr::Float(v) => Ok(SqlExpr::Lit(Value::Float(*v))),
            ast::Expr::Str(s) => Ok(SqlExpr::Lit(Value::Str(s.clone()))),
            ast::Expr::Null => Ok(SqlExpr::Lit(Value::Null)),
            ast::Expr::Bin(op, a, b) => {
                let (a, b) = (Box::new(self.bind(a)?), Box::new(self.bind(b)?));
                Ok(match op {
                    BinOp::Add => SqlExpr::Add(a, b),
                    BinOp::Sub => SqlExpr::Sub(a, b),
                    BinOp::Mul => SqlExpr::Mul(a, b),
                    BinOp::Div => SqlExpr::Div(a, b),
                })
            }
            ast::Expr::Cmp(op, a, b) => Ok(SqlExpr::Cmp(
                *op,
                Box::new(self.bind(a)?),
                Box::new(self.bind(b)?),
            )),
            ast::Expr::And(a, b) => Ok(SqlExpr::And(
                Box::new(self.bind(a)?),
                Box::new(self.bind(b)?),
            )),
            ast::Expr::Or(a, b) => Ok(SqlExpr::Or(
                Box::new(self.bind(a)?),
                Box::new(self.bind(b)?),
            )),
            ast::Expr::Not(a) => Ok(SqlExpr::Not(Box::new(self.bind(a)?))),
            ast::Expr::Like { expr, pattern, pos } => {
                let inner = Box::new(self.bind(expr)?);
                let stripped = pattern.trim_matches('%');
                if stripped.contains('%') {
                    return Err(pos.err(format!(
                        "unsupported LIKE pattern '{pattern}' (use 'prefix%', '%infix%', or an exact string)"
                    )));
                }
                if pattern.starts_with('%') && pattern.ends_with('%') && pattern.len() >= 2 {
                    Ok(SqlExpr::Contains(inner, stripped.to_owned()))
                } else if let Some(prefix) = pattern.strip_suffix('%') {
                    Ok(SqlExpr::StartsWith(inner, prefix.to_owned()))
                } else if pattern.starts_with('%') {
                    Err(pos.err(format!(
                        "unsupported LIKE pattern '{pattern}' (suffix matches are not supported)"
                    )))
                } else {
                    Ok(SqlExpr::Cmp(
                        CmpOp::Eq,
                        inner,
                        Box::new(SqlExpr::Lit(Value::Str(pattern.clone()))),
                    ))
                }
            }
            ast::Expr::InList(a, list) => {
                let inner = Box::new(self.bind(a)?);
                let mut values = Vec::with_capacity(list.len());
                for item in list {
                    values.push(self.constant(item)?);
                }
                Ok(SqlExpr::InList(inner, values))
            }
            ast::Expr::Between(a, lo, hi) => {
                let inner = self.bind(a)?;
                match (self.constant(lo), self.constant(hi)) {
                    (Ok(lo), Ok(hi)) => Ok(SqlExpr::Between(Box::new(inner), lo, hi)),
                    _ => {
                        // Non-literal bounds: expand to lo <= a AND a <= hi.
                        let lo = self.bind(lo)?;
                        let hi = self.bind(hi)?;
                        Ok(SqlExpr::And(
                            Box::new(SqlExpr::cmp(CmpOp::Ge, inner.clone(), lo)),
                            Box::new(SqlExpr::cmp(CmpOp::Le, inner, hi)),
                        ))
                    }
                }
            }
            ast::Expr::IsNull { expr, negated } => {
                let test = SqlExpr::IsNull(Box::new(self.bind(expr)?));
                Ok(if *negated {
                    SqlExpr::Not(Box::new(test))
                } else {
                    test
                })
            }
            ast::Expr::Agg { func, arg, pos } => match &self.agg {
                None => Err(pos.err("aggregate functions are not allowed here")),
                Some(layout) => {
                    let spec = bind_agg_spec(self.db, self.scope, *func, arg.as_deref(), *pos)?;
                    match layout.aggs.iter().position(|a| *a == spec) {
                        Some(k) => Ok(SqlExpr::Col(layout.group_cols.len() + k)),
                        None => Err(pos.err("aggregate was not collected during planning")),
                    }
                }
            },
            ast::Expr::Subquery { query, pos } => {
                let plan = bind_query(self.db, query, Some(self.scope))?;
                if plan.arity() != 1 {
                    return Err(pos.err(format!(
                        "scalar subquery must return exactly one column, got {}",
                        plan.arity()
                    )));
                }
                Ok(SqlExpr::Subquery(Box::new(plan)))
            }
        }
    }

    /// Binds an expression that must be a constant (no column references),
    /// folding it to a [`Value`].
    fn constant(&self, e: &ast::Expr) -> Result<Value, SqlError> {
        let bound = BindCtx::scalar(self.db, &EMPTY_SCOPE).bind(e)?;
        fold_constant(&bound).ok_or_else(|| {
            e.pos()
                .unwrap_or(Pos { line: 1, col: 1 })
                .err("expected a constant expression")
        })
    }
}

static EMPTY_SCOPE: Scope<'static> = Scope {
    tables: Vec::new(),
    outer: None,
};

/// Evaluates a column-free [`SqlExpr`] to a value via the engine's
/// expression evaluator.
fn fold_constant(e: &SqlExpr) -> Option<Value> {
    if e.has_subquery() {
        return None;
    }
    let mut has_col = false;
    e.for_each_col(&mut |_| has_col = true);
    e.for_each_outer(&mut |_| has_col = true);
    if has_col {
        return None;
    }
    let engine = crate::lower::to_engine_expr(e).ok()?;
    Some(engine.eval(&Vec::new()))
}

fn bind_agg_spec(
    db: &Database,
    scope: &Scope<'_>,
    func: AggFunc,
    arg: Option<&ast::Expr>,
    pos: Pos,
) -> Result<SqlAgg, SqlError> {
    let expr = match arg {
        // COUNT(*) counts rows; the engine ignores the expression.
        None => SqlExpr::Lit(Value::Int(1)),
        Some(a) => {
            if contains_agg(a) {
                return Err(pos.err("aggregates cannot be nested"));
            }
            BindCtx::scalar(db, scope).bind(a)?
        }
    };
    Ok(SqlAgg { func, expr })
}

/// Does the expression contain an aggregate call (not counting those
/// inside subqueries, which belong to the inner query block)?
fn contains_agg(e: &ast::Expr) -> bool {
    match e {
        ast::Expr::Agg { .. } => true,
        ast::Expr::Subquery { .. } => false,
        ast::Expr::Col { .. }
        | ast::Expr::Int(_)
        | ast::Expr::Float(_)
        | ast::Expr::Str(_)
        | ast::Expr::Null => false,
        ast::Expr::Bin(_, a, b) | ast::Expr::Cmp(_, a, b) => contains_agg(a) || contains_agg(b),
        ast::Expr::And(a, b) | ast::Expr::Or(a, b) => contains_agg(a) || contains_agg(b),
        ast::Expr::Not(a) => contains_agg(a),
        ast::Expr::Like { expr, .. } | ast::Expr::IsNull { expr, .. } => contains_agg(expr),
        ast::Expr::InList(a, list) => contains_agg(a) || list.iter().any(contains_agg),
        ast::Expr::Between(a, lo, hi) => contains_agg(a) || contains_agg(lo) || contains_agg(hi),
    }
}

/// Collects the distinct aggregate calls in `e` into `out`, in first-seen
/// order, binding their arguments over the pre-aggregation scope.
fn collect_aggs(
    db: &Database,
    scope: &Scope<'_>,
    e: &ast::Expr,
    out: &mut Vec<SqlAgg>,
) -> Result<(), SqlError> {
    match e {
        ast::Expr::Agg { func, arg, pos } => {
            let spec = bind_agg_spec(db, scope, *func, arg.as_deref(), *pos)?;
            if !out.contains(&spec) {
                out.push(spec);
            }
            Ok(())
        }
        ast::Expr::Subquery { .. } => Ok(()),
        ast::Expr::Col { .. }
        | ast::Expr::Int(_)
        | ast::Expr::Float(_)
        | ast::Expr::Str(_)
        | ast::Expr::Null => Ok(()),
        ast::Expr::Bin(_, a, b) | ast::Expr::Cmp(_, a, b) => {
            collect_aggs(db, scope, a, out)?;
            collect_aggs(db, scope, b, out)
        }
        ast::Expr::And(a, b) | ast::Expr::Or(a, b) => {
            collect_aggs(db, scope, a, out)?;
            collect_aggs(db, scope, b, out)
        }
        ast::Expr::Not(a) => collect_aggs(db, scope, a, out),
        ast::Expr::Like { expr, .. } | ast::Expr::IsNull { expr, .. } => {
            collect_aggs(db, scope, expr, out)
        }
        ast::Expr::InList(a, list) => {
            collect_aggs(db, scope, a, out)?;
            for item in list {
                collect_aggs(db, scope, item, out)?;
            }
            Ok(())
        }
        ast::Expr::Between(a, lo, hi) => {
            collect_aggs(db, scope, a, out)?;
            collect_aggs(db, scope, lo, out)?;
            collect_aggs(db, scope, hi, out)
        }
    }
}

/// Binds one query block to a plan, with `outer` set for subqueries.
fn bind_query(db: &Database, q: &Query, outer: Option<&Scope<'_>>) -> Result<SqlPlan, SqlError> {
    // FROM: build the scope and the left-deep join tree in syntactic order.
    let mut tables = Vec::new();
    for item in &q.from {
        let tid = lookup_table(db, &item.table)
            .ok_or_else(|| item.pos.err(format!("unknown table '{}'", item.table)))?;
        let schema = db.table(tid).heap.schema();
        let alias = item
            .alias
            .as_deref()
            .unwrap_or(&item.table)
            .to_ascii_lowercase();
        if tables.iter().any(|t: &TableRef| t.alias == alias) {
            return Err(item
                .pos
                .err(format!("duplicate table alias '{alias}' in FROM")));
        }
        let offset = tables
            .iter()
            .map(|t: &TableRef| t.cols.len())
            .sum::<usize>();
        tables.push(TableRef {
            alias,
            offset,
            cols: schema
                .columns()
                .iter()
                .map(|c| c.name.to_ascii_lowercase())
                .collect(),
        });
    }
    let scope = Scope { tables, outer };

    let mut plan = scan_of(db, &q.from[0])?;
    let mut left_arity = plan.arity();
    for item in q.from.iter().skip(1) {
        let mut right = scan_of(db, item)?;
        let right_arity = right.arity();
        let (join_type, on) = item
            .join
            .as_ref()
            .expect("parser attaches ON to every joined table");
        // Bind ON over the layout visible so far: joined tables 0..=idx.
        // Columns of later FROM entries are out of range here.
        let visible = left_arity + right_arity;
        let mut conjuncts = Vec::new();
        let bound_on = BindCtx::scalar(db, &scope).bind(on)?;
        let mut max_ref = 0usize;
        bound_on.for_each_col(&mut |c| max_ref = max_ref.max(c));
        if max_ref >= visible {
            return Err(item.pos.err(format!(
                "ON condition for '{}' references a table joined later",
                item.table
            )));
        }
        bound_on.split_conjuncts(&mut conjuncts);
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut right_filters = Vec::new();
        let mut post_filters = Vec::new();
        for conj in conjuncts {
            let (mut min_c, mut max_c, mut any) = (usize::MAX, 0, false);
            conj.for_each_col(&mut |c| {
                min_c = min_c.min(c);
                max_c = max_c.max(c);
                any = true;
            });
            if let SqlExpr::Cmp(CmpOp::Eq, a, b) = &conj {
                if let (SqlExpr::Col(x), SqlExpr::Col(y)) = (a.as_ref(), b.as_ref()) {
                    let (l, r) = if *x < *y { (*x, *y) } else { (*y, *x) };
                    if l < left_arity && r >= left_arity {
                        left_keys.push(l);
                        right_keys.push(r - left_arity);
                        continue;
                    }
                }
            }
            if any && min_c >= left_arity {
                // Right-only: filter the build side before the join
                // (identical semantics for inner and left joins).
                right_filters.push(conj.map_cols(&mut |c| c - left_arity));
            } else if *join_type == JoinType::Inner {
                post_filters.push(conj);
            } else {
                return Err(item.pos.err(
                    "LEFT JOIN ON supports equalities between the two sides \
                     plus conditions on the joined table only",
                ));
            }
        }
        if left_keys.is_empty() {
            return Err(item.pos.err(format!(
                "join with '{}' needs at least one equality between the two sides",
                item.table
            )));
        }
        if let Some(pred) = SqlExpr::conjoin(right_filters) {
            right = SqlPlan::Filter {
                input: Box::new(right),
                pred,
            };
        }
        plan = SqlPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            left_keys,
            right_keys,
            kind: match join_type {
                JoinType::Inner => JoinKind::Inner,
                JoinType::Left => JoinKind::LeftOuter,
            },
        };
        if let Some(pred) = SqlExpr::conjoin(post_filters) {
            plan = SqlPlan::Filter {
                input: Box::new(plan),
                pred,
            };
        }
        left_arity += right_arity;
    }

    // WHERE.
    if let Some(filter) = &q.filter {
        if contains_agg(filter) {
            return Err(filter
                .pos()
                .unwrap_or(Pos { line: 1, col: 1 })
                .err("aggregates are not allowed in WHERE (use HAVING)"));
        }
        let pred = BindCtx::scalar(db, &scope).bind(filter)?;
        plan = SqlPlan::Filter {
            input: Box::new(plan),
            pred,
        };
    }

    // Aggregation.
    let has_aggs = q.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => contains_agg(expr),
        SelectItem::Star => false,
    }) || q.having.as_ref().is_some_and(contains_agg)
        || q.order_by.iter().any(|(e, _)| contains_agg(e));
    let grouped = !q.group_by.is_empty() || has_aggs;

    let mut agg_layout = None;
    if grouped {
        let mut group_cols = Vec::new();
        for g in &q.group_by {
            match BindCtx::scalar(db, &scope).bind(g)? {
                SqlExpr::Col(i) => group_cols.push(i),
                _ => {
                    return Err(g
                        .pos()
                        .unwrap_or(Pos { line: 1, col: 1 })
                        .err("GROUP BY supports plain columns only"))
                }
            }
        }
        let mut aggs = Vec::new();
        for item in &q.items {
            match item {
                SelectItem::Star => {
                    return Err(Pos { line: 1, col: 1 }
                        .err("SELECT * cannot be combined with GROUP BY or aggregates"))
                }
                SelectItem::Expr { expr, .. } => collect_aggs(db, &scope, expr, &mut aggs)?,
            }
        }
        if let Some(h) = &q.having {
            collect_aggs(db, &scope, h, &mut aggs)?;
        }
        for (e, _) in &q.order_by {
            collect_aggs(db, &scope, e, &mut aggs)?;
        }
        if aggs.is_empty() {
            // Pure GROUP BY with no aggregates: count rows so the node is
            // well-formed; the count column is projected away below.
            aggs.push(SqlAgg {
                func: AggFunc::Count,
                expr: SqlExpr::Lit(Value::Int(1)),
            });
        }
        plan = SqlPlan::Agg {
            input: Box::new(plan),
            group_by: group_cols.clone(),
            aggs: aggs.clone(),
        };
        agg_layout = Some(AggLayout { group_cols, aggs });
    } else if let Some(h) = &q.having {
        return Err(h
            .pos()
            .unwrap_or(Pos { line: 1, col: 1 })
            .err("HAVING requires GROUP BY or aggregates"));
    }

    let ctx = BindCtx {
        db,
        scope: &scope,
        agg: agg_layout.as_ref(),
    };

    // HAVING runs over the aggregate output, before the select projection.
    if let Some(h) = &q.having {
        let pred = ctx.bind(h)?;
        plan = SqlPlan::Filter {
            input: Box::new(plan),
            pred,
        };
    }

    // Select list → projection (skipped for a lone `SELECT *`).
    let lone_star = matches!(q.items.as_slice(), [SelectItem::Star]);
    let mut out_exprs = Vec::new();
    let mut out_names: Vec<Option<String>> = Vec::new();
    if !lone_star {
        for item in &q.items {
            match item {
                SelectItem::Star => {
                    for (i, t) in scope.tables.iter().enumerate() {
                        let _ = i;
                        for (ci, name) in t.cols.iter().enumerate() {
                            out_exprs.push(SqlExpr::Col(t.offset + ci));
                            out_names.push(Some(name.clone()));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    out_exprs.push(ctx.bind(expr)?);
                    let name = alias.clone().or_else(|| match expr {
                        ast::Expr::Col { name, .. } => Some(name.clone()),
                        _ => None,
                    });
                    out_names.push(name.map(|n| n.to_ascii_lowercase()));
                }
            }
        }
        plan = SqlPlan::Project {
            input: Box::new(plan),
            exprs: out_exprs.clone(),
        };
    }

    // ORDER BY binds over the projected output: by 1-based ordinal, alias,
    // or an expression equal to a select item.
    if !q.order_by.is_empty() {
        let out_arity = plan.arity();
        let mut keys = Vec::new();
        for (e, desc) in &q.order_by {
            let idx = match e {
                ast::Expr::Int(k) if *k >= 1 && (*k as usize) <= out_arity => *k as usize - 1,
                ast::Expr::Col {
                    table: None,
                    name,
                    pos,
                } if {
                    let n = name.to_ascii_lowercase();
                    out_names.iter().any(|o| o.as_deref() == Some(n.as_str()))
                } =>
                {
                    let n = name.to_ascii_lowercase();
                    let matches: Vec<usize> = out_names
                        .iter()
                        .enumerate()
                        .filter(|(_, o)| o.as_deref() == Some(n.as_str()))
                        .map(|(i, _)| i)
                        .collect();
                    if matches.len() > 1 {
                        return Err(pos.err(format!("ambiguous ORDER BY column '{name}'")));
                    }
                    matches[0]
                }
                _ => {
                    if lone_star {
                        match ctx.bind(e)? {
                            SqlExpr::Col(i) => i,
                            _ => {
                                return Err(e
                                    .pos()
                                    .unwrap_or(Pos { line: 1, col: 1 })
                                    .err("ORDER BY over SELECT * supports plain columns only"))
                            }
                        }
                    } else {
                        let bound = ctx.bind(e)?;
                        match out_exprs.iter().position(|o| *o == bound) {
                            Some(i) => i,
                            None => {
                                return Err(e.pos().unwrap_or(Pos { line: 1, col: 1 }).err(
                                    "ORDER BY expression must appear in the select list \
                                     (or use its alias or ordinal)",
                                ))
                            }
                        }
                    }
                }
            };
            keys.push((idx, *desc));
        }
        plan = SqlPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }

    if let Some(n) = q.limit {
        plan = SqlPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

fn scan_of(db: &Database, item: &FromItem) -> Result<SqlPlan, SqlError> {
    let tid = lookup_table(db, &item.table)
        .ok_or_else(|| item.pos.err(format!("unknown table '{}'", item.table)))?;
    let table = db.table(tid);
    Ok(SqlPlan::Scan {
        table: tid,
        table_name: table.name.clone(),
        base_arity: table.heap.schema().len(),
        filter: None,
        project: None,
    })
}

fn table_scope(db: &Database, name: &str, pos: Pos) -> Result<(TableId, Scope<'static>), SqlError> {
    let tid = lookup_table(db, name).ok_or_else(|| pos.err(format!("unknown table '{name}'")))?;
    let table = db.table(tid);
    let scope = Scope {
        tables: vec![TableRef {
            alias: table.name.to_ascii_lowercase(),
            offset: 0,
            cols: table
                .heap
                .schema()
                .columns()
                .iter()
                .map(|c| c.name.to_ascii_lowercase())
                .collect(),
        }],
        outer: None,
    };
    Ok((tid, scope))
}

fn bind_insert(
    db: &Database,
    table: &str,
    pos: Pos,
    rows: &[Vec<ast::Expr>],
) -> Result<BoundStatement, SqlError> {
    let tid = lookup_table(db, table).ok_or_else(|| pos.err(format!("unknown table '{table}'")))?;
    let schema = db.table(tid).heap.schema();
    let ctx = BindCtx::scalar(db, &EMPTY_SCOPE);
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != schema.len() {
            return Err(pos.err(format!(
                "INSERT row has {} values but table '{table}' has {} columns",
                row.len(),
                schema.len()
            )));
        }
        let mut values = Vec::with_capacity(row.len());
        for (e, col) in row.iter().zip(schema.columns()) {
            let v = ctx.constant(e)?;
            values.push(coerce(v, col.ty).map_err(|got| {
                e.pos().unwrap_or(pos).err(format!(
                    "value of type {got} does not fit column '{}' ({:?})",
                    col.name, col.ty
                ))
            })?);
        }
        out.push(values);
    }
    Ok(BoundStatement::Insert {
        table: tid,
        rows: out,
    })
}

fn bind_update(
    db: &Database,
    table: &str,
    pos: Pos,
    sets: &[(String, Pos, ast::Expr)],
    filter: Option<&ast::Expr>,
) -> Result<BoundStatement, SqlError> {
    let (tid, scope) = table_scope(db, table, pos)?;
    let schema = db.table(tid).heap.schema();
    let ctx = BindCtx::scalar(db, &scope);
    let mut bound_sets = Vec::with_capacity(sets.len());
    for (col, cpos, e) in sets {
        let col_l = col.to_ascii_lowercase();
        let idx = schema
            .columns()
            .iter()
            .position(|c| c.name.to_ascii_lowercase() == col_l)
            .ok_or_else(|| cpos.err(format!("unknown column '{col}' in table '{table}'")))?;
        bound_sets.push((idx, ctx.bind(e)?));
    }
    let filter = filter.map(|e| ctx.bind(e)).transpose()?;
    Ok(BoundStatement::Update {
        table: tid,
        sets: bound_sets,
        filter,
    })
}

/// Coerces `v` to a column type (Int widens to Float; NULL fits anything).
/// Returns the value's type name on mismatch.
fn coerce(v: Value, ty: dbsens_storage::schema::ColType) -> Result<Value, &'static str> {
    use dbsens_storage::schema::ColType;
    match (v, ty) {
        (Value::Null, _) => Ok(Value::Null),
        (Value::Int(x), ColType::Int) => Ok(Value::Int(x)),
        (Value::Int(x), ColType::Float) => Ok(Value::Float(x as f64)),
        (Value::Float(x), ColType::Float) => Ok(Value::Float(x)),
        (Value::Str(s), ColType::Str(_)) => Ok(Value::Str(s)),
        (Value::Float(_), _) => Err("FLOAT"),
        (Value::Int(_), _) => Err("INTEGER"),
        (Value::Str(_), _) => Err("TEXT"),
    }
}
