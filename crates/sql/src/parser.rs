//! Hand-rolled recursive-descent parser for the SQL subset.
//!
//! The full grammar (EBNF) is documented in `docs/SQL.md`. Errors are
//! position-annotated [`SqlError`]s; the parser never panics on arbitrary
//! input.

use crate::ast::{BinOp, Expr, FromItem, JoinType, Query, SelectItem, Statement};
use crate::lexer::{lex, Pos, Tok, Token};
use crate::SqlError;
use dbsens_engine::expr::CmpOp;
use dbsens_engine::plan::AggFunc;
use dbsens_storage::schema::ColType;

/// Parses a script of one or more `;`-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>, SqlError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, idx: 0 };
    let mut out = Vec::new();
    loop {
        while p.peek() == &Tok::Semi {
            p.bump();
        }
        if p.peek() == &Tok::Eof {
            break;
        }
        out.push(p.statement()?);
        match p.peek() {
            Tok::Semi | Tok::Eof => {}
            other => {
                return Err(p
                    .pos()
                    .err(format!("expected ';' or end of input, found '{other}'")))
            }
        }
    }
    if out.is_empty() {
        return Err(Pos { line: 1, col: 1 }.err("empty statement"));
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.idx].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.idx + 1).min(self.tokens.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.idx].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.idx].clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consumes the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self
                .pos()
                .err(format!("expected {kw}, found '{}'", self.peek())))
        }
    }

    fn expect_tok(&mut self, tok: Tok) -> Result<(), SqlError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            Err(self
                .pos()
                .err(format!("expected '{tok}', found '{}'", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), SqlError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok((s, pos))
            }
            other => Err(pos.err(format!("expected {what}, found '{other}'"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.at_kw("SELECT") {
            return Ok(Statement::Select(self.query()?));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("CREATE") {
            return self.create_table();
        }
        Err(self.pos().err(format!(
            "expected SELECT, INSERT, UPDATE, DELETE, or CREATE, found '{}'",
            self.peek()
        )))
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect_kw("SELECT")?;
        let mut items = Vec::new();
        loop {
            if self.peek() == &Tok::Star {
                self.bump();
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident("alias")?.0)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if self.peek() != &Tok::Comma {
                break;
            }
            self.bump();
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref(None)?];
        loop {
            let join = if self.eat_kw("JOIN")
                || (self.eat_kw("INNER") && {
                    self.expect_kw("JOIN")?;
                    true
                }) {
                JoinType::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinType::Left
            } else {
                break;
            };
            let mut item = self.table_ref(Some(join))?;
            self.expect_kw("ON")?;
            let cond = self.expr()?;
            if let Some((jt, _)) = item.join.take() {
                item.join = Some((jt, cond));
            }
            from.push(item);
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if self.peek() != &Tok::Comma {
                    break;
                }
                self.bump();
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if self.peek() != &Tok::Comma {
                    break;
                }
                self.bump();
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            let pos = self.pos();
            match self.bump().tok {
                Tok::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(pos.err(format!("LIMIT expects a row count, found '{other}'"))),
            }
        } else {
            None
        };
        Ok(Query {
            items,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self, join: Option<JoinType>) -> Result<FromItem, SqlError> {
        let (table, pos) = self.ident("table name")?;
        let alias = if self.eat_kw("AS") || matches!(self.peek(), Tok::Ident(s) if !is_reserved(s))
        {
            Some(self.ident("alias")?.0)
        } else {
            None
        };
        // The caller patches the real ON condition in; a placeholder
        // keeps the type simple.
        Ok(FromItem {
            table,
            pos,
            alias,
            join: join.map(|j| (j, Expr::Null)),
        })
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("INTO")?;
        let (table, pos) = self.ident("table name")?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_tok(Tok::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if self.peek() != &Tok::Comma {
                    break;
                }
                self.bump();
            }
            self.expect_tok(Tok::RParen)?;
            rows.push(row);
            if self.peek() != &Tok::Comma {
                break;
            }
            self.bump();
        }
        Ok(Statement::Insert { table, pos, rows })
    }

    fn update(&mut self) -> Result<Statement, SqlError> {
        let (table, pos) = self.ident("table name")?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let (col, cpos) = self.ident("column name")?;
            self.expect_tok(Tok::Eq)?;
            sets.push((col, cpos, self.expr()?));
            if self.peek() != &Tok::Comma {
                break;
            }
            self.bump();
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            pos,
            sets,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("FROM")?;
        let (table, pos) = self.ident("table name")?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, pos, filter })
    }

    fn create_table(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("TABLE")?;
        let (table, pos) = self.ident("table name")?;
        self.expect_tok(Tok::LParen)?;
        let mut cols = Vec::new();
        loop {
            let (name, _) = self.ident("column name")?;
            cols.push((name, self.col_type()?));
            if self.peek() != &Tok::Comma {
                break;
            }
            self.bump();
        }
        self.expect_tok(Tok::RParen)?;
        Ok(Statement::CreateTable { table, pos, cols })
    }

    fn col_type(&mut self) -> Result<ColType, SqlError> {
        let (name, pos) = self.ident("column type")?;
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(ColType::Int),
            "FLOAT" | "REAL" | "DOUBLE" => Ok(ColType::Float),
            "TEXT" => Ok(ColType::Str(24)),
            "VARCHAR" => {
                let mut width = 24u32;
                if self.peek() == &Tok::LParen {
                    self.bump();
                    match self.bump().tok {
                        Tok::Int(n) if n > 0 => width = n.min(u32::MAX as i64) as u32,
                        other => {
                            return Err(
                                pos.err(format!("VARCHAR width must be a count, found '{other}'"))
                            )
                        }
                    }
                    self.expect_tok(Tok::RParen)?;
                }
                Ok(ColType::Str(width))
            }
            _ => Err(pos.err(format!(
                "unknown column type '{name}' (expected INTEGER, FLOAT, TEXT, or VARCHAR)"
            ))),
        }
    }

    // --- expressions, lowest to highest precedence -----------------------

    fn expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.and_expr()?;
        while self.eat_kw("OR") {
            e = Expr::Or(Box::new(e), Box::new(self.and_expr()?));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.not_expr()?;
        while self.eat_kw("AND") {
            e = Expr::And(Box::new(e), Box::new(self.not_expr()?));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, SqlError> {
        let lhs = self.additive()?;
        let cmp = match self.peek() {
            Tok::Eq => Some(CmpOp::Eq),
            Tok::Ne => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.bump();
            let rhs = self.additive()?;
            return Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        let negated = {
            let save = self.idx;
            if self.eat_kw("NOT") {
                if self.at_kw("LIKE") || self.at_kw("IN") || self.at_kw("BETWEEN") {
                    true
                } else {
                    self.idx = save;
                    return Ok(lhs);
                }
            } else {
                false
            }
        };
        let wrap = |e: Expr| {
            if negated {
                Expr::Not(Box::new(e))
            } else {
                e
            }
        };
        if self.eat_kw("LIKE") {
            let pos = self.pos();
            return match self.bump().tok {
                Tok::Str(pattern) => Ok(wrap(Expr::Like {
                    expr: Box::new(lhs),
                    pattern,
                    pos,
                })),
                other => Err(pos.err(format!("LIKE expects a string pattern, found '{other}'"))),
            };
        }
        if self.eat_kw("IN") {
            self.expect_tok(Tok::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if self.peek() != &Tok::Comma {
                    break;
                }
                self.bump();
            }
            self.expect_tok(Tok::RParen)?;
            return Ok(wrap(Expr::InList(Box::new(lhs), list)));
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(wrap(Expr::Between(
                Box::new(lhs),
                Box::new(lo),
                Box::new(hi),
            )));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            e = Expr::Bin(op, Box::new(e), Box::new(self.multiplicative()?));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            e = Expr::Bin(op, Box::new(e), Box::new(self.unary()?));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.peek() == &Tok::Minus {
            self.bump();
            return match self.unary()? {
                Expr::Int(v) => Ok(Expr::Int(-v)),
                Expr::Float(v) => Ok(Expr::Float(-v)),
                e => Ok(Expr::Bin(BinOp::Sub, Box::new(Expr::Int(0)), Box::new(e))),
            };
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::LParen => {
                self.bump();
                if self.at_kw("SELECT") {
                    let query = self.query()?;
                    self.expect_tok(Tok::RParen)?;
                    return Ok(Expr::Subquery {
                        query: Box::new(query),
                        pos,
                    });
                }
                let e = self.expr()?;
                self.expect_tok(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(word) => {
                if word.eq_ignore_ascii_case("NULL") {
                    self.bump();
                    return Ok(Expr::Null);
                }
                if word.eq_ignore_ascii_case("DATE") {
                    if let Tok::Str(_) = self.peek2() {
                        self.bump();
                        let pos = self.pos();
                        let Tok::Str(text) = self.bump().tok else {
                            unreachable!("peeked a string");
                        };
                        return Ok(Expr::Int(parse_date(&text, pos)?));
                    }
                }
                if let Some(func) = agg_func(&word) {
                    if self.peek2() == &Tok::LParen {
                        self.bump();
                        self.bump();
                        let arg = if self.peek() == &Tok::Star {
                            if func != AggFunc::Count {
                                return Err(pos.err("'*' is only valid in COUNT(*)"));
                            }
                            self.bump();
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect_tok(Tok::RParen)?;
                        return Ok(Expr::Agg { func, arg, pos });
                    }
                }
                self.bump();
                if self.peek() == &Tok::Dot {
                    self.bump();
                    let (name, _) = self.ident("column name")?;
                    return Ok(Expr::Col {
                        table: Some(word),
                        name,
                        pos,
                    });
                }
                Ok(Expr::Col {
                    table: None,
                    name: word,
                    pos,
                })
            }
            other => Err(pos.err(format!("expected an expression, found '{other}'"))),
        }
    }
}

fn agg_func(word: &str) -> Option<AggFunc> {
    match word.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

/// Keywords that terminate a table reference, so `FROM t WHERE ...` does
/// not read `WHERE` as an alias.
fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "LEFT", "ON", "AS",
        "SELECT", "FROM", "AND", "OR", "NOT", "SET", "VALUES", "UNION", "OUTER",
    ];
    RESERVED.iter().any(|r| r.eq_ignore_ascii_case(word))
}

/// Days per month in a non-leap year (matches the workload generators'
/// day-number encoding with epoch 1992-01-01).
const MONTH_DAYS: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Parses `'YYYY-MM-DD'` into the day-number encoding used by the
/// workload data (days since 1992-01-01).
fn parse_date(text: &str, pos: Pos) -> Result<i64, SqlError> {
    let bad = || {
        pos.err(format!(
            "bad date '{text}' (expected 'YYYY-MM-DD', year >= 1992)"
        ))
    };
    let parts: Vec<&str> = text.split('-').collect();
    if parts.len() != 3 {
        return Err(bad());
    }
    let y: i64 = parts[0].parse().map_err(|_| bad())?;
    let m: i64 = parts[1].parse().map_err(|_| bad())?;
    let d: i64 = parts[2].parse().map_err(|_| bad())?;
    if y < 1992 || !(1..=12).contains(&m) || d < 1 {
        return Err(bad());
    }
    let month_len = MONTH_DAYS[(m - 1) as usize] + i64::from(m == 2 && is_leap(y));
    if d > month_len {
        return Err(bad());
    }
    let mut days = 0;
    for yy in 1992..y {
        days += if is_leap(yy) { 366 } else { 365 };
    }
    for (mm, &mdays) in MONTH_DAYS.iter().enumerate().take((m - 1) as usize) {
        days += mdays;
        if mm == 1 && is_leap(y) {
            days += 1;
        }
    }
    Ok(days + (d - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_query() {
        let stmts = parse_script(
            "SELECT a, SUM(b * 2) AS total FROM t JOIN u ON t.id = u.id \
             WHERE a > 5 AND name LIKE 'x%' GROUP BY a HAVING SUM(b * 2) > 10 \
             ORDER BY total DESC LIMIT 3",
        )
        .unwrap();
        assert_eq!(stmts.len(), 1);
        let Statement::Select(q) = &stmts[0] else {
            panic!("expected select");
        };
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.from.len(), 2);
        assert!(q.filter.is_some() && q.having.is_some());
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn date_literals_match_the_workload_epoch() {
        let stmts = parse_script("SELECT DATE '1992-01-01', DATE '1995-03-15' FROM t").unwrap();
        let Statement::Select(q) = &stmts[0] else {
            panic!();
        };
        let SelectItem::Expr {
            expr: Expr::Int(a), ..
        } = &q.items[0]
        else {
            panic!();
        };
        let SelectItem::Expr {
            expr: Expr::Int(b), ..
        } = &q.items[1]
        else {
            panic!();
        };
        assert_eq!(*a, 0);
        // 1992 (leap) + 1993 + 1994 + Jan + Feb 1995 + 14.
        assert_eq!(*b, 366 + 365 + 365 + 31 + 28 + 14);
    }

    #[test]
    fn errors_are_position_annotated() {
        let e = parse_script("SELECT a FROM").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.col, 14);
        let e = parse_script("SELECT a\nFROM t WHERE ???").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn multiple_statements_split_on_semicolons() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); SELECT a FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse_script("SELECT a FROM t extra! tokens").unwrap_err();
        assert!(
            e.msg.contains("unexpected character") || e.msg.contains("expected"),
            "{e}"
        );
    }
}
