//! Typed logical plans produced by the binder.
//!
//! [`SqlPlan`] is the SQL frontend's own intermediate representation. It is
//! richer than [`dbsens_engine::plan::Logical`] in exactly one way — scalar
//! subqueries and outer-column references are first-class — and carries no
//! cardinality estimates; those are attached during lowering so that
//! optimizer rewrites cannot leave stale numbers behind.

use dbsens_engine::db::TableId;
use dbsens_engine::expr::CmpOp;
use dbsens_engine::plan::{AggFunc, JoinKind};
use dbsens_storage::value::Value;

/// A bound scalar expression over positional columns.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column of the current row layout.
    Col(usize),
    /// Column of the *enclosing* query's row layout (correlated subqueries
    /// only; must be eliminated by decorrelation before lowering).
    OuterCol(usize),
    /// Literal.
    Lit(Value),
    /// `a + b`
    Add(Box<SqlExpr>, Box<SqlExpr>),
    /// `a - b`
    Sub(Box<SqlExpr>, Box<SqlExpr>),
    /// `a * b`
    Mul(Box<SqlExpr>, Box<SqlExpr>),
    /// `a / b` (float semantics).
    Div(Box<SqlExpr>, Box<SqlExpr>),
    /// Comparison producing a boolean int.
    Cmp(CmpOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Logical AND.
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical OR.
    Or(Box<SqlExpr>, Box<SqlExpr>),
    /// Logical NOT.
    Not(Box<SqlExpr>),
    /// `LIKE 'foo%'`
    StartsWith(Box<SqlExpr>, String),
    /// `LIKE '%foo%'`
    Contains(Box<SqlExpr>, String),
    /// `IN (literals)`
    InList(Box<SqlExpr>, Vec<Value>),
    /// `BETWEEN lo AND hi` with literal bounds.
    Between(Box<SqlExpr>, Value, Value),
    /// `IS NULL`
    IsNull(Box<SqlExpr>),
    /// Scalar subquery; the plan must produce at most one single-column row.
    Subquery(Box<SqlPlan>),
}

impl SqlExpr {
    /// Boxed comparison shorthand.
    pub fn cmp(op: CmpOp, a: SqlExpr, b: SqlExpr) -> SqlExpr {
        SqlExpr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Conjunction of `conj`, or `None` when empty.
    pub fn conjoin(mut conj: Vec<SqlExpr>) -> Option<SqlExpr> {
        let first = if conj.is_empty() {
            return None;
        } else {
            conj.remove(0)
        };
        Some(
            conj.into_iter()
                .fold(first, |acc, e| SqlExpr::And(Box::new(acc), Box::new(e))),
        )
    }

    /// Splits a predicate into its top-level AND conjuncts.
    pub fn split_conjuncts(self, out: &mut Vec<SqlExpr>) {
        match self {
            SqlExpr::And(a, b) => {
                a.split_conjuncts(out);
                b.split_conjuncts(out);
            }
            e => out.push(e),
        }
    }

    /// Calls `f` on every [`SqlExpr::Col`] index in the expression,
    /// descending into subquery plans only for their `OuterCol` references
    /// (which live in *this* expression's layout).
    pub fn for_each_col(&self, f: &mut impl FnMut(usize)) {
        match self {
            SqlExpr::Col(i) => f(*i),
            SqlExpr::OuterCol(_) | SqlExpr::Lit(_) => {}
            SqlExpr::Add(a, b)
            | SqlExpr::Sub(a, b)
            | SqlExpr::Mul(a, b)
            | SqlExpr::Div(a, b)
            | SqlExpr::Cmp(_, a, b)
            | SqlExpr::And(a, b)
            | SqlExpr::Or(a, b) => {
                a.for_each_col(f);
                b.for_each_col(f);
            }
            SqlExpr::Not(a)
            | SqlExpr::StartsWith(a, _)
            | SqlExpr::Contains(a, _)
            | SqlExpr::InList(a, _)
            | SqlExpr::Between(a, _, _)
            | SqlExpr::IsNull(a) => a.for_each_col(f),
            SqlExpr::Subquery(plan) => plan.for_each_outer_col(f),
        }
    }

    /// Rewrites every [`SqlExpr::Col`] index through `f` (and `OuterCol`
    /// references inside nested subqueries, which resolve in this layout).
    pub fn map_cols(&self, f: &mut (impl FnMut(usize) -> usize + ?Sized)) -> SqlExpr {
        match self {
            SqlExpr::Col(i) => SqlExpr::Col(f(*i)),
            SqlExpr::OuterCol(i) => SqlExpr::OuterCol(*i),
            SqlExpr::Lit(v) => SqlExpr::Lit(v.clone()),
            SqlExpr::Add(a, b) => SqlExpr::Add(Box::new(a.map_cols(f)), Box::new(b.map_cols(f))),
            SqlExpr::Sub(a, b) => SqlExpr::Sub(Box::new(a.map_cols(f)), Box::new(b.map_cols(f))),
            SqlExpr::Mul(a, b) => SqlExpr::Mul(Box::new(a.map_cols(f)), Box::new(b.map_cols(f))),
            SqlExpr::Div(a, b) => SqlExpr::Div(Box::new(a.map_cols(f)), Box::new(b.map_cols(f))),
            SqlExpr::Cmp(op, a, b) => {
                SqlExpr::Cmp(*op, Box::new(a.map_cols(f)), Box::new(b.map_cols(f)))
            }
            SqlExpr::And(a, b) => SqlExpr::And(Box::new(a.map_cols(f)), Box::new(b.map_cols(f))),
            SqlExpr::Or(a, b) => SqlExpr::Or(Box::new(a.map_cols(f)), Box::new(b.map_cols(f))),
            SqlExpr::Not(a) => SqlExpr::Not(Box::new(a.map_cols(f))),
            SqlExpr::StartsWith(a, s) => SqlExpr::StartsWith(Box::new(a.map_cols(f)), s.clone()),
            SqlExpr::Contains(a, s) => SqlExpr::Contains(Box::new(a.map_cols(f)), s.clone()),
            SqlExpr::InList(a, vs) => SqlExpr::InList(Box::new(a.map_cols(f)), vs.clone()),
            SqlExpr::Between(a, lo, hi) => {
                SqlExpr::Between(Box::new(a.map_cols(f)), lo.clone(), hi.clone())
            }
            SqlExpr::IsNull(a) => SqlExpr::IsNull(Box::new(a.map_cols(f))),
            SqlExpr::Subquery(plan) => SqlExpr::Subquery(Box::new(plan.map_outer_cols(f))),
        }
    }

    /// `true` when the expression (or a nested subquery) references an
    /// outer column.
    pub fn has_outer_col(&self) -> bool {
        let mut found = false;
        self.for_each_outer(&mut |_| found = true);
        found
    }

    /// Calls `f` on every `OuterCol` index, including those in nested
    /// subqueries.
    pub fn for_each_outer(&self, f: &mut impl FnMut(usize)) {
        match self {
            SqlExpr::OuterCol(i) => f(*i),
            SqlExpr::Col(_) | SqlExpr::Lit(_) => {}
            SqlExpr::Add(a, b)
            | SqlExpr::Sub(a, b)
            | SqlExpr::Mul(a, b)
            | SqlExpr::Div(a, b)
            | SqlExpr::Cmp(_, a, b)
            | SqlExpr::And(a, b)
            | SqlExpr::Or(a, b) => {
                a.for_each_outer(f);
                b.for_each_outer(f);
            }
            SqlExpr::Not(a)
            | SqlExpr::StartsWith(a, _)
            | SqlExpr::Contains(a, _)
            | SqlExpr::InList(a, _)
            | SqlExpr::Between(a, _, _)
            | SqlExpr::IsNull(a) => a.for_each_outer(f),
            // An outer reference of the nested subquery resolves in *our*
            // enclosing layout only if it escapes our own columns too;
            // the binder encodes exactly one level, so nothing to do.
            SqlExpr::Subquery(_) => {}
        }
    }

    /// `true` when the expression contains a scalar subquery.
    pub fn has_subquery(&self) -> bool {
        match self {
            SqlExpr::Subquery(_) => true,
            SqlExpr::Col(_) | SqlExpr::OuterCol(_) | SqlExpr::Lit(_) => false,
            SqlExpr::Add(a, b)
            | SqlExpr::Sub(a, b)
            | SqlExpr::Mul(a, b)
            | SqlExpr::Div(a, b)
            | SqlExpr::Cmp(_, a, b)
            | SqlExpr::And(a, b)
            | SqlExpr::Or(a, b) => a.has_subquery() || b.has_subquery(),
            SqlExpr::Not(a)
            | SqlExpr::StartsWith(a, _)
            | SqlExpr::Contains(a, _)
            | SqlExpr::InList(a, _)
            | SqlExpr::Between(a, _, _)
            | SqlExpr::IsNull(a) => a.has_subquery(),
        }
    }
}

/// One aggregate in a [`SqlPlan::Agg`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlAgg {
    /// Function.
    pub func: AggFunc,
    /// Argument over the input layout.
    pub expr: SqlExpr,
}

/// A typed logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlPlan {
    /// Base-table scan. `filter` is evaluated against the *full* base-row
    /// layout; `project` (if any) applies afterwards, mirroring the engine's
    /// scan semantics on both executor paths.
    Scan {
        /// Source table.
        table: TableId,
        /// Source table name (for plan rendering).
        table_name: String,
        /// Number of columns in the base schema.
        base_arity: usize,
        /// Pushed-down predicate over the base layout.
        filter: Option<SqlExpr>,
        /// Retained columns (`None` = all, in schema order).
        project: Option<Vec<usize>>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<SqlPlan>,
        /// Predicate over the input layout.
        pred: SqlExpr,
    },
    /// Equi-join; output layout is `left ++ right`.
    Join {
        /// Left (probe) input.
        left: Box<SqlPlan>,
        /// Right (build) input.
        right: Box<SqlPlan>,
        /// Key columns of the left layout.
        left_keys: Vec<usize>,
        /// Key columns of the right layout.
        right_keys: Vec<usize>,
        /// Inner or left-outer (the grammar emits no semi/anti joins).
        kind: JoinKind,
    },
    /// Grouped aggregation; output layout is group keys then aggregates.
    Agg {
        /// Input.
        input: Box<SqlPlan>,
        /// Group-key columns of the input layout (empty = scalar).
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<SqlAgg>,
    },
    /// Row-wise projection.
    Project {
        /// Input.
        input: Box<SqlPlan>,
        /// Output expressions over the input layout.
        exprs: Vec<SqlExpr>,
    },
    /// Sort by `(column, descending)` keys.
    Sort {
        /// Input.
        input: Box<SqlPlan>,
        /// Sort keys over the input layout.
        keys: Vec<(usize, bool)>,
    },
    /// First `n` rows.
    Limit {
        /// Input.
        input: Box<SqlPlan>,
        /// Row cap.
        n: usize,
    },
}

impl SqlPlan {
    /// Number of output columns.
    pub fn arity(&self) -> usize {
        match self {
            SqlPlan::Scan {
                base_arity,
                project,
                ..
            } => project.as_ref().map_or(*base_arity, Vec::len),
            SqlPlan::Filter { input, .. }
            | SqlPlan::Sort { input, .. }
            | SqlPlan::Limit { input, .. } => input.arity(),
            SqlPlan::Join { left, right, .. } => left.arity() + right.arity(),
            SqlPlan::Agg { group_by, aggs, .. } => group_by.len() + aggs.len(),
            SqlPlan::Project { exprs, .. } => exprs.len(),
        }
    }

    /// Calls `f` on every `OuterCol` index anywhere in the plan.
    pub fn for_each_outer_col(&self, f: &mut impl FnMut(usize)) {
        self.visit_exprs(&mut |e| e.for_each_outer(f));
    }

    /// `true` when the plan references any outer column (i.e. is
    /// correlated).
    pub fn is_correlated(&self) -> bool {
        let mut found = false;
        self.for_each_outer_col(&mut |_| found = true);
        found
    }

    /// Rewrites every `OuterCol` index in the plan through `f`.
    pub fn map_outer_cols(&self, f: &mut (impl FnMut(usize) -> usize + ?Sized)) -> SqlPlan {
        fn map_expr(e: &SqlExpr, f: &mut (impl FnMut(usize) -> usize + ?Sized)) -> SqlExpr {
            match e {
                SqlExpr::OuterCol(i) => SqlExpr::OuterCol(f(*i)),
                SqlExpr::Col(i) => SqlExpr::Col(*i),
                SqlExpr::Lit(v) => SqlExpr::Lit(v.clone()),
                SqlExpr::Add(a, b) => {
                    SqlExpr::Add(Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
                }
                SqlExpr::Sub(a, b) => {
                    SqlExpr::Sub(Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
                }
                SqlExpr::Mul(a, b) => {
                    SqlExpr::Mul(Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
                }
                SqlExpr::Div(a, b) => {
                    SqlExpr::Div(Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
                }
                SqlExpr::Cmp(op, a, b) => {
                    SqlExpr::Cmp(*op, Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
                }
                SqlExpr::And(a, b) => {
                    SqlExpr::And(Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
                }
                SqlExpr::Or(a, b) => {
                    SqlExpr::Or(Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
                }
                SqlExpr::Not(a) => SqlExpr::Not(Box::new(map_expr(a, f))),
                SqlExpr::StartsWith(a, s) => {
                    SqlExpr::StartsWith(Box::new(map_expr(a, f)), s.clone())
                }
                SqlExpr::Contains(a, s) => SqlExpr::Contains(Box::new(map_expr(a, f)), s.clone()),
                SqlExpr::InList(a, vs) => SqlExpr::InList(Box::new(map_expr(a, f)), vs.clone()),
                SqlExpr::Between(a, lo, hi) => {
                    SqlExpr::Between(Box::new(map_expr(a, f)), lo.clone(), hi.clone())
                }
                SqlExpr::IsNull(a) => SqlExpr::IsNull(Box::new(map_expr(a, f))),
                SqlExpr::Subquery(p) => SqlExpr::Subquery(Box::new(p.map_outer_cols(f))),
            }
        }
        match self {
            SqlPlan::Scan {
                table,
                table_name,
                base_arity,
                filter,
                project,
            } => SqlPlan::Scan {
                table: *table,
                table_name: table_name.clone(),
                base_arity: *base_arity,
                filter: filter.as_ref().map(|e| map_expr(e, f)),
                project: project.clone(),
            },
            SqlPlan::Filter { input, pred } => SqlPlan::Filter {
                input: Box::new(input.map_outer_cols(f)),
                pred: map_expr(pred, f),
            },
            SqlPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => SqlPlan::Join {
                left: Box::new(left.map_outer_cols(f)),
                right: Box::new(right.map_outer_cols(f)),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                kind: *kind,
            },
            SqlPlan::Agg {
                input,
                group_by,
                aggs,
            } => SqlPlan::Agg {
                input: Box::new(input.map_outer_cols(f)),
                group_by: group_by.clone(),
                aggs: aggs
                    .iter()
                    .map(|a| SqlAgg {
                        func: a.func,
                        expr: map_expr(&a.expr, f),
                    })
                    .collect(),
            },
            SqlPlan::Project { input, exprs } => SqlPlan::Project {
                input: Box::new(input.map_outer_cols(f)),
                exprs: exprs.iter().map(|e| map_expr(e, f)).collect(),
            },
            SqlPlan::Sort { input, keys } => SqlPlan::Sort {
                input: Box::new(input.map_outer_cols(f)),
                keys: keys.clone(),
            },
            SqlPlan::Limit { input, n } => SqlPlan::Limit {
                input: Box::new(input.map_outer_cols(f)),
                n: *n,
            },
        }
    }

    /// Calls `f` on every expression embedded in the plan.
    pub fn visit_exprs(&self, f: &mut impl FnMut(&SqlExpr)) {
        match self {
            SqlPlan::Scan { filter, .. } => {
                if let Some(e) = filter {
                    f(e);
                }
            }
            SqlPlan::Filter { input, pred } => {
                f(pred);
                input.visit_exprs(f);
            }
            SqlPlan::Join { left, right, .. } => {
                left.visit_exprs(f);
                right.visit_exprs(f);
            }
            SqlPlan::Agg { input, aggs, .. } => {
                for a in aggs {
                    f(&a.expr);
                }
                input.visit_exprs(f);
            }
            SqlPlan::Project { input, exprs } => {
                for e in exprs {
                    f(e);
                }
                input.visit_exprs(f);
            }
            SqlPlan::Sort { input, .. } | SqlPlan::Limit { input, .. } => input.visit_exprs(f),
        }
    }

    /// Renders a compact indented plan tree (used by tests and docs).
    pub fn render(&self) -> String {
        fn go(p: &SqlPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match p {
                SqlPlan::Scan {
                    table_name,
                    filter,
                    project,
                    ..
                } => {
                    out.push_str(&format!(
                        "{pad}Scan {table_name}{}{}\n",
                        if filter.is_some() { " [filtered]" } else { "" },
                        match project {
                            Some(cols) => format!(" cols={cols:?}"),
                            None => String::new(),
                        }
                    ));
                }
                SqlPlan::Filter { input, .. } => {
                    out.push_str(&format!("{pad}Filter\n"));
                    go(input, depth + 1, out);
                }
                SqlPlan::Join {
                    left,
                    right,
                    left_keys,
                    right_keys,
                    kind,
                } => {
                    out.push_str(&format!(
                        "{pad}Join {kind:?} {left_keys:?}={right_keys:?}\n"
                    ));
                    go(left, depth + 1, out);
                    go(right, depth + 1, out);
                }
                SqlPlan::Agg {
                    input,
                    group_by,
                    aggs,
                } => {
                    out.push_str(&format!(
                        "{pad}Agg group_by={group_by:?} aggs={}\n",
                        aggs.len()
                    ));
                    go(input, depth + 1, out);
                }
                SqlPlan::Project { input, exprs } => {
                    out.push_str(&format!("{pad}Project exprs={}\n", exprs.len()));
                    go(input, depth + 1, out);
                }
                SqlPlan::Sort { input, keys } => {
                    out.push_str(&format!("{pad}Sort {keys:?}\n"));
                    go(input, depth + 1, out);
                }
                SqlPlan::Limit { input, n } => {
                    out.push_str(&format!("{pad}Limit {n}\n"));
                    go(input, depth + 1, out);
                }
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}
