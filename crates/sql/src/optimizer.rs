//! Rule-based optimizer over [`SqlPlan`].
//!
//! Four rewrites run in a fixed order (see `docs/SQL.md` for worked
//! before/after examples):
//!
//! 1. **Subquery decorrelation** — correlated scalar-aggregate subqueries
//!    in filter predicates become a grouped aggregate joined back with a
//!    `LEFT OUTER` join.
//! 2. **Predicate pushdown** — filter conjuncts sink toward scans, through
//!    projections, sorts, group-key prefixes, and the legal side of joins.
//! 3. **Join reordering** — maximal inner-join regions are rebuilt greedily
//!    by estimated cardinality, keeping the largest input as the probe side
//!    and joining the cheapest connected input next; the rewrite is kept
//!    only when [`dbsens_engine::cost::EngineCost`]'s hash-join model says
//!    it is cheaper.
//! 4. **Projection pruning** — unused columns are cut at the lowest
//!    possible operator, turning full scans into column-projected scans.
//!
//! Rules never change result semantics: the property tests in
//! `tests/tests/sqlprop.rs` check optimized and unoptimized plans produce
//! byte-identical digests on both executor paths.

use crate::ir::{SqlAgg, SqlExpr, SqlPlan};
use dbsens_engine::db::Database;
use dbsens_engine::expr::CmpOp;
use dbsens_engine::plan::{AggFunc, JoinKind};
use std::collections::BTreeSet;

/// Optimizes a bound plan. Infallible: anything a rule cannot handle is
/// simply left in place.
pub fn optimize(db: &Database, plan: &SqlPlan) -> SqlPlan {
    let p = decorrelate(plan.clone());
    let p = pushdown(p);
    let p = reorder(db, p);
    let p = pushdown(p);
    let arity = p.arity();
    let (p, _) = prune(p, &(0..arity).collect());
    p
}

// ---------------------------------------------------------------------------
// Cardinality estimation (shared with lowering via `estimate`).

/// Estimated output rows of a plan, in logical (heap) rows.
pub fn estimate(db: &Database, plan: &SqlPlan) -> f64 {
    match plan {
        SqlPlan::Scan { table, filter, .. } => {
            let base = db.table(*table).heap.len() as f64;
            base * filter.as_ref().map_or(1.0, selectivity)
        }
        SqlPlan::Filter { input, pred } => estimate(db, input) * selectivity(pred),
        SqlPlan::Join {
            left, right, kind, ..
        } => {
            let l = estimate(db, left);
            let r = estimate(db, right);
            let inner = (l * r / l.max(r).max(1.0)).max(1.0);
            match kind {
                JoinKind::LeftOuter => inner.max(l),
                _ => inner,
            }
        }
        SqlPlan::Agg {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                let shrink = 0.25f64.powi(group_by.len().min(2) as i32);
                (estimate(db, input) * shrink).max(1.0)
            }
        }
        SqlPlan::Project { input, .. } | SqlPlan::Sort { input, .. } => estimate(db, input),
        SqlPlan::Limit { input, n } => estimate(db, input).min(*n as f64),
    }
}

/// Heuristic selectivity of a predicate.
pub(crate) fn selectivity(e: &SqlExpr) -> f64 {
    match e {
        SqlExpr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
            (SqlExpr::Col(_), SqlExpr::Lit(_)) | (SqlExpr::Lit(_), SqlExpr::Col(_)) => 0.05,
            _ => 0.1,
        },
        SqlExpr::Cmp(CmpOp::Ne, ..) => 0.9,
        SqlExpr::Cmp(..) => 0.3,
        SqlExpr::Between(..) => 0.3,
        SqlExpr::StartsWith(..) | SqlExpr::Contains(..) => 0.25,
        SqlExpr::InList(_, vs) => (0.05 * vs.len() as f64).min(0.5),
        SqlExpr::IsNull(_) => 0.1,
        SqlExpr::And(a, b) => selectivity(a) * selectivity(b),
        SqlExpr::Or(a, b) => (selectivity(a) + selectivity(b)).min(1.0),
        SqlExpr::Not(a) => 1.0 - selectivity(a),
        _ => 0.5,
    }
}

// ---------------------------------------------------------------------------
// Rule 1: decorrelation.

fn decorrelate(plan: SqlPlan) -> SqlPlan {
    // Children first, so nested filters are already in rewritten form.
    let plan = match plan {
        SqlPlan::Filter { input, pred } => SqlPlan::Filter {
            input: Box::new(decorrelate(*input)),
            pred,
        },
        SqlPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => SqlPlan::Join {
            left: Box::new(decorrelate(*left)),
            right: Box::new(decorrelate(*right)),
            left_keys,
            right_keys,
            kind,
        },
        SqlPlan::Agg {
            input,
            group_by,
            aggs,
        } => SqlPlan::Agg {
            input: Box::new(decorrelate(*input)),
            group_by,
            aggs,
        },
        SqlPlan::Project { input, exprs } => SqlPlan::Project {
            input: Box::new(decorrelate(*input)),
            exprs,
        },
        SqlPlan::Sort { input, keys } => SqlPlan::Sort {
            input: Box::new(decorrelate(*input)),
            keys,
        },
        SqlPlan::Limit { input, n } => SqlPlan::Limit {
            input: Box::new(decorrelate(*input)),
            n,
        },
        scan => scan,
    };
    let SqlPlan::Filter { input, pred } = plan else {
        return plan;
    };
    // HAVING position: the filter sits directly on an aggregate, and the
    // binder resolves a subquery's OuterCols against the aggregate's *input*
    // layout (the FROM row), while the filter's own columns live in the
    // aggregate's *output* layout. An outer reference is decorrelatable only
    // when the referenced column is a group key — it then becomes that key's
    // output position, and the usual rewrite applies unchanged.
    let having_keys: Option<Vec<(usize, usize)>> = match input.as_ref() {
        SqlPlan::Agg { group_by, .. } => Some(
            group_by
                .iter()
                .enumerate()
                .map(|(out, &abs)| (abs, out))
                .collect(),
        ),
        _ => None,
    };
    let outer_arity = input.arity();
    let mut conjuncts = Vec::new();
    pred.split_conjuncts(&mut conjuncts);
    let mut outer = *input;
    let mut residual = Vec::new();
    for conj in conjuncts {
        let conj = match &having_keys {
            Some(keys) => remap_having_conjunct(conj, keys),
            None => conj,
        };
        match try_decorrelate_conjunct(&conj, outer, outer_arity) {
            Ok((new_outer, rewritten)) => {
                outer = new_outer;
                residual.push(rewritten);
            }
            Err(same_outer) => {
                outer = same_outer;
                residual.push(conj);
            }
        }
    }
    let rewritten_arity = outer.arity();
    let mut plan = SqlPlan::Filter {
        input: Box::new(outer),
        pred: SqlExpr::conjoin(residual).expect("at least one conjunct"),
    };
    if rewritten_arity != outer_arity {
        // Joins were appended on the right: restore the original layout.
        plan = SqlPlan::Project {
            input: Box::new(plan),
            exprs: (0..outer_arity).map(SqlExpr::Col).collect(),
        };
    }
    plan
}

/// Rewrites a HAVING conjunct's correlated-subquery outer references from
/// the aggregate's input layout to its output layout via the group-key map
/// `keys` (`(input position, output position)` pairs). Conjuncts whose
/// outer references are not all group keys come back untouched — the value
/// is not functionally determined by the aggregate output, so decorrelation
/// must not fire on them.
fn remap_having_conjunct(conj: SqlExpr, keys: &[(usize, usize)]) -> SqlExpr {
    let SqlExpr::Cmp(op, lhs, rhs) = &conj else {
        return conj;
    };
    let remap_side = |side: &SqlExpr| -> Option<SqlExpr> {
        let SqlExpr::Subquery(p) = side else {
            return None;
        };
        if !p.is_correlated() {
            return None;
        }
        let mut all_keys = true;
        p.for_each_outer_col(&mut |c| all_keys &= keys.iter().any(|&(abs, _)| abs == c));
        if !all_keys {
            return None;
        }
        Some(SqlExpr::Subquery(Box::new(p.map_outer_cols(&mut |c| {
            keys.iter()
                .find(|&&(abs, _)| abs == c)
                .map(|&(_, out)| out)
                .expect("checked above")
        }))))
    };
    match (remap_side(lhs), remap_side(rhs)) {
        (Some(l), None) => SqlExpr::Cmp(*op, Box::new(l), rhs.clone()),
        (None, Some(r)) => SqlExpr::Cmp(*op, lhs.clone(), Box::new(r)),
        _ => conj,
    }
}

/// If `conj` compares against a correlated scalar-aggregate subquery of a
/// supported shape, appends the decorrelated join to `outer` and returns
/// the rewritten comparison. Otherwise hands `outer` back unchanged.
fn try_decorrelate_conjunct(
    conj: &SqlExpr,
    outer: SqlPlan,
    outer_arity: usize,
) -> Result<(SqlPlan, SqlExpr), SqlPlan> {
    let SqlExpr::Cmp(op, lhs, rhs) = conj else {
        return Err(outer);
    };
    let (other, sub, sub_on_right) = match (lhs.as_ref(), rhs.as_ref()) {
        (SqlExpr::Subquery(p), o) if p.is_correlated() => (o, p.as_ref(), false),
        (o, SqlExpr::Subquery(p)) if p.is_correlated() => (o, p.as_ref(), true),
        _ => return Err(outer),
    };
    if other.has_subquery() || other.has_outer_col() {
        return Err(outer);
    }
    // The current join layout is `outer ++ appended`; the comparison's own
    // columns must live in the outer prefix.
    let mut ok = true;
    other.for_each_col(&mut |c| ok &= c < outer_arity);
    if !ok {
        return Err(outer);
    }
    let Some((agg, correlated, local, scan)) = match_scalar_agg(sub) else {
        return Err(outer);
    };
    // COUNT over an empty group yields 0 through the subquery path but NULL
    // through an outer join; refuse rather than silently diverge.
    if agg.func == AggFunc::Count || agg.expr.has_outer_col() {
        return Err(outer);
    }
    let (inner_cols, outer_cols): (Vec<usize>, Vec<usize>) = correlated.iter().cloned().unzip();
    let mut inner: SqlPlan = scan;
    if let Some(pred) = SqlExpr::conjoin(local) {
        inner = SqlPlan::Filter {
            input: Box::new(inner),
            pred,
        };
    }
    let key_count = inner_cols.len();
    let inner = SqlPlan::Agg {
        input: Box::new(inner),
        group_by: inner_cols,
        aggs: vec![agg],
    };
    let appended = outer.arity();
    let joined = SqlPlan::Join {
        left: Box::new(outer),
        right: Box::new(inner),
        left_keys: outer_cols,
        right_keys: (0..key_count).collect(),
        kind: JoinKind::LeftOuter,
    };
    let agg_col = SqlExpr::Col(appended + key_count);
    let rewritten = if sub_on_right {
        SqlExpr::Cmp(*op, Box::new(other.clone()), Box::new(agg_col))
    } else {
        SqlExpr::Cmp(*op, Box::new(agg_col), Box::new(other.clone()))
    };
    Ok((joined, rewritten))
}

type ScalarAggParts = (SqlAgg, Vec<(usize, usize)>, Vec<SqlExpr>, SqlPlan);

/// Matches the decorrelatable shape: an (optionally identity-projected)
/// scalar aggregate over filters over a single scan. Returns the aggregate,
/// the correlated equi pairs `(inner col, outer col)`, the local conjuncts
/// (rewritten over the base layout), and the bare scan.
fn match_scalar_agg(sub: &SqlPlan) -> Option<ScalarAggParts> {
    let mut node = sub;
    if let SqlPlan::Project { input, exprs } = node {
        if exprs.as_slice() != [SqlExpr::Col(0)] {
            return None;
        }
        node = input;
    }
    let SqlPlan::Agg {
        input,
        group_by,
        aggs,
    } = node
    else {
        return None;
    };
    if !group_by.is_empty() || aggs.len() != 1 {
        return None;
    }
    let mut conjuncts = Vec::new();
    let mut chain = input.as_ref();
    loop {
        match chain {
            SqlPlan::Filter { input, pred } => {
                pred.clone().split_conjuncts(&mut conjuncts);
                chain = input;
            }
            SqlPlan::Scan {
                filter, project, ..
            } => {
                if project.is_some() {
                    return None;
                }
                if let Some(f) = filter {
                    f.clone().split_conjuncts(&mut conjuncts);
                }
                break;
            }
            _ => return None,
        }
    }
    let scan = match chain {
        SqlPlan::Scan {
            table,
            table_name,
            base_arity,
            ..
        } => SqlPlan::Scan {
            table: *table,
            table_name: table_name.clone(),
            base_arity: *base_arity,
            filter: None,
            project: None,
        },
        _ => return None,
    };
    let mut correlated = Vec::new();
    let mut local = Vec::new();
    for conj in conjuncts {
        if let SqlExpr::Cmp(CmpOp::Eq, a, b) = &conj {
            match (a.as_ref(), b.as_ref()) {
                (SqlExpr::Col(i), SqlExpr::OuterCol(o))
                | (SqlExpr::OuterCol(o), SqlExpr::Col(i)) => {
                    correlated.push((*i, *o));
                    continue;
                }
                _ => {}
            }
        }
        if conj.has_outer_col() {
            return None;
        }
        local.push(conj);
    }
    if correlated.is_empty() {
        return None;
    }
    Some((aggs[0].clone(), correlated, local, scan))
}

// ---------------------------------------------------------------------------
// Rule 2: predicate pushdown.

fn pushdown(plan: SqlPlan) -> SqlPlan {
    match plan {
        SqlPlan::Filter { input, pred } => {
            let mut input = pushdown(*input);
            let mut conjuncts = Vec::new();
            pred.split_conjuncts(&mut conjuncts);
            let mut residual = Vec::new();
            for conj in conjuncts {
                match try_push(input, conj) {
                    Ok(pushed) => input = pushed,
                    Err((same, conj)) => {
                        input = same;
                        residual.push(conj);
                    }
                }
            }
            match SqlExpr::conjoin(residual) {
                Some(pred) => SqlPlan::Filter {
                    input: Box::new(input),
                    pred,
                },
                None => input,
            }
        }
        SqlPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => SqlPlan::Join {
            left: Box::new(pushdown(*left)),
            right: Box::new(pushdown(*right)),
            left_keys,
            right_keys,
            kind,
        },
        SqlPlan::Agg {
            input,
            group_by,
            aggs,
        } => SqlPlan::Agg {
            input: Box::new(pushdown(*input)),
            group_by,
            aggs,
        },
        SqlPlan::Project { input, exprs } => SqlPlan::Project {
            input: Box::new(pushdown(*input)),
            exprs,
        },
        SqlPlan::Sort { input, keys } => SqlPlan::Sort {
            input: Box::new(pushdown(*input)),
            keys,
        },
        SqlPlan::Limit { input, n } => SqlPlan::Limit {
            input: Box::new(pushdown(*input)),
            n,
        },
        scan => scan,
    }
}

/// Attempts to sink one conjunct into `plan`; `Err` hands both back
/// untouched so the caller keeps ownership without cloning.
#[allow(clippy::result_large_err)]
fn try_push(plan: SqlPlan, conj: SqlExpr) -> Result<SqlPlan, (SqlPlan, SqlExpr)> {
    match plan {
        SqlPlan::Scan {
            table,
            table_name,
            base_arity,
            filter,
            project,
        } => {
            // The conjunct is over the scan *output*; rewrite it to the base
            // layout the scan filter is evaluated in.
            let based = match &project {
                Some(cols) => conj.map_cols(&mut |i| cols[i]),
                None => conj,
            };
            let filter = Some(match filter {
                Some(f) => SqlExpr::And(Box::new(f), Box::new(based)),
                None => based,
            });
            Ok(SqlPlan::Scan {
                table,
                table_name,
                base_arity,
                filter,
                project,
            })
        }
        SqlPlan::Filter { input, pred } => match try_push(*input, conj) {
            Ok(pushed) => Ok(SqlPlan::Filter {
                input: Box::new(pushed),
                pred,
            }),
            Err((input, conj)) => Ok(SqlPlan::Filter {
                input: Box::new(input),
                pred: SqlExpr::And(Box::new(pred), Box::new(conj)),
            }),
        },
        SqlPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            let la = left.arity();
            let (mut lo, mut hi, mut any) = (usize::MAX, 0usize, false);
            conj.for_each_col(&mut |c| {
                lo = lo.min(c);
                hi = hi.max(c);
                any = true;
            });
            if any && hi < la {
                // Left-side conjuncts commute with both join kinds.
                let left = push_or_filter(*left, conj);
                Ok(SqlPlan::Join {
                    left: Box::new(left),
                    right,
                    left_keys,
                    right_keys,
                    kind,
                })
            } else if any && lo >= la && kind == JoinKind::Inner {
                // Right-side conjuncts sink only through inner joins: below
                // a left-outer join they would resurrect NULL-padded rows.
                let right = push_or_filter(*right, conj.map_cols(&mut |c| c - la));
                Ok(SqlPlan::Join {
                    left,
                    right: Box::new(right),
                    left_keys,
                    right_keys,
                    kind,
                })
            } else {
                Err((
                    SqlPlan::Join {
                        left,
                        right,
                        left_keys,
                        right_keys,
                        kind,
                    },
                    conj,
                ))
            }
        }
        SqlPlan::Agg {
            input,
            group_by,
            aggs,
        } => {
            let keys = group_by.len();
            let mut ok = true;
            conj.for_each_col(&mut |c| ok &= c < keys);
            if ok {
                let below = conj.map_cols(&mut |c| group_by[c]);
                Ok(SqlPlan::Agg {
                    input: Box::new(push_or_filter(*input, below)),
                    group_by,
                    aggs,
                })
            } else {
                Err((
                    SqlPlan::Agg {
                        input,
                        group_by,
                        aggs,
                    },
                    conj,
                ))
            }
        }
        SqlPlan::Project { input, exprs } => {
            // Substitute only when every referenced projection is a plain
            // column, so the pushed predicate never duplicates computation.
            let mut ok = true;
            conj.for_each_col(&mut |c| {
                ok &= matches!(exprs.get(c), Some(SqlExpr::Col(_)));
            });
            if ok {
                let below = conj.map_cols(&mut |c| match &exprs[c] {
                    SqlExpr::Col(j) => *j,
                    _ => unreachable!("checked above"),
                });
                Ok(SqlPlan::Project {
                    input: Box::new(push_or_filter(*input, below)),
                    exprs,
                })
            } else {
                Err((SqlPlan::Project { input, exprs }, conj))
            }
        }
        SqlPlan::Sort { input, keys } => Ok(SqlPlan::Sort {
            input: Box::new(push_or_filter(*input, conj)),
            keys,
        }),
        // Filtering after LIMIT is not the same as before it.
        limit @ SqlPlan::Limit { .. } => Err((limit, conj)),
    }
}

fn push_or_filter(plan: SqlPlan, conj: SqlExpr) -> SqlPlan {
    match try_push(plan, conj) {
        Ok(p) => p,
        Err((p, conj)) => SqlPlan::Filter {
            input: Box::new(p),
            pred: conj,
        },
    }
}

// ---------------------------------------------------------------------------
// Rule 3: join reordering.

fn reorder(db: &Database, plan: SqlPlan) -> SqlPlan {
    match plan {
        join @ SqlPlan::Join {
            kind: JoinKind::Inner,
            ..
        } => reorder_region(db, join),
        SqlPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => SqlPlan::Join {
            left: Box::new(reorder(db, *left)),
            right: Box::new(reorder(db, *right)),
            left_keys,
            right_keys,
            kind,
        },
        SqlPlan::Filter { input, pred } => SqlPlan::Filter {
            input: Box::new(reorder(db, *input)),
            pred,
        },
        SqlPlan::Agg {
            input,
            group_by,
            aggs,
        } => SqlPlan::Agg {
            input: Box::new(reorder(db, *input)),
            group_by,
            aggs,
        },
        SqlPlan::Project { input, exprs } => SqlPlan::Project {
            input: Box::new(reorder(db, *input)),
            exprs,
        },
        SqlPlan::Sort { input, keys } => SqlPlan::Sort {
            input: Box::new(reorder(db, *input)),
            keys,
        },
        SqlPlan::Limit { input, n } => SqlPlan::Limit {
            input: Box::new(reorder(db, *input)),
            n,
        },
        scan => scan,
    }
}

/// A flattened inner-join region: leaves in original layout order and
/// equi-edges in absolute (original) column positions.
struct Region {
    leaves: Vec<SqlPlan>,
    offsets: Vec<usize>,
    edges: Vec<(usize, usize)>,
}

fn flatten_region(plan: SqlPlan, offset: usize, region: &mut Region) {
    match plan {
        SqlPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind: JoinKind::Inner,
        } => {
            let la = left.arity();
            flatten_region(*left, offset, region);
            flatten_region(*right, offset + la, region);
            for (l, r) in left_keys.iter().zip(&right_keys) {
                region.edges.push((offset + l, offset + la + r));
            }
        }
        leaf => {
            region.offsets.push(offset);
            region.leaves.push(leaf);
        }
    }
}

fn reorder_region(db: &Database, join: SqlPlan) -> SqlPlan {
    let total_arity = join.arity();
    let mut region = Region {
        leaves: Vec::new(),
        offsets: Vec::new(),
        edges: Vec::new(),
    };
    flatten_region(join, 0, &mut region);
    // Leaves are themselves optimized (they may hold nested regions under
    // outer joins or aggregates).
    let leaves: Vec<SqlPlan> = std::mem::take(&mut region.leaves)
        .into_iter()
        .map(|l| reorder(db, l))
        .collect();
    let n = leaves.len();
    let ests: Vec<f64> = leaves.iter().map(|l| estimate(db, l)).collect();
    let arities: Vec<usize> = leaves.iter().map(SqlPlan::arity).collect();
    let leaf_of = |abs: usize| {
        region
            .offsets
            .iter()
            .rposition(|&o| o <= abs)
            .expect("offset 0 exists")
    };

    // Greedy order: largest leaf stays the probe side; then always join the
    // smallest leaf connected to the picked set (the binder guarantees the
    // join graph is connected, so one always exists).
    let mut order = Vec::with_capacity(n);
    let start = (0..n)
        .max_by(|&a, &b| ests[a].total_cmp(&ests[b]))
        .expect("non-empty region");
    order.push(start);
    while order.len() < n {
        let connected = |cand: usize| {
            region.edges.iter().any(|&(a, b)| {
                let (la, lb) = (leaf_of(a), leaf_of(b));
                (la == cand && order.contains(&lb)) || (lb == cand && order.contains(&la))
            })
        };
        let next = (0..n)
            .filter(|c| !order.contains(c))
            .min_by(|&a, &b| {
                (!connected(a), ests[a])
                    .partial_cmp(&(!connected(b), ests[b]))
                    .expect("estimates are finite")
            })
            .expect("candidates remain");
        order.push(next);
    }
    let identity: Vec<usize> = (0..n).collect();
    if order == identity
        || hash_cost(db, &order, &ests, &region.edges, &region.offsets)
            >= hash_cost(db, &identity, &ests, &region.edges, &region.offsets)
    {
        // Original order is already best (or the greedy pick is no cheaper):
        // rebuild it verbatim from the optimized leaves.
        return build_region(&identity, leaves, &region, &arities, total_arity);
    }
    build_region(&order, leaves, &region, &arities, total_arity)
}

/// Hash-join cost of a left-deep order: each step builds on the new leaf
/// and probes with the accumulated intermediate.
/// Hash-join cost of a left-deep order under
/// [`dbsens_engine::cost::EngineCost`]: each step builds a hash table on
/// the new leaf and probes it with the accumulated intermediate.
fn hash_cost(
    db: &Database,
    order: &[usize],
    ests: &[f64],
    edges: &[(usize, usize)],
    offsets: &[usize],
) -> f64 {
    let c = &db.cost;
    let leaf_of = |abs: usize| {
        offsets
            .iter()
            .rposition(|&o| o <= abs)
            .expect("offset 0 exists")
    };
    let mut cost = 0.0;
    let mut inter = ests[order[0]];
    for (step, &leaf) in order.iter().enumerate().skip(1) {
        let joined = edges.iter().any(|&(a, b)| {
            let (la, lb) = (leaf_of(a), leaf_of(b));
            (la == leaf && order[..step].contains(&lb))
                || (lb == leaf && order[..step].contains(&la))
        });
        cost += ests[leaf] * c.hash_build_row as f64 + inter * c.hash_probe_row as f64;
        let r = ests[leaf];
        inter = if joined {
            (inter * r / inter.max(r).max(1.0)).max(1.0)
        } else {
            inter * r
        };
    }
    cost
}

/// Rebuilds the region as a left-deep inner-join tree in `order`, then
/// restores the original column order with a projection when it changed.
fn build_region(
    order: &[usize],
    mut leaves: Vec<SqlPlan>,
    region: &Region,
    arities: &[usize],
    total_arity: usize,
) -> SqlPlan {
    let n = leaves.len();
    let leaf_of = |abs: usize| {
        region
            .offsets
            .iter()
            .rposition(|&o| o <= abs)
            .expect("offset 0 exists")
    };
    // New absolute offset of each leaf under `order`.
    let mut new_offsets = vec![0usize; n];
    let mut acc = 0;
    for &leaf in order {
        new_offsets[leaf] = acc;
        acc += arities[leaf];
    }
    let new_abs = |abs: usize| {
        let leaf = leaf_of(abs);
        new_offsets[leaf] + (abs - region.offsets[leaf])
    };
    let mut plan = std::mem::replace(&mut leaves[order[0]], plan_placeholder());
    let mut placed = vec![order[0]];
    let mut used = vec![false; region.edges.len()];
    for &leaf in &order[1..] {
        let right = std::mem::replace(&mut leaves[leaf], plan_placeholder());
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for (ei, &(a, b)) in region.edges.iter().enumerate() {
            if used[ei] {
                continue;
            }
            let (la, lb) = (leaf_of(a), leaf_of(b));
            let (other_abs, mine_abs) = if la == leaf && placed.contains(&lb) {
                (b, a)
            } else if lb == leaf && placed.contains(&la) {
                (a, b)
            } else {
                continue;
            };
            used[ei] = true;
            left_keys.push(new_abs(other_abs));
            right_keys.push(mine_abs - region.offsets[leaf]);
        }
        // The binder guarantees a connected join graph and the greedy order
        // prefers connected leaves, so keys are always found here.
        assert!(
            !left_keys.is_empty(),
            "join region lost connectivity during reordering"
        );
        placed.push(leaf);
        plan = SqlPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            left_keys,
            right_keys,
            kind: JoinKind::Inner,
        };
    }
    // Edges between two already-placed leaves (join cycles) become residual
    // equality filters.
    let mut residual = Vec::new();
    for (ei, &(a, b)) in region.edges.iter().enumerate() {
        if !used[ei] {
            residual.push(SqlExpr::cmp(
                CmpOp::Eq,
                SqlExpr::Col(new_abs(a)),
                SqlExpr::Col(new_abs(b)),
            ));
        }
    }
    if let Some(pred) = SqlExpr::conjoin(residual) {
        plan = SqlPlan::Filter {
            input: Box::new(plan),
            pred,
        };
    }
    // Restore the original column order for everything above the region.
    if order.iter().copied().ne(0..n) {
        plan = SqlPlan::Project {
            input: Box::new(plan),
            exprs: (0..total_arity).map(|i| SqlExpr::Col(new_abs(i))).collect(),
        };
    }
    plan
}

fn plan_placeholder() -> SqlPlan {
    SqlPlan::Scan {
        table: dbsens_engine::db::TableId(usize::MAX),
        table_name: String::new(),
        base_arity: 0,
        filter: None,
        project: None,
    }
}

// ---------------------------------------------------------------------------
// Rule 4: projection pruning.

/// Prunes unused columns. `needed` is the set of output columns the parent
/// uses; returns the pruned plan and the old→new output-position map.
fn prune(plan: SqlPlan, needed: &BTreeSet<usize>) -> (SqlPlan, Vec<usize>) {
    match plan {
        SqlPlan::Scan {
            table,
            table_name,
            base_arity,
            filter,
            project,
        } => {
            let out_arity = project.as_ref().map_or(base_arity, Vec::len);
            if needed.len() == out_arity {
                let identity = (0..out_arity).collect();
                return (
                    SqlPlan::Scan {
                        table,
                        table_name,
                        base_arity,
                        filter,
                        project,
                    },
                    identity,
                );
            }
            // The scan filter runs against the base layout before projection,
            // so pruning never has to keep filter columns in the output.
            let kept: Vec<usize> = needed.iter().copied().collect();
            let new_project: Vec<usize> = kept
                .iter()
                .map(|&i| project.as_ref().map_or(i, |p| p[i]))
                .collect();
            let mut map = vec![usize::MAX; out_arity];
            for (new, &old) in kept.iter().enumerate() {
                map[old] = new;
            }
            (
                SqlPlan::Scan {
                    table,
                    table_name,
                    base_arity,
                    filter,
                    project: Some(new_project),
                },
                map,
            )
        }
        SqlPlan::Filter { input, pred } => {
            let mut wanted = needed.clone();
            pred.for_each_col(&mut |c| {
                wanted.insert(c);
            });
            let (input, map) = prune(*input, &wanted);
            let pred = pred.map_cols(&mut |c| map[c]);
            (
                SqlPlan::Filter {
                    input: Box::new(input),
                    pred,
                },
                map,
            )
        }
        SqlPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => {
            let la = left.arity();
            let ra = right.arity();
            let mut lneed: BTreeSet<usize> = left_keys.iter().copied().collect();
            let mut rneed: BTreeSet<usize> = right_keys.iter().copied().collect();
            for &i in needed {
                if i < la {
                    lneed.insert(i);
                } else {
                    rneed.insert(i - la);
                }
            }
            let (left, lmap) = prune(*left, &lneed);
            let (right, rmap) = prune(*right, &rneed);
            let la_new = left.arity();
            let mut map = vec![usize::MAX; la + ra];
            for old in 0..la {
                if lmap[old] != usize::MAX {
                    map[old] = lmap[old];
                }
            }
            for old in 0..ra {
                if rmap[old] != usize::MAX {
                    map[la + old] = la_new + rmap[old];
                }
            }
            (
                SqlPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    left_keys: left_keys.iter().map(|&k| lmap[k]).collect(),
                    right_keys: right_keys.iter().map(|&k| rmap[k]).collect(),
                    kind,
                },
                map,
            )
        }
        SqlPlan::Agg {
            input,
            group_by,
            aggs,
        } => {
            let keys = group_by.len();
            // Group keys always stay (they define the grouping); aggregates
            // the parent never reads are dropped.
            let kept_aggs: Vec<usize> = (0..aggs.len())
                .filter(|k| needed.contains(&(keys + k)) || needed.is_empty())
                .collect();
            let kept_aggs = if kept_aggs.is_empty() {
                vec![0]
            } else {
                kept_aggs
            };
            let mut wanted: BTreeSet<usize> = group_by.iter().copied().collect();
            for &k in &kept_aggs {
                aggs[k].expr.for_each_col(&mut |c| {
                    wanted.insert(c);
                });
            }
            let (input, imap) = prune(*input, &wanted);
            let group_by: Vec<usize> = group_by.iter().map(|&g| imap[g]).collect();
            let new_aggs: Vec<SqlAgg> = kept_aggs
                .iter()
                .map(|&k| SqlAgg {
                    func: aggs[k].func,
                    expr: aggs[k].expr.map_cols(&mut |c| imap[c]),
                })
                .collect();
            let mut map = vec![usize::MAX; keys + aggs.len()];
            for (i, slot) in map.iter_mut().take(keys).enumerate() {
                *slot = i;
            }
            for (new_k, &old_k) in kept_aggs.iter().enumerate() {
                map[keys + old_k] = keys + new_k;
            }
            (
                SqlPlan::Agg {
                    input: Box::new(input),
                    group_by,
                    aggs: new_aggs,
                },
                map,
            )
        }
        SqlPlan::Project { input, exprs } => {
            let kept: Vec<usize> = (0..exprs.len()).filter(|i| needed.contains(i)).collect();
            let kept = if kept.is_empty() { vec![0] } else { kept };
            let mut wanted = BTreeSet::new();
            for &i in &kept {
                exprs[i].for_each_col(&mut |c| {
                    wanted.insert(c);
                });
            }
            let (input, imap) = prune(*input, &wanted);
            let new_exprs: Vec<SqlExpr> = kept
                .iter()
                .map(|&i| exprs[i].map_cols(&mut |c| imap[c]))
                .collect();
            let mut map = vec![usize::MAX; exprs.len()];
            for (new, &old) in kept.iter().enumerate() {
                map[old] = new;
            }
            (
                SqlPlan::Project {
                    input: Box::new(input),
                    exprs: new_exprs,
                },
                map,
            )
        }
        SqlPlan::Sort { input, keys } => {
            let mut wanted = needed.clone();
            for &(c, _) in &keys {
                wanted.insert(c);
            }
            let (input, map) = prune(*input, &wanted);
            (
                SqlPlan::Sort {
                    input: Box::new(input),
                    keys: keys.iter().map(|&(c, d)| (map[c], d)).collect(),
                },
                map,
            )
        }
        SqlPlan::Limit { input, n } => {
            let (input, map) = prune(*input, needed);
            (
                SqlPlan::Limit {
                    input: Box::new(input),
                    n,
                },
                map,
            )
        }
    }
}
