//! SQL frontend for ad-hoc query sensitivity sweeps.
//!
//! This crate turns a pragmatic SQL subset into the engine's logical plans
//! so hand-written statements run through the exact same optimizer,
//! executor paths, and resource-knob sweeps as the fixed workload
//! generators:
//!
//! ```text
//! SQL text ──lex/parse──▶ AST ──bind──▶ SqlPlan ──optimize──▶ SqlPlan
//!     ──lower──▶ dbsens_engine::plan::Logical ──engine optimize──▶ PhysPlan
//! ```
//!
//! The supported grammar (SELECT-FROM-WHERE, INNER/LEFT joins, GROUP BY
//! with aggregates, ORDER BY/LIMIT, scalar subqueries, and
//! INSERT/UPDATE/DELETE/CREATE TABLE) is documented in EBNF in
//! `docs/SQL.md`, together with the optimizer rule catalog and the
//! lowering table.
//!
//! # End to end
//!
//! ```
//! use dbsens_engine::db::Database;
//! use dbsens_engine::governor::ExecMode;
//! use dbsens_sql::{run_script, StatementOutcome};
//! use dbsens_storage::schema::{ColType, Schema};
//! use dbsens_storage::value::Value;
//!
//! let mut db = Database::new(1000.0, 1 << 30);
//! db.create_table(
//!     "t",
//!     Schema::new(&[("id", ColType::Int), ("v", ColType::Int)]),
//!     (0..10).map(|i| vec![Value::Int(i), Value::Int(i * i)]).collect(),
//! );
//! let out = run_script(&mut db, "SELECT SUM(v) FROM t WHERE id < 5", ExecMode::Morsel).unwrap();
//! // SUM accumulates in floating point: 0 + 1 + 4 + 9 + 16.
//! assert_eq!(out, vec![StatementOutcome::Rows(vec![vec![Value::Float(30.0)]])]);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod exec;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod optimizer;
pub mod parser;

pub use ast::Statement;
pub use binder::{bind, BoundStatement};
pub use exec::{run_script, run_statement, StatementOutcome};
pub use ir::{SqlAgg, SqlExpr, SqlPlan};

use dbsens_engine::db::Database;
use dbsens_engine::plan::Logical;
use std::fmt;

/// A position-annotated SQL error (lex, parse, bind, or lowering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based source line, or 0 when the error has no position.
    pub line: usize,
    /// 1-based source column, or 0 when the error has no position.
    pub col: usize,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}:{}: {}", self.line, self.col, self.msg)
        }
    }
}

impl std::error::Error for SqlError {}

/// Parses a `;`-separated SQL script into statements.
///
/// Errors carry 1-based line/column positions and the parser never panics
/// on arbitrary input.
///
/// # Examples
///
/// ```
/// let stmts = dbsens_sql::parse("SELECT a, COUNT(*) FROM t GROUP BY a").unwrap();
/// assert_eq!(stmts.len(), 1);
///
/// let err = dbsens_sql::parse("SELECT a FRM t").unwrap_err();
/// assert_eq!((err.line, err.col), (1, 10));
/// ```
pub fn parse(sql: &str) -> Result<Vec<Statement>, SqlError> {
    parser::parse_script(sql)
}

/// Optimizes a bound plan: subquery decorrelation, predicate pushdown,
/// cardinality-greedy join reordering, and projection pruning, in that
/// order. See `docs/SQL.md` for the rule catalog.
///
/// # Examples
///
/// ```
/// use dbsens_engine::db::Database;
/// use dbsens_sql::{bind, optimize, BoundStatement, SqlPlan};
/// use dbsens_storage::schema::{ColType, Schema};
/// use dbsens_storage::value::Value;
///
/// let mut db = Database::new(1000.0, 1 << 30);
/// db.create_table(
///     "t",
///     Schema::new(&[("id", ColType::Int), ("v", ColType::Int)]),
///     (0..10).map(|i| vec![Value::Int(i), Value::Int(i)]).collect(),
/// );
/// let stmt = &dbsens_sql::parse("SELECT id FROM t WHERE v > 3").unwrap()[0];
/// let BoundStatement::Select(plan) = bind(&db, stmt).unwrap() else { unreachable!() };
/// let optimized = optimize(&db, &plan);
/// // The WHERE predicate was pushed into the scan, and the scan now reads
/// // both referenced columns but no more.
/// assert!(optimized.render().contains("Scan t [filtered]"));
/// ```
pub fn optimize(db: &Database, plan: &SqlPlan) -> SqlPlan {
    optimizer::optimize(db, plan)
}

/// Lowers a typed plan onto [`dbsens_engine::plan::Logical`], re-deriving
/// cardinality estimates bottom-up and inlining uncorrelated scalar
/// subqueries as literals.
///
/// # Examples
///
/// ```
/// use dbsens_engine::db::Database;
/// use dbsens_sql::{bind, lower, BoundStatement};
/// use dbsens_storage::schema::{ColType, Schema};
/// use dbsens_storage::value::Value;
///
/// let mut db = Database::new(1000.0, 1 << 30);
/// db.create_table(
///     "t",
///     Schema::new(&[("id", ColType::Int)]),
///     (0..100).map(|i| vec![Value::Int(i)]).collect(),
/// );
/// let stmt = &dbsens_sql::parse("SELECT id FROM t").unwrap()[0];
/// let BoundStatement::Select(plan) = bind(&db, stmt).unwrap() else { unreachable!() };
/// let logical = lower(&db, &plan).unwrap();
/// assert_eq!(logical.est_rows, 100.0);
/// ```
pub fn lower(db: &Database, plan: &SqlPlan) -> Result<Logical, SqlError> {
    lower::lower(db, plan)
}

/// One-stop compilation of a single `SELECT` statement into an engine
/// logical plan: parse → bind → optimize → lower.
///
/// Errors if the script is not exactly one `SELECT` statement.
pub fn compile(db: &Database, sql: &str) -> Result<Logical, SqlError> {
    let stmts = parse(sql)?;
    let [stmt] = stmts.as_slice() else {
        return Err(SqlError {
            msg: format!("expected exactly one statement, got {}", stmts.len()),
            line: 1,
            col: 1,
        });
    };
    match bind(db, stmt)? {
        BoundStatement::Select(plan) => lower(db, &optimize(db, &plan)),
        _ => Err(SqlError {
            msg: "expected a SELECT statement".into(),
            line: 1,
            col: 1,
        }),
    }
}
