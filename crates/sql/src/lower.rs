//! Lowering: [`SqlPlan`] → [`dbsens_engine::plan::Logical`].
//!
//! The engine's logical plans carry cardinality estimates on every node, so
//! lowering re-derives them bottom-up with [`crate::optimizer::estimate`];
//! optimizer rewrites therefore never leave stale estimates behind.
//! Uncorrelated scalar subqueries are evaluated here — once, on the volcano
//! path — and inlined as literals, so the engine plan that reaches the knob
//! sweep is subquery-free. A correlated subquery that survived
//! decorrelation is a hard error.

use crate::ir::{SqlExpr, SqlPlan};
use crate::optimizer::estimate;
use crate::SqlError;
use dbsens_engine::db::Database;
use dbsens_engine::exec::execute;
use dbsens_engine::expr::Expr;
use dbsens_engine::governor::Governor;
use dbsens_engine::optimizer::optimize as engine_optimize;
use dbsens_engine::plan::{AggSpec, Logical};
use dbsens_storage::value::Value;

fn no_pos(msg: impl Into<String>) -> SqlError {
    SqlError {
        msg: msg.into(),
        line: 0,
        col: 0,
    }
}

/// Lowers a typed plan onto the engine's logical algebra.
pub fn lower(db: &Database, plan: &SqlPlan) -> Result<Logical, SqlError> {
    let est = estimate(db, plan);
    match plan {
        SqlPlan::Scan {
            table,
            filter,
            project,
            ..
        } => {
            let filter = filter.as_ref().map(|f| lower_expr(db, f)).transpose()?;
            Ok(match project {
                Some(cols) => Logical::scan_project(*table, filter, cols.clone(), est),
                None => Logical::scan(*table, filter, est),
            })
        }
        SqlPlan::Filter { input, pred } => {
            let child_est = estimate(db, input);
            let sel = if child_est > 0.0 {
                (est / child_est).clamp(0.0, 1.0)
            } else {
                1.0
            };
            Ok(lower(db, input)?.filter(lower_expr(db, pred)?, sel))
        }
        SqlPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => Ok(lower(db, left)?.join(
            lower(db, right)?,
            left_keys.clone(),
            right_keys.clone(),
            *kind,
            est,
        )),
        SqlPlan::Agg {
            input,
            group_by,
            aggs,
        } => {
            let specs = aggs
                .iter()
                .map(|a| {
                    Ok(AggSpec {
                        func: a.func,
                        expr: lower_expr(db, &a.expr)?,
                    })
                })
                .collect::<Result<Vec<_>, SqlError>>()?;
            Ok(lower(db, input)?.agg(group_by.clone(), specs, est))
        }
        SqlPlan::Project { input, exprs } => {
            let exprs = exprs
                .iter()
                .map(|e| lower_expr(db, e))
                .collect::<Result<Vec<_>, SqlError>>()?;
            Ok(lower(db, input)?.project(exprs))
        }
        SqlPlan::Sort { input, keys } => Ok(lower(db, input)?.sort(keys.clone())),
        SqlPlan::Limit { input, n } => Ok(lower(db, input)?.top(*n)),
    }
}

/// Converts a subquery-free, outer-reference-free expression. Used by the
/// binder for constant folding.
pub(crate) fn to_engine_expr(e: &SqlExpr) -> Result<Expr, SqlError> {
    convert(e, &mut |_| {
        Err(no_pos("subqueries are not allowed in this context"))
    })
}

/// Converts an expression, evaluating scalar subqueries through the engine.
pub(crate) fn lower_expr(db: &Database, e: &SqlExpr) -> Result<Expr, SqlError> {
    convert(e, &mut |plan| scalar_subquery_value(db, plan))
}

/// Runs an uncorrelated scalar subquery on the volcano path and returns its
/// single value (NULL when it yields no rows).
fn scalar_subquery_value(db: &Database, plan: &SqlPlan) -> Result<Value, SqlError> {
    if plan.is_correlated() {
        return Err(no_pos(
            "correlated subquery is too complex to decorrelate \
             (supported shape: a scalar SUM/AVG/MIN/MAX over one table, \
             correlated by equality)",
        ));
    }
    let logical = lower(db, plan)?;
    let ctx = Governor::paper_default(1).plan_context(db);
    let phys = engine_optimize(db, &logical, &ctx);
    let result = execute(db, &phys);
    match result.rows.len() {
        0 => Ok(Value::Null),
        1 => Ok(result.rows[0][0].clone()),
        n => Err(no_pos(format!(
            "scalar subquery returned {n} rows (expected at most one)"
        ))),
    }
}

fn convert(
    e: &SqlExpr,
    subquery: &mut impl FnMut(&SqlPlan) -> Result<Value, SqlError>,
) -> Result<Expr, SqlError> {
    Ok(match e {
        SqlExpr::Col(i) => Expr::Col(*i),
        SqlExpr::OuterCol(_) => {
            return Err(no_pos(
                "correlated subquery is too complex to decorrelate \
                 (an outer column reference survived optimization)",
            ))
        }
        SqlExpr::Lit(v) => Expr::Lit(v.clone()),
        SqlExpr::Add(a, b) => convert(a, subquery)?.add(convert(b, subquery)?),
        SqlExpr::Sub(a, b) => convert(a, subquery)?.sub(convert(b, subquery)?),
        SqlExpr::Mul(a, b) => convert(a, subquery)?.mul(convert(b, subquery)?),
        SqlExpr::Div(a, b) => convert(a, subquery)?.div(convert(b, subquery)?),
        SqlExpr::Cmp(op, a, b) => Expr::cmp(*op, convert(a, subquery)?, convert(b, subquery)?),
        SqlExpr::And(a, b) => convert(a, subquery)?.and(convert(b, subquery)?),
        SqlExpr::Or(a, b) => convert(a, subquery)?.or(convert(b, subquery)?),
        SqlExpr::Not(a) => Expr::Not(Box::new(convert(a, subquery)?)),
        SqlExpr::StartsWith(a, s) => Expr::StartsWith(Box::new(convert(a, subquery)?), s.clone()),
        SqlExpr::Contains(a, s) => Expr::Contains(Box::new(convert(a, subquery)?), s.clone()),
        SqlExpr::InList(a, vs) => Expr::InList(Box::new(convert(a, subquery)?), vs.clone()),
        SqlExpr::Between(a, lo, hi) => {
            Expr::Between(Box::new(convert(a, subquery)?), lo.clone(), hi.clone())
        }
        SqlExpr::IsNull(a) => Expr::IsNull(Box::new(convert(a, subquery)?)),
        SqlExpr::Subquery(plan) => Expr::Lit(subquery(plan)?),
    })
}
