//! End-to-end semantics: SQL statements against a small catalog, checked
//! on both executor paths, with and without the frontend optimizer.

use dbsens_engine::db::Database;
use dbsens_engine::exec::{execute, rows_digest};
use dbsens_engine::governor::{ExecMode, Governor};
use dbsens_engine::optimizer::optimize as engine_optimize;
use dbsens_engine::pushexec::execute_push;
use dbsens_sql::{bind, lower, optimize, run_script, BoundStatement, StatementOutcome};
use dbsens_storage::schema::{ColType, Schema};
use dbsens_storage::value::{Row, Value};

fn i(v: i64) -> Value {
    Value::Int(v)
}

fn s(v: &str) -> Value {
    Value::Str(v.into())
}

/// orders(okey, ckey, total, region) + customers(ckey, name, tier).
fn db() -> Database {
    let mut db = Database::new(100.0, 1 << 30);
    db.create_table(
        "customers",
        Schema::new(&[
            ("ckey", ColType::Int),
            ("name", ColType::Str(16)),
            ("tier", ColType::Int),
        ]),
        (0..20)
            .map(|c| vec![i(c), s(&format!("cust{c}")), i(c % 3)])
            .collect(),
    );
    db.create_table(
        "orders",
        Schema::new(&[
            ("okey", ColType::Int),
            ("ckey", ColType::Int),
            ("total", ColType::Int),
            ("region", ColType::Str(8)),
        ]),
        (0..200)
            .map(|o| {
                vec![
                    i(o),
                    i(o % 20),
                    i((o * 7) % 100),
                    s(if o % 2 == 0 { "east" } else { "west" }),
                ]
            })
            .collect(),
    );
    db
}

/// Runs one SELECT four ways (optimized/unoptimized × morsel/volcano) and
/// asserts identical row digests, returning the rows.
fn q(db: &Database, sql: &str) -> Vec<Row> {
    let stmts = dbsens_sql::parse(sql).unwrap();
    assert_eq!(stmts.len(), 1, "expected one statement: {sql}");
    let BoundStatement::Select(plan) = bind(db, &stmts[0]).unwrap() else {
        panic!("expected a query: {sql}");
    };
    let mut digests = Vec::new();
    let mut rows = Vec::new();
    for plan in [plan.clone(), optimize(db, &plan)] {
        let logical = match lower(db, &plan) {
            Ok(l) => l,
            // Correlated subqueries only become executable after the
            // decorrelation rule runs; the raw plan legitimately fails.
            Err(_) if digests.is_empty() => continue,
            Err(e) => panic!("lowering failed: {e}: {sql}"),
        };
        let ctx = Governor::paper_default(4).plan_context(db);
        let phys = engine_optimize(db, &logical, &ctx);
        let volcano = execute(db, &phys).rows;
        let morsel = execute_push(db, &phys)
            .map(|r| r.rows)
            .unwrap_or_else(|| execute(db, &phys).rows);
        assert_eq!(
            rows_digest(&volcano),
            rows_digest(&morsel),
            "executor paths diverged: {sql}"
        );
        digests.push(rows_digest(&volcano));
        rows = volcano;
    }
    if digests.len() == 2 {
        assert_eq!(
            digests[0], digests[1],
            "optimizer changed the result: {sql}"
        );
    }
    rows
}

#[test]
fn filter_and_projection() {
    let rows = q(
        &db(),
        "SELECT okey, total FROM orders WHERE total > 90 AND region = 'east'",
    );
    assert!(!rows.is_empty());
    for r in &rows {
        assert_eq!(r.len(), 2);
        assert!(r[1].as_int() > 90);
    }
}

#[test]
fn join_with_where_on_both_sides() {
    let rows = q(
        &db(),
        "SELECT o.okey, c.name FROM orders o JOIN customers c ON o.ckey = c.ckey \
         WHERE c.tier = 1 AND o.total < 50",
    );
    assert!(!rows.is_empty());
}

#[test]
fn left_join_keeps_unmatched_rows() {
    let mut db = db();
    // A customer with no orders.
    db.insert_row(db.table_id("customers"), vec![i(99), s("ghost"), i(0)]);
    let rows = q(
        &db,
        "SELECT c.ckey, o.okey FROM customers c LEFT JOIN orders o ON c.ckey = o.ckey \
         WHERE c.ckey = 99",
    );
    assert_eq!(rows, vec![vec![i(99), Value::Null]]);
}

#[test]
fn group_by_having_order_limit() {
    let rows = q(
        &db(),
        "SELECT region, COUNT(*) AS n, SUM(total) AS t FROM orders \
         GROUP BY region HAVING COUNT(*) > 10 ORDER BY t DESC LIMIT 1",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].len(), 3);
}

#[test]
fn order_by_ordinal_and_alias() {
    let by_alias = q(
        &db(),
        "SELECT okey AS k FROM orders ORDER BY k DESC LIMIT 5",
    );
    let by_ordinal = q(
        &db(),
        "SELECT okey AS k FROM orders ORDER BY 1 DESC LIMIT 5",
    );
    assert_eq!(by_alias, by_ordinal);
    assert_eq!(by_alias[0][0], i(199));
}

#[test]
fn uncorrelated_scalar_subquery() {
    let rows = q(
        &db(),
        "SELECT okey FROM orders WHERE total > (SELECT AVG(total) FROM orders) ORDER BY okey LIMIT 3",
    );
    assert_eq!(rows.len(), 3);
}

#[test]
fn correlated_subquery_decorrelates() {
    // Orders above their customer's average order value.
    let rows = q(
        &db(),
        "SELECT o.okey FROM orders o WHERE o.total > \
         (SELECT AVG(i.total) FROM orders i WHERE i.ckey = o.ckey) \
         ORDER BY o.okey",
    );
    assert!(!rows.is_empty());
    // Cross-check one row by hand.
    let db = db();
    let orders = db.table(db.table_id("orders"));
    let first = rows[0][0].as_int();
    let (ckey, total) = orders
        .heap
        .iter()
        .find(|(_, r)| r[0].as_int() == first)
        .map(|(_, r)| (r[1].as_int(), r[2].as_int()))
        .unwrap();
    let same_cust: Vec<i64> = orders
        .heap
        .iter()
        .filter(|(_, r)| r[1].as_int() == ckey)
        .map(|(_, r)| r[2].as_int())
        .collect();
    let avg = same_cust.iter().sum::<i64>() as f64 / same_cust.len() as f64;
    assert!((total as f64) > avg);
}

#[test]
fn three_way_join_reorders_consistently() {
    let mut db = db();
    db.create_table(
        "regions",
        Schema::new(&[("rname", ColType::Str(8)), ("zone", ColType::Int)]),
        vec![vec![s("east"), i(1)], vec![s("west"), i(2)]],
    );
    let rows = q(
        &db,
        "SELECT c.name, o.total, r.zone FROM customers c \
         JOIN orders o ON c.ckey = o.ckey \
         JOIN regions r ON o.region = r.rname \
         WHERE r.zone = 1 AND c.tier = 2 ORDER BY o.total DESC, c.name LIMIT 7",
    );
    assert_eq!(rows.len(), 7);
    for r in &rows {
        assert_eq!(r[2], i(1));
    }
}

#[test]
fn expressions_in_select_and_where() {
    let rows = q(
        &db(),
        "SELECT okey, total * 2 + 1 FROM orders WHERE okey BETWEEN 10 AND 12 ORDER BY okey",
    );
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0][1].as_int(), rows[0][0].as_int() * 7 % 100 * 2 + 1);
}

#[test]
fn in_list_like_and_null_predicates() {
    let rows = q(
        &db(),
        "SELECT name FROM customers WHERE name LIKE 'cust1%' AND ckey IN (1, 10, 11) \
         AND name IS NOT NULL ORDER BY name",
    );
    assert_eq!(rows.len(), 3);
}

#[test]
fn dml_roundtrip() {
    let mut db = db();
    let out = run_script(
        &mut db,
        "CREATE TABLE audit (id INT, note VARCHAR(16)); \
         INSERT INTO audit VALUES (1, 'a'), (2, 'b'), (3, NULL); \
         UPDATE audit SET note = 'fixed' WHERE note IS NULL; \
         DELETE FROM audit WHERE id = 1; \
         SELECT id, note FROM audit ORDER BY id",
        ExecMode::Morsel,
    )
    .unwrap();
    assert_eq!(out[0], StatementOutcome::Created);
    assert_eq!(out[1], StatementOutcome::Affected(3));
    assert_eq!(out[2], StatementOutcome::Affected(1));
    assert_eq!(out[3], StatementOutcome::Affected(1));
    assert_eq!(
        out[4],
        StatementOutcome::Rows(vec![vec![i(2), s("b")], vec![i(3), s("fixed")],])
    );
}

#[test]
fn bind_errors_are_positioned() {
    let db = db();
    let stmt = &dbsens_sql::parse("SELECT nope\nFROM orders").unwrap()[0];
    let err = bind(&db, stmt).unwrap_err();
    assert_eq!((err.line, err.col), (1, 8));
    assert!(err.msg.contains("unknown column"));

    let stmt = &dbsens_sql::parse("SELECT total FROM orders GROUP BY region").unwrap()[0];
    let err = bind(&db, stmt).unwrap_err();
    assert!(err.msg.contains("GROUP BY"), "{err}");
}

#[test]
fn pushdown_reaches_the_scan_and_prune_projects_it() {
    let db = db();
    let stmt = &dbsens_sql::parse(
        "SELECT o.okey FROM orders o JOIN customers c ON o.ckey = c.ckey WHERE c.tier = 2",
    )
    .unwrap()[0];
    let BoundStatement::Select(plan) = bind(&db, stmt).unwrap() else {
        panic!();
    };
    let rendered = optimize(&db, &plan).render();
    // Both scans end up filtered/projected; no Filter node survives above.
    assert!(
        !rendered.contains("Filter"),
        "predicates should sink into scans:\n{rendered}"
    );
    assert!(
        rendered.contains("cols="),
        "pruning should project scans:\n{rendered}"
    );
}

#[test]
fn scalar_aggregate_over_empty_input() {
    let rows = q(
        &db(),
        "SELECT COUNT(*), SUM(total) FROM orders WHERE okey < 0",
    );
    // Scalar aggregation always yields one row; SUM of nothing is NULL.
    assert_eq!(rows, vec![vec![i(0), Value::Null]]);
}
