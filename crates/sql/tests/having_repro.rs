use dbsens_engine::db::Database;
use dbsens_engine::exec::execute;
use dbsens_engine::governor::Governor;
use dbsens_engine::optimizer::optimize as engine_optimize;
use dbsens_sql::{bind, lower, optimize, BoundStatement};
use dbsens_storage::schema::{ColType, Schema};
use dbsens_storage::value::Value;

fn i(v: i64) -> Value {
    Value::Int(v)
}
fn s(v: &str) -> Value {
    Value::Str(v.into())
}

fn db() -> Database {
    let mut db = Database::new(100.0, 1 << 30);
    db.create_table(
        "customers",
        Schema::new(&[
            ("ckey", ColType::Int),
            ("name", ColType::Str(16)),
            ("tier", ColType::Int),
        ]),
        (0..20)
            .map(|c| vec![i(c), s(&format!("cust{c}")), i(c % 3)])
            .collect(),
    );
    db.create_table(
        "orders",
        Schema::new(&[
            ("okey", ColType::Int),
            ("ckey", ColType::Int),
            ("total", ColType::Int),
            ("region", ColType::Str(8)),
        ]),
        (0..200)
            .map(|o| {
                vec![
                    i(o),
                    i(o % 20),
                    i((o * 7) % 100),
                    s(if o % 2 == 0 { "east" } else { "west" }),
                ]
            })
            .collect(),
    );
    db
}

#[test]
fn correlated_subquery_in_having() {
    let db = db();
    let sql = "SELECT ckey, SUM(total) FROM orders GROUP BY ckey \
               HAVING SUM(total) > (SELECT MIN(tier) FROM customers WHERE customers.ckey = orders.ckey)";
    let stmts = dbsens_sql::parse(sql).unwrap();
    let BoundStatement::Select(plan) = bind(&db, &stmts[0]).unwrap() else {
        panic!()
    };
    let opt = optimize(&db, &plan);
    eprintln!("OPTIMIZED PLAN:\n{}", opt.render());
    let logical = lower(&db, &opt).expect("lowering optimized plan");
    let ctx = Governor::paper_default(4).plan_context(&db);
    let phys = engine_optimize(&db, &logical, &ctx);
    let rows = execute(&db, &phys).rows;
    eprintln!("rows returned: {}", rows.len());
    // Every customer's SUM(total) is in the hundreds, MIN(tier) <= 2,
    // so all 20 groups must pass the HAVING.
    assert_eq!(rows.len(), 20);
}
