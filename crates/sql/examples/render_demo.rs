//! Prints before/after optimizer plans for the docs' worked examples.
//! Regenerate the `docs/SQL.md` rule-catalog snippets with:
//! `cargo run -p dbsens-sql --example render_demo`

use dbsens_engine::db::Database;
use dbsens_sql::{bind, optimize, BoundStatement};
use dbsens_storage::schema::{ColType, Schema};
use dbsens_storage::value::Value;

fn main() {
    let mut db = Database::new(100.0, 1 << 30);
    db.create_table(
        "customers",
        Schema::new(&[
            ("ckey", ColType::Int),
            ("name", ColType::Str(16)),
            ("tier", ColType::Int),
        ]),
        (0..20)
            .map(|c| {
                vec![
                    Value::Int(c),
                    Value::Str(format!("cust{c}")),
                    Value::Int(c % 3),
                ]
            })
            .collect(),
    );
    db.create_table(
        "orders",
        Schema::new(&[
            ("okey", ColType::Int),
            ("ckey", ColType::Int),
            ("total", ColType::Int),
            ("region", ColType::Str(8)),
        ]),
        (0..200)
            .map(|o| {
                vec![
                    Value::Int(o),
                    Value::Int(o % 20),
                    Value::Int((o * 7) % 100),
                    Value::Str(if o % 2 == 0 { "east" } else { "west" }.into()),
                ]
            })
            .collect(),
    );
    let queries = [
        ("pushdown + pruning", "SELECT c.name FROM customers c JOIN orders o ON c.ckey = o.ckey WHERE o.total > 90 AND c.tier = 1"),
        ("decorrelation", "SELECT o.okey FROM orders o WHERE o.total > (SELECT AVG(i.total) FROM orders i WHERE i.ckey = o.ckey)"),
        ("join reordering", "SELECT c.name, o.total FROM customers c JOIN orders o ON c.ckey = o.ckey WHERE o.region = 'east'"),
    ];
    for (label, sql) in queries {
        let stmts = dbsens_sql::parse(sql).unwrap();
        let BoundStatement::Select(plan) = bind(&db, &stmts[0]).unwrap() else {
            unreachable!();
        };
        println!(
            "=== {label}\n--- sql\n{sql}\n--- before\n{}--- after\n{}",
            plan.render(),
            optimize(&db, &plan).render()
        );
    }
}
