//! Property-based tests for WAL crash semantics.
//!
//! Random transactional histories (begin / write / delete / commit /
//! abort / flush-completion) drive the logical log, then a crash keeps an
//! arbitrary sector prefix of the oldest in-flight flush. An ARIES-style
//! replay of the surviving log must agree with a committed-transactions-only
//! oracle: no committed record is ever lost, no aborted record is ever
//! resurrected, and the checksum chain rejects any corrupted sector.

use dbsens_storage::value::{Row, Value};
use dbsens_storage::wal::{scan_log, ClrAction, Lsn, Wal, WalRecord};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum WalOp {
    /// Open a transaction on a client connection (no-op if one is open).
    Begin(u8),
    /// Upsert `client`'s slot to a value (implicitly begins).
    Write(u8, u8, i64),
    /// Delete `client`'s slot if present (implicitly begins).
    Delete(u8, u8),
    /// Commit: append the commit record and submit a group-commit flush.
    Commit(u8),
    /// Abort: append CLRs in reverse order, then the abort record.
    Abort(u8),
    /// The device completes the oldest in-flight flush.
    FlushComplete,
}

fn wal_ops() -> impl Strategy<Value = Vec<WalOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..3).prop_map(WalOp::Begin),
            ((0u8..3), (0u8..4), -100i64..100).prop_map(|(c, s, v)| WalOp::Write(c, s, v)),
            ((0u8..3), (0u8..4), -100i64..100).prop_map(|(c, s, v)| WalOp::Write(c, s, v)),
            ((0u8..3), (0u8..4)).prop_map(|(c, s)| WalOp::Delete(c, s)),
            (0u8..3).prop_map(WalOp::Commit),
            (0u8..3).prop_map(WalOp::Abort),
            Just(WalOp::FlushComplete),
        ],
        1..80,
    )
}

/// One undoable operation of an open transaction.
#[derive(Debug, Clone)]
enum Undo {
    /// Undo an insert: remove the row again.
    Remove { lsn: u64, rid: u64 },
    /// Undo an update or delete: restore the before image.
    Put {
        lsn: u64,
        rid: u64,
        before: Row,
        was_delete: bool,
    },
}

/// Drives a captured [`Wal`] through a history. Each client owns a
/// disjoint rid range (rid = client * 16 + slot), mirroring the engine's
/// exact-row locking under capture: one writer per logical row at a time.
struct Harness {
    wal: Wal,
    /// Live table state as the workload saw it (rid -> row).
    table: BTreeMap<u64, Row>,
    /// Open transaction per client, with its undo chain.
    active: BTreeMap<u8, (u64, Vec<Undo>)>,
    next_txn: u64,
    /// Every record appended, in LSN order.
    appended: Vec<(Lsn, WalRecord)>,
}

impl Harness {
    fn new() -> Self {
        let mut wal = Wal::new();
        wal.enable_capture();
        Harness {
            wal,
            table: BTreeMap::new(),
            active: BTreeMap::new(),
            next_txn: 0,
            appended: Vec::new(),
        }
    }

    fn append(&mut self, rec: WalRecord) -> u64 {
        let lsn = self.wal.append_record(&rec, 100);
        self.appended.push((lsn, rec));
        lsn.0
    }

    fn begin(&mut self, client: u8) -> u64 {
        if let Some((txn, _)) = self.active.get(&client) {
            return *txn;
        }
        self.next_txn += 1;
        let txn = self.next_txn;
        self.active.insert(client, (txn, Vec::new()));
        self.append(WalRecord::Begin { txn });
        txn
    }

    fn apply(&mut self, op: &WalOp) {
        match *op {
            WalOp::Begin(c) => {
                self.begin(c);
            }
            WalOp::Write(c, s, v) => {
                let txn = self.begin(c);
                let rid = c as u64 * 16 + s as u64;
                let row = vec![Value::Int(v)];
                let lsn = match self.table.get(&rid).cloned() {
                    Some(before) => {
                        let lsn = self.append(WalRecord::Update {
                            txn,
                            table: 0,
                            rid,
                            before: before.clone(),
                            after: row.clone(),
                        });
                        self.active.get_mut(&c).unwrap().1.push(Undo::Put {
                            lsn,
                            rid,
                            before,
                            was_delete: false,
                        });
                        lsn
                    }
                    None => {
                        let lsn = self.append(WalRecord::Insert {
                            txn,
                            table: 0,
                            rid,
                            row: row.clone(),
                        });
                        self.active
                            .get_mut(&c)
                            .unwrap()
                            .1
                            .push(Undo::Remove { lsn, rid });
                        lsn
                    }
                };
                let _ = lsn;
                self.table.insert(rid, row);
            }
            WalOp::Delete(c, s) => {
                let rid = c as u64 * 16 + s as u64;
                let Some(before) = self.table.get(&rid).cloned() else {
                    return;
                };
                let txn = self.begin(c);
                let lsn = self.append(WalRecord::Delete {
                    txn,
                    table: 0,
                    rid,
                    row: before.clone(),
                });
                self.active.get_mut(&c).unwrap().1.push(Undo::Put {
                    lsn,
                    rid,
                    before,
                    was_delete: true,
                });
                self.table.remove(&rid);
            }
            WalOp::Commit(c) => {
                let Some((txn, _)) = self.active.remove(&c) else {
                    return;
                };
                self.append(WalRecord::Commit { txn });
                self.wal.flush_for_commit();
            }
            WalOp::Abort(c) => {
                let Some((txn, undo)) = self.active.remove(&c) else {
                    return;
                };
                for u in undo.into_iter().rev() {
                    match u {
                        Undo::Remove { lsn, rid } => {
                            self.table.remove(&rid);
                            self.append(WalRecord::Clr {
                                txn,
                                undo_of: lsn,
                                table: 0,
                                rid,
                                action: ClrAction::Remove,
                            });
                        }
                        Undo::Put {
                            lsn,
                            rid,
                            before,
                            was_delete,
                        } => {
                            self.table.insert(rid, before.clone());
                            let action = if was_delete {
                                ClrAction::Reinsert { row: before }
                            } else {
                                ClrAction::SetTo { row: before }
                            };
                            self.append(WalRecord::Clr {
                                txn,
                                undo_of: lsn,
                                table: 0,
                                rid,
                                action,
                            });
                        }
                    }
                }
                self.append(WalRecord::Abort { txn });
            }
            WalOp::FlushComplete => self.wal.flush_durable(),
        }
    }
}

/// ARIES-style recovery over a scanned log: repeat history (redo every
/// record, CLRs included), then undo losers from their own before images,
/// skipping operations a surviving CLR already compensated.
fn recover(records: &[(Lsn, WalRecord)]) -> BTreeMap<u64, Row> {
    let mut state = BTreeMap::new();
    let mut finished = BTreeSet::new();
    let mut seen = BTreeSet::new();
    let mut compensated = BTreeSet::new();
    for (_, rec) in records {
        if let Some(txn) = rec.txn() {
            seen.insert(txn);
        }
        match rec {
            WalRecord::Insert { rid, row, .. } => {
                state.insert(*rid, row.clone());
            }
            WalRecord::Update { rid, after, .. } => {
                state.insert(*rid, after.clone());
            }
            WalRecord::Delete { rid, .. } => {
                state.remove(rid);
            }
            WalRecord::Clr {
                undo_of,
                rid,
                action,
                ..
            } => {
                compensated.insert(*undo_of);
                match action {
                    ClrAction::Remove => {
                        state.remove(rid);
                    }
                    ClrAction::Reinsert { row } | ClrAction::SetTo { row } => {
                        state.insert(*rid, row.clone());
                    }
                }
            }
            WalRecord::Commit { txn } | WalRecord::Abort { txn } => {
                finished.insert(*txn);
            }
            WalRecord::Begin { .. }
            | WalRecord::Checkpoint { .. }
            | WalRecord::Prepare { .. }
            | WalRecord::CoordCommit { .. }
            | WalRecord::CoordEnd { .. } => {}
        }
    }
    // Undo losers, newest operation first.
    for (lsn, rec) in records.iter().rev() {
        let Some(txn) = rec.txn() else { continue };
        if finished.contains(&txn) || compensated.contains(&lsn.0) {
            continue;
        }
        match rec {
            WalRecord::Insert { rid, .. } => {
                state.remove(rid);
            }
            WalRecord::Update { rid, before, .. } => {
                state.insert(*rid, before.clone());
            }
            WalRecord::Delete { rid, row, .. } => {
                state.insert(*rid, row.clone());
            }
            _ => {}
        }
    }
    let _ = seen;
    state
}

/// The oracle: replay only committed transactions' forward operations.
fn committed_oracle(records: &[(Lsn, WalRecord)]) -> BTreeMap<u64, Row> {
    let committed: BTreeSet<u64> = records
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect();
    let mut state = BTreeMap::new();
    for (_, rec) in records {
        if rec.txn().is_none_or(|t| !committed.contains(&t)) {
            continue;
        }
        match rec {
            WalRecord::Insert { rid, row, .. } => {
                state.insert(*rid, row.clone());
            }
            WalRecord::Update { rid, after, .. } => {
                state.insert(*rid, after.clone());
            }
            WalRecord::Delete { rid, .. } => {
                state.remove(rid);
            }
            _ => {}
        }
    }
    state
}

fn run_history(ops: &[WalOp]) -> Harness {
    let mut h = Harness::new();
    for op in ops {
        h.apply(op);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A crash image scans to an exact prefix of the appended records that
    /// covers at least everything durable; nothing is reordered, invented,
    /// or (below the durability horizon) lost.
    #[test]
    fn crash_scan_is_a_durable_covering_prefix(ops in wal_ops(), keep in any::<u64>()) {
        let h = run_history(&ops);
        let image = h.wal.crash_image(|sectors| keep % (sectors + 1));
        let scan = scan_log(&image);
        prop_assert_eq!(
            &scan.records[..],
            &h.appended[..scan.records.len()],
            "scanned records must be an exact prefix of what was appended"
        );
        let durable = h.wal.durable_lsn().0;
        let must_survive = h.appended.iter().filter(|(lsn, _)| lsn.0 <= durable).count();
        prop_assert!(
            scan.records.len() >= must_survive,
            "lost durable records: {} scanned < {} durable",
            scan.records.len(),
            must_survive
        );
    }

    /// Recovery from any crash prefix equals the committed-only oracle:
    /// every durably committed transaction's effects are present, and no
    /// aborted (or loser) transaction leaves any trace.
    #[test]
    fn recovery_keeps_committed_and_never_resurrects_aborted(
        ops in wal_ops(),
        keep in any::<u64>(),
    ) {
        let h = run_history(&ops);
        let image = h.wal.crash_image(|sectors| keep % (sectors + 1));
        let scan = scan_log(&image);

        // Durably committed transactions must be committed in the scan.
        let durable = h.wal.durable_lsn().0;
        let scanned_commits: BTreeSet<u64> = scan
            .records
            .iter()
            .filter_map(|(_, r)| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        for (lsn, rec) in &h.appended {
            if let WalRecord::Commit { txn } = rec {
                if lsn.0 <= durable {
                    prop_assert!(
                        scanned_commits.contains(txn),
                        "durably committed txn {} missing from the scan",
                        txn
                    );
                }
            }
        }

        let recovered = recover(&scan.records);
        let oracle = committed_oracle(&scan.records);
        prop_assert_eq!(recovered, oracle);
    }

    /// Flipping any byte of a fully durable log makes the scan stop early
    /// (torn) without ever yielding a record that was not appended: the
    /// checksum chain detects the corrupted sector.
    #[test]
    fn corrupted_sector_is_detected_by_the_checksum_chain(
        ops in wal_ops(),
        at in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut h = run_history(&ops);
        h.wal.force_durable();
        let clean = h.wal.image().to_vec();
        prop_assert!(!clean.is_empty(), "force_durable pads to at least one sector");
        let clean_scan = scan_log(&clean);
        prop_assert!(!clean_scan.torn, "a fully durable log must scan cleanly");
        prop_assert_eq!(clean_scan.records.len(), h.appended.len());

        let mut corrupted = clean.clone();
        let at = at % corrupted.len();
        corrupted[at] ^= mask;
        let scan = scan_log(&corrupted);
        prop_assert!(scan.torn, "corruption at byte {} must be detected", at);
        prop_assert_eq!(
            &scan.records[..],
            &h.appended[..scan.records.len()],
            "corruption must never produce a record that was not appended"
        );
    }
}
