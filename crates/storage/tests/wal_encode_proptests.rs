//! Property-based tests for WAL record encoding.
//!
//! The hot path serializes every record through one reusable buffer per
//! log ([`dbsens_storage::wal::encode_record_into`]); these properties pin
//! that reuse to byte identity with the fresh-allocation reference
//! encoding, across arbitrary record sequences — including sequences where
//! a large record leaves a grown, dirty buffer behind for a small one —
//! and check that framed images built through the reused path still scan
//! back to the exact records appended.

use dbsens_storage::value::{Row, Value};
use dbsens_storage::wal::{encode_record, encode_record_into, scan_log, ClrAction, Wal, WalRecord};
use proptest::prelude::*;

fn value_strat() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::Str),
        Just(Value::Null),
    ]
}

fn row_strat() -> impl Strategy<Value = Row> {
    prop::collection::vec(value_strat(), 0..5)
}

fn record_strat() -> impl Strategy<Value = WalRecord> {
    let clr_action = prop_oneof![
        Just(ClrAction::Remove),
        row_strat().prop_map(|row| ClrAction::Reinsert { row }),
        row_strat().prop_map(|row| ClrAction::SetTo { row }),
    ];
    prop_oneof![
        any::<u64>().prop_map(|txn| WalRecord::Begin { txn }),
        (any::<u64>(), any::<u32>(), any::<u64>(), row_strat()).prop_map(
            |(txn, table, rid, row)| WalRecord::Insert {
                txn,
                table,
                rid,
                row
            }
        ),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            row_strat(),
            row_strat()
        )
            .prop_map(|(txn, table, rid, before, after)| WalRecord::Update {
                txn,
                table,
                rid,
                before,
                after
            }),
        (any::<u64>(), any::<u32>(), any::<u64>(), row_strat()).prop_map(
            |(txn, table, rid, row)| WalRecord::Delete {
                txn,
                table,
                rid,
                row
            }
        ),
        any::<u64>().prop_map(|txn| WalRecord::Commit { txn }),
        any::<u64>().prop_map(|txn| WalRecord::Abort { txn }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            clr_action
        )
            .prop_map(|(txn, undo_of, table, rid, action)| WalRecord::Clr {
                txn,
                undo_of,
                table,
                rid,
                action
            }),
        (
            prop::collection::vec(any::<u64>(), 0..4),
            prop::collection::vec((any::<u64>(), any::<u64>()), 0..4),
        )
            .prop_map(|(active_txns, dirty_pages)| WalRecord::Checkpoint {
                active_txns,
                dirty_pages
            }),
    ]
}

proptest! {
    /// Encoding through a reused (possibly grown, previously dirty) buffer
    /// must produce exactly the bytes of a fresh per-record allocation.
    #[test]
    fn reused_buffer_matches_fresh_encoding(recs in prop::collection::vec(record_strat(), 1..24)) {
        let mut buf = Vec::new();
        for rec in &recs {
            let fresh = encode_record(rec);
            encode_record_into(rec, &mut buf);
            prop_assert_eq!(&fresh, &buf, "reused-buffer encoding diverged for {:?}", rec);
        }
    }

    /// Frames appended through the reused buffer scan back to the exact
    /// records, in order, with the checksum chain intact.
    #[test]
    fn framed_image_roundtrips(recs in prop::collection::vec(record_strat(), 1..24)) {
        let mut wal = Wal::new();
        wal.enable_capture();
        for rec in &recs {
            wal.append_record(rec, 64);
        }
        wal.force_durable();
        let scan = scan_log(wal.image());
        prop_assert_eq!(scan.records.len(), recs.len());
        for ((_, got), want) in scan.records.iter().zip(recs.iter()) {
            prop_assert_eq!(got, want);
        }
    }
}
