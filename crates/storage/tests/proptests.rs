//! Property-based tests for the storage substrates.

use dbsens_storage::btree::{BTree, RowId};
use dbsens_storage::bufferpool::{BufferPool, EXTENT_BYTES};
use dbsens_storage::columnstore::ColumnSegment;
use dbsens_storage::value::{cmp_values, Key, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(i64),
    Remove(i64),
}

fn tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..200).prop_map(TreeOp::Insert),
            (0i64..200).prop_map(TreeOp::Remove),
        ],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The B+ tree behaves exactly like a reference BTreeMap under any
    /// interleaving of inserts and removes, and its structural invariants
    /// hold throughout.
    #[test]
    fn btree_matches_reference_model(ops in tree_ops()) {
        let mut tree = BTree::new();
        let mut model: BTreeMap<i64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k) => {
                    let inserted_tree = tree.insert(Key::int(k), RowId(k as u64));
                    let inserted_model = model.insert(k, k as u64).is_none();
                    prop_assert_eq!(inserted_tree, inserted_model);
                }
                TreeOp::Remove(k) => {
                    let removed_tree = tree.remove(&Key::int(k), RowId(k as u64));
                    let removed_model = model.remove(&k).is_some();
                    prop_assert_eq!(removed_tree, removed_model);
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
        let tree_keys: Vec<i64> = tree.iter().map(|(k, _)| k.values()[0].as_int()).collect();
        let model_keys: Vec<i64> = model.keys().copied().collect();
        prop_assert_eq!(tree_keys, model_keys);
    }

    /// Range queries agree with the reference model.
    #[test]
    fn btree_range_matches_reference(
        keys in prop::collection::btree_set(0i64..500, 0..100),
        lo in 0i64..500,
        len in 0i64..100,
    ) {
        let mut tree = BTree::new();
        for &k in &keys {
            tree.insert(Key::int(k), RowId(k as u64));
        }
        let hi = lo + len;
        let klo = Key::int(lo);
        let khi = Key::int(hi);
        let got: Vec<i64> = tree.range(&klo, &khi).map(|(k, _)| k.values()[0].as_int()).collect();
        let expected: Vec<i64> = keys.iter().copied().filter(|k| (lo..hi).contains(k)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Column segments decode to exactly what was encoded, whatever the
    /// value mix.
    #[test]
    fn columnsegment_roundtrip(values in prop::collection::vec(
        prop_oneof![
            (-1000i64..1000).prop_map(Value::Int),
            (0u8..20).prop_map(|v| Value::Str(format!("s{v}"))),
            (-100i64..100).prop_map(|v| Value::Float(v as f64 * 0.5)),
        ],
        1..300,
    )) {
        let seg = ColumnSegment::compress(&values);
        prop_assert_eq!(seg.decode(), values.clone());
        prop_assert_eq!(seg.rows(), values.len());
        // min/max bound every value.
        for v in &values {
            prop_assert_ne!(cmp_values(v, seg.min()), std::cmp::Ordering::Less);
            prop_assert_ne!(cmp_values(v, seg.max()), std::cmp::Ordering::Greater);
        }
    }

    /// Buffer pool accounting: hits + misses always equals the pages
    /// requested, and residency never exceeds capacity.
    #[test]
    fn bufferpool_accounting_invariants(
        capacity_extents in 1u64..16,
        accesses in prop::collection::vec((0u64..2000, 1u64..200, any::<bool>()), 1..60),
    ) {
        let mut pool = BufferPool::new(capacity_extents * EXTENT_BYTES);
        for (start, pages, write) in accesses {
            let out = pool.access(start, pages, write);
            prop_assert_eq!(out.hit_pages + out.miss_pages, pages);
            prop_assert!(pool.resident_bytes() <= pool.capacity_bytes());
        }
        let s = pool.stats();
        prop_assert_eq!(
            s.hit_pages + s.miss_pages >= s.evicted_dirty_pages,
            true,
            "cannot write back more pages than were ever touched"
        );
    }

    /// Key comparison is a total order: antisymmetric and transitive over
    /// arbitrary composite keys.
    #[test]
    fn key_ordering_is_total(
        a in prop::collection::vec(-50i64..50, 1..4),
        b in prop::collection::vec(-50i64..50, 1..4),
        c in prop::collection::vec(-50i64..50, 1..4),
    ) {
        let ka = Key::from_values(a.into_iter().map(Value::Int).collect());
        let kb = Key::from_values(b.into_iter().map(Value::Int).collect());
        let kc = Key::from_values(c.into_iter().map(Value::Int).collect());
        // Antisymmetry.
        prop_assert_eq!(ka.cmp(&kb), kb.cmp(&ka).reverse());
        // Transitivity.
        if ka <= kb && kb <= kc {
            prop_assert!(ka <= kc);
        }
        // Reflexivity.
        prop_assert_eq!(ka.cmp(&ka), std::cmp::Ordering::Equal);
    }
}
