//! Values, rows, and composite keys.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single column value.
///
/// The engine is intentionally small: four scalar types cover every
/// benchmark schema in the workload suite (dates are day numbers, money is
/// fixed-point in cents stored as `Int`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer (also ids, day-number dates, fixed-point money).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Variable-length string.
    Str(String),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Returns the integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int`; engine-internal callers only use
    /// it on columns whose schema type is integer.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Returns the float payload, widening integers.
    ///
    /// # Panics
    ///
    /// Panics on strings and NULLs.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected numeric, got {other:?}"),
        }
    }

    /// Returns the string payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Str`.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, got {other:?}"),
        }
    }

    /// Returns `true` for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-page byte size used by the physical sizing model.
    pub fn byte_size(&self) -> u64 {
        match self {
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 2 + s.len() as u64,
            Value::Null => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Total order over values: NULL sorts first, numerics compare numerically
/// across `Int`/`Float`, and cross-type comparisons fall back to a stable
/// type rank (needed so composite keys are totally ordered).
pub fn cmp_values(a: &Value, b: &Value) -> Ordering {
    use Value::*;
    match (a, b) {
        (Null, Null) => Ordering::Equal,
        (Null, _) => Ordering::Less,
        (_, Null) => Ordering::Greater,
        (Int(x), Int(y)) => x.cmp(y),
        (Float(x), Float(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Int(x), Float(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Float(x), Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        (Str(x), Str(y)) => x.cmp(y),
        (Str(_), _) => Ordering::Greater,
        (_, Str(_)) => Ordering::Less,
    }
}

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// A composite key over one or more values, ordered with [`cmp_values`].
///
/// # Examples
///
/// ```
/// use dbsens_storage::value::{Key, Value};
///
/// let a = Key::from_values(vec![Value::Int(1), Value::Str("x".into())]);
/// let b = Key::from_values(vec![Value::Int(2)]);
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Key(Vec<Value>);

impl Key {
    /// Builds a key from its component values.
    pub fn from_values(values: Vec<Value>) -> Self {
        Key(values)
    }

    /// Single-integer key shorthand.
    pub fn int(v: i64) -> Self {
        Key(vec![Value::Int(v)])
    }

    /// Two-integer key shorthand.
    pub fn int2(a: i64, b: i64) -> Self {
        Key(vec![Value::Int(a), Value::Int(b)])
    }

    /// The component values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Consumes the key, returning its value buffer (for storage reuse).
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// Approximate key byte size for physical sizing.
    pub fn byte_size(&self) -> u64 {
        self.0.iter().map(Value::byte_size).sum()
    }
}

impl Eq for Key {}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match cmp_values(a, b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert_eq!(Value::Int(5).as_f64(), 5.0);
        assert_eq!(Value::Float(2.5).as_f64(), 2.5);
        assert_eq!(Value::Str("hi".into()).as_str(), "hi");
        assert!(Value::Null.is_null());
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_str() {
        let _ = Value::Str("x".into()).as_int();
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(
            cmp_values(&Value::Null, &Value::Int(i64::MIN)),
            Ordering::Less
        );
        assert_eq!(cmp_values(&Value::Int(0), &Value::Null), Ordering::Greater);
        assert_eq!(cmp_values(&Value::Null, &Value::Null), Ordering::Equal);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            cmp_values(&Value::Int(2), &Value::Float(2.5)),
            Ordering::Less
        );
        assert_eq!(
            cmp_values(&Value::Float(3.0), &Value::Int(3)),
            Ordering::Equal
        );
    }

    #[test]
    fn composite_key_ordering_is_lexicographic() {
        let k1 = Key::int2(1, 9);
        let k2 = Key::int2(2, 0);
        assert!(k1 < k2);
        // Prefix keys sort before their extensions.
        let short = Key::int(1);
        let long = Key::int2(1, 0);
        assert!(short < long);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(1).byte_size(), 8);
        assert_eq!(Value::Str("abc".into()).byte_size(), 5);
        assert_eq!(Key::int2(1, 2).byte_size(), 16);
    }
}
