//! Table schemas.

use crate::value::{Row, Value};
use serde::{Deserialize, Serialize};

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    /// 64-bit integer (ids, dates as day numbers, money in cents).
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length string; the number is the average length used by the
    /// physical sizing model.
    Str(u32),
}

impl ColType {
    /// Average stored bytes per value of this type.
    pub fn avg_bytes(self) -> u64 {
        match self {
            ColType::Int | ColType::Float => 8,
            ColType::Str(n) => 2 + n as u64,
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColType,
}

/// An ordered list of columns.
///
/// # Examples
///
/// ```
/// use dbsens_storage::schema::{ColType, Schema};
///
/// let schema = Schema::new(&[("id", ColType::Int), ("name", ColType::Str(20))]);
/// assert_eq!(schema.col("name"), 1);
/// assert_eq!(schema.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names.
    pub fn new(cols: &[(&str, ColType)]) -> Self {
        let mut seen = std::collections::HashSet::new();
        for (name, _) in cols {
            assert!(seen.insert(*name), "duplicate column {name}");
        }
        Schema {
            columns: cols
                .iter()
                .map(|(name, ty)| ColumnDef {
                    name: (*name).to_owned(),
                    ty: *ty,
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` for a zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column index by name.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist; schemas are static so a miss is
    /// a programming error.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column named {name}"))
    }

    /// The column definitions.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Average stored row bytes (values plus slotted-page overhead), for
    /// the physical sizing model.
    pub fn avg_row_bytes(&self) -> u64 {
        let values: u64 = self.columns.iter().map(|c| c.ty.avg_bytes()).sum();
        // Row header + slot array entry on an 8 KB slotted page.
        values + 11
    }

    /// Validates a row against the schema (arity and basic type match).
    pub fn check_row(&self, row: &Row) -> bool {
        row.len() == self.columns.len()
            && row.iter().zip(&self.columns).all(|(v, c)| {
                matches!(
                    (v, c.ty),
                    (Value::Int(_), ColType::Int)
                        | (Value::Float(_), ColType::Float)
                        | (Value::Str(_), ColType::Str(_))
                        | (Value::Null, _)
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[
            ("id", ColType::Int),
            ("price", ColType::Float),
            ("name", ColType::Str(10)),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.col("id"), 0);
        assert_eq!(s.col("name"), 2);
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn missing_column_panics() {
        schema().col("nope");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_rejected() {
        let _ = Schema::new(&[("a", ColType::Int), ("a", ColType::Int)]);
    }

    #[test]
    fn row_validation() {
        let s = schema();
        assert!(s.check_row(&vec![
            Value::Int(1),
            Value::Float(2.0),
            Value::Str("x".into())
        ]));
        assert!(s.check_row(&vec![Value::Int(1), Value::Null, Value::Null]));
        assert!(!s.check_row(&vec![Value::Int(1), Value::Float(2.0)]));
        assert!(!s.check_row(&vec![
            Value::Str("x".into()),
            Value::Float(2.0),
            Value::Str("y".into())
        ]));
    }

    #[test]
    fn sizing_includes_overhead() {
        let s = schema();
        assert_eq!(s.avg_row_bytes(), 8 + 8 + 12 + 11);
    }
}
