//! Write-ahead log with group commit.
//!
//! Transactions append log records to an in-memory log buffer; a commit
//! hardens everything appended since the last flush in one sequential device
//! write (group commit). The WAL itself only does the bookkeeping — the
//! committing task issues the actual `DeviceWrite` demand with the byte
//! count this module reports, which is what makes transactional workloads
//! sensitive to write-bandwidth limits (paper §6).

/// Log sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// The write-ahead log.
///
/// # Examples
///
/// ```
/// use dbsens_storage::wal::Wal;
///
/// let mut wal = Wal::new();
/// wal.append(200);
/// wal.append(300);
/// assert_eq!(wal.flush_for_commit(), 512); // rounded to sectors
/// assert_eq!(wal.flush_for_commit(), 512); // empty flush still writes one sector
/// ```
#[derive(Debug, Clone, Default)]
pub struct Wal {
    next_lsn: u64,
    pending_bytes: u64,
    flushed_bytes: u64,
    flushes: u64,
    appends: u64,
}

/// Device sector size log writes are rounded up to.
const SECTOR: u64 = 512;

impl Wal {
    /// Creates an empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Appends a record of `bytes`; returns its LSN. The record is not
    /// durable until a subsequent [`Wal::flush_for_commit`].
    pub fn append(&mut self, bytes: u64) -> Lsn {
        self.next_lsn += 1;
        self.pending_bytes += bytes;
        self.appends += 1;
        Lsn(self.next_lsn)
    }

    /// Hardens all pending records; returns the bytes the committing task
    /// must write to the device (sector-aligned, minimum one sector — an
    /// empty transaction still writes its commit record).
    pub fn flush_for_commit(&mut self) -> u64 {
        let bytes = self.pending_bytes.div_ceil(SECTOR).max(1) * SECTOR;
        self.pending_bytes = 0;
        self.flushed_bytes += bytes;
        self.flushes += 1;
        bytes
    }

    /// Bytes appended but not yet flushed.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Total bytes flushed to the device.
    pub fn flushed_bytes(&self) -> u64 {
        self.flushed_bytes
    }

    /// Number of flushes (group commits).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Number of appended records.
    pub fn appends(&self) -> u64 {
        self.appends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_increase() {
        let mut w = Wal::new();
        let a = w.append(10);
        let b = w.append(10);
        assert!(b > a);
    }

    #[test]
    fn group_commit_batches_pending() {
        let mut w = Wal::new();
        w.append(100);
        w.append(100);
        w.append(100);
        let flushed = w.flush_for_commit();
        assert_eq!(flushed, 512);
        assert_eq!(w.pending_bytes(), 0);
        // A larger batch spans sectors.
        for _ in 0..10 {
            w.append(400);
        }
        assert_eq!(w.flush_for_commit(), 4096);
        assert_eq!(w.flushes(), 2);
    }

    #[test]
    fn interleaved_appends_and_flushes_account_exactly() {
        // Appends land between group commits; every flush hardens exactly
        // what was pending at that instant, and pending never leaks across.
        let mut w = Wal::new();
        w.append(300);
        assert_eq!(w.pending_bytes(), 300);
        w.append(300);
        assert_eq!(w.pending_bytes(), 600);
        assert_eq!(w.flush_for_commit(), 1024); // 600 -> two sectors
        assert_eq!(w.pending_bytes(), 0);
        // New appends after the flush start a fresh batch.
        w.append(10);
        assert_eq!(w.pending_bytes(), 10);
        let lsn_before = w.append(512);
        assert_eq!(w.pending_bytes(), 522);
        assert_eq!(w.flush_for_commit(), 1024); // 522 -> two sectors
        // LSNs keep increasing across flush boundaries.
        let lsn_after = w.append(1);
        assert!(lsn_after > lsn_before);
        assert_eq!(w.flush_for_commit(), 512);
        assert_eq!(w.flushed_bytes(), 1024 + 1024 + 512);
        assert_eq!(w.flushes(), 3);
        assert_eq!(w.appends(), 5);
    }

    #[test]
    fn empty_commit_still_writes_a_sector() {
        let mut w = Wal::new();
        assert_eq!(w.flush_for_commit(), SECTOR);
    }

    #[test]
    fn totals_accumulate() {
        let mut w = Wal::new();
        w.append(1000);
        w.flush_for_commit();
        w.append(1000);
        w.flush_for_commit();
        assert_eq!(w.flushed_bytes(), 2 * 1024);
        assert_eq!(w.appends(), 2);
    }
}
