//! Write-ahead log with group commit and an optional logical record log.
//!
//! Transactions append log records to an in-memory log buffer; a commit
//! hardens everything appended since the last flush in one sequential device
//! write (group commit). The WAL itself only does the bookkeeping — the
//! committing task issues the actual `DeviceWrite` demand with the byte
//! count this module reports, which is what makes transactional workloads
//! sensitive to write-bandwidth limits (paper §6).
//!
//! ## Logical capture (crash-consistency mode)
//!
//! When [`Wal::enable_capture`] is set, appends additionally serialize typed
//! [`WalRecord`]s into an in-memory *log image*: a byte stream of
//! LSN-stamped, checksum-chained, sector-framed records. The image models
//! exactly what would sit on the log device:
//!
//! - [`Wal::flush_for_commit`] closes the pending region of the image into a
//!   sector-padded *flush range* and marks it submitted (in flight).
//! - [`Wal::flush_durable`] (called when the device write completes) marks
//!   the oldest in-flight range durable; the log device is FIFO, so ranges
//!   become durable in submission order.
//! - [`Wal::crash_image`] renders what survives a crash: all durable bytes,
//!   plus a caller-chosen prefix of the sectors of the oldest in-flight
//!   flush (a torn tail write); later in-flight ranges and never-flushed
//!   bytes are lost.
//!
//! [`scan_log`] walks an image, validating the checksum chain, and stops at
//! the first torn or corrupt frame — recovery sees exactly the records that
//! made it to stable storage.
//!
//! Capture is off by default and costs nothing when disabled, so healthy
//! (non-crash) experiments are bit-for-bit unaffected.

use crate::value::{Row, Value};
use std::collections::VecDeque;

/// Log sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// Device sector size log writes are rounded up to.
pub const SECTOR: u64 = 512;

/// Frame magic marking the start of a serialized record.
const FRAME_MAGIC: u16 = 0xD857;
/// Fixed frame header size: magic (2) + payload len (4) + lsn (8) + chain (8).
const FRAME_HEADER: usize = 2 + 4 + 8 + 8;
/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A typed logical log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Transaction start.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// Row insert (redo: insert `row` at `rid`).
    Insert {
        /// Transaction id.
        txn: u64,
        /// Table id.
        table: u32,
        /// Row id the insert landed on.
        rid: u64,
        /// The inserted row.
        row: Row,
    },
    /// Row update with full before and after images.
    Update {
        /// Transaction id.
        txn: u64,
        /// Table id.
        table: u32,
        /// Row id.
        rid: u64,
        /// Row image before the update (undo).
        before: Row,
        /// Row image after the update (redo).
        after: Row,
    },
    /// Row delete (undo: reinsert `row` at `rid`).
    Delete {
        /// Transaction id.
        txn: u64,
        /// Table id.
        table: u32,
        /// Row id.
        rid: u64,
        /// The deleted row.
        row: Row,
    },
    /// Transaction commit; durable once its flush completes.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// Transaction fully rolled back (written after all its CLRs).
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// Compensation log record: the redo-form of one undone operation.
    Clr {
        /// Transaction being rolled back.
        txn: u64,
        /// LSN of the operation this CLR compensates.
        undo_of: u64,
        /// Table id.
        table: u32,
        /// Row id.
        rid: u64,
        /// The state-restoring action (re-applied on recovery redo).
        action: ClrAction,
    },
    /// Fuzzy checkpoint: the active-transaction table and dirty page table
    /// (page → recLSN) at checkpoint time.
    Checkpoint {
        /// Transactions active at the checkpoint.
        active_txns: Vec<u64>,
        /// Dirty pages and the LSN that first dirtied each.
        dirty_pages: Vec<(u64, u64)>,
    },
    /// Participant vote in two-phase commit: force-logged before the YES
    /// vote leaves the node. A transaction whose last disposition record is
    /// a `Prepare` is *in doubt* after a crash — recovery keeps its effects
    /// and asks `coordinator` for the outcome (presumed abort: no durable
    /// decision there means abort).
    Prepare {
        /// Transaction id (globally unique across the cluster).
        txn: u64,
        /// Node id of the coordinator to consult for in-doubt resolution.
        coordinator: u32,
    },
    /// Coordinator commit decision: force-logged before any COMMIT message
    /// is sent. Its presence makes the global commit durable; its absence
    /// (presumed abort) means the transaction aborted.
    CoordCommit {
        /// Transaction id.
        txn: u64,
        /// Participant node ids that voted and must learn the outcome.
        participants: Vec<u32>,
    },
    /// Coordinator forget record: all participants acknowledged the
    /// decision, so the coordinator may drop the transaction from its
    /// in-memory outcome table. Lazily written; never forced.
    CoordEnd {
        /// Transaction id.
        txn: u64,
    },
}

/// The redo-side action of a compensation record.
#[derive(Debug, Clone, PartialEq)]
pub enum ClrAction {
    /// Undo of an insert: remove the row.
    Remove,
    /// Undo of a delete: reinsert the row at its original id.
    Reinsert {
        /// The row to restore.
        row: Row,
    },
    /// Undo of an update: restore the before image.
    SetTo {
        /// The before image to restore.
        row: Row,
    },
}

impl WalRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<u64> {
        match self {
            WalRecord::Begin { txn }
            | WalRecord::Insert { txn, .. }
            | WalRecord::Update { txn, .. }
            | WalRecord::Delete { txn, .. }
            | WalRecord::Commit { txn }
            | WalRecord::Abort { txn }
            | WalRecord::Clr { txn, .. }
            | WalRecord::Prepare { txn, .. }
            | WalRecord::CoordCommit { txn, .. }
            | WalRecord::CoordEnd { txn } => Some(*txn),
            WalRecord::Checkpoint { .. } => None,
        }
    }
}

/// The write-ahead log.
///
/// # Examples
///
/// ```
/// use dbsens_storage::wal::Wal;
///
/// let mut wal = Wal::new();
/// wal.append(200);
/// wal.append(300);
/// assert_eq!(wal.flush_for_commit(), 512); // rounded to sectors
/// assert_eq!(wal.flush_for_commit(), 512); // empty flush still writes one sector
/// ```
#[derive(Debug, Clone, Default)]
pub struct Wal {
    next_lsn: u64,
    pending_bytes: u64,
    flushed_bytes: u64,
    flushes: u64,
    appends: u64,
    // Logical capture state; all empty/zero unless capture is enabled.
    capture: bool,
    image: Vec<u8>,
    chain: u64,
    /// Image bytes covered by a submitted (or completed) flush.
    submitted: usize,
    /// Submitted flush ranges not yet durable, oldest first, with the
    /// highest LSN each hardens.
    inflight: VecDeque<(usize, usize, u64)>,
    /// Durable image prefix length.
    durable: usize,
    /// Highest LSN known durable.
    durable_lsn: u64,
    /// Highest LSN submitted for flush (covers in-flight ranges).
    submitted_lsn: u64,
    /// Reusable record-encoding buffer for [`Wal::append_record`]; always
    /// left empty-capacity-retained between appends.
    encode_scratch: Vec<u8>,
}

impl Wal {
    /// Creates an empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Rebuilds a log from a durable image (recovery): the image's records
    /// become the history, capture stays on, and everything present is
    /// already durable.
    pub fn from_image(image: Vec<u8>) -> Self {
        let scan = scan_log(&image);
        let mut image = image;
        image.truncate(scan.valid_bytes);
        let next_lsn = scan.records.last().map_or(0, |(lsn, _)| lsn.0);
        let len = image.len();
        Wal {
            next_lsn,
            capture: true,
            chain: scan.end_chain,
            submitted: len,
            durable: len,
            durable_lsn: next_lsn,
            submitted_lsn: next_lsn,
            image,
            ..Wal::default()
        }
    }

    /// Turns on logical record capture (crash-consistency mode).
    pub fn enable_capture(&mut self) {
        self.capture = true;
    }

    /// Whether logical record capture is on.
    pub fn capture_enabled(&self) -> bool {
        self.capture
    }

    /// Appends a record of `bytes`; returns its LSN. The record is not
    /// durable until a subsequent [`Wal::flush_for_commit`].
    pub fn append(&mut self, bytes: u64) -> Lsn {
        self.next_lsn += 1;
        self.pending_bytes += bytes;
        self.appends += 1;
        Lsn(self.next_lsn)
    }

    /// Appends a typed record, with `modeled_bytes` of modeled log traffic
    /// (same accounting as [`Wal::append`]). Requires capture.
    ///
    /// # Panics
    ///
    /// Panics if capture is not enabled.
    pub fn append_record(&mut self, rec: &WalRecord, modeled_bytes: u64) -> Lsn {
        assert!(self.capture, "append_record requires capture mode");
        let lsn = self.append(modeled_bytes);
        let mut payload = std::mem::take(&mut self.encode_scratch);
        encode_record_into(rec, &mut payload);
        self.chain = chain_checksum(self.chain, lsn.0, &payload);
        self.image.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        self.image
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.image.extend_from_slice(&lsn.0.to_le_bytes());
        self.image.extend_from_slice(&self.chain.to_le_bytes());
        self.image.extend_from_slice(&payload);
        self.encode_scratch = payload;
        lsn
    }

    /// Hardens all pending records; returns the bytes the committing task
    /// must write to the device (sector-aligned, minimum one sector — an
    /// empty transaction still writes its commit record).
    pub fn flush_for_commit(&mut self) -> u64 {
        let bytes = self.pending_bytes.div_ceil(SECTOR).max(1) * SECTOR;
        self.pending_bytes = 0;
        self.flushed_bytes += bytes;
        self.flushes += 1;
        if self.capture {
            // Close the pending image region into a sector-padded flush
            // range and mark it in flight.
            let pad = (SECTOR as usize - self.image.len() % SECTOR as usize) % SECTOR as usize;
            self.image.extend(std::iter::repeat_n(0u8, pad));
            let start = self.submitted;
            let end = self.image.len();
            self.submitted = end;
            self.submitted_lsn = self.next_lsn;
            self.inflight.push_back((start, end, self.next_lsn));
        }
        bytes
    }

    /// Marks the oldest in-flight flush durable (its device write
    /// completed). No-op without capture or in-flight flushes.
    pub fn flush_durable(&mut self) {
        if let Some((_, end, lsn)) = self.inflight.pop_front() {
            self.durable = self.durable.max(end);
            self.durable_lsn = self.durable_lsn.max(lsn);
        }
    }

    /// Marks everything appended so far durable (recovery writes its CLRs
    /// synchronously — there is no buffering to tear).
    pub fn force_durable(&mut self) {
        let pad = (SECTOR as usize - self.image.len() % SECTOR as usize) % SECTOR as usize;
        self.image.extend(std::iter::repeat_n(0u8, pad));
        self.inflight.clear();
        self.submitted = self.image.len();
        self.durable = self.image.len();
        self.durable_lsn = self.next_lsn;
        self.submitted_lsn = self.next_lsn;
    }

    /// Highest LSN whose flush has completed (the WAL rule horizon: a page
    /// whose recLSN is above this must not be written back yet).
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.durable_lsn)
    }

    /// The next LSN that will be assigned.
    pub fn next_lsn(&self) -> Lsn {
        Lsn(self.next_lsn + 1)
    }

    /// Whether a submitted flush is still in flight.
    pub fn has_inflight_flush(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// The full serialized log image (durable + in flight + unflushed).
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Renders the log image that survives a crash at this instant: every
    /// durable byte, plus a torn tail of the oldest in-flight flush —
    /// `keep_sectors(n)` chooses how many of its `n` sectors persisted.
    /// Later in-flight flushes and unflushed bytes are lost.
    pub fn crash_image(&self, keep_sectors: impl FnOnce(u64) -> u64) -> Vec<u8> {
        let mut end = self.durable;
        if let Some(&(start, range_end, _)) = self.inflight.front() {
            let start = start.max(self.durable);
            let sectors = ((range_end - start) as u64) / SECTOR;
            let kept = keep_sectors(sectors).min(sectors);
            end = start + (kept * SECTOR) as usize;
        }
        self.image[..end.min(self.image.len())].to_vec()
    }

    /// Bytes appended but not yet flushed.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Total bytes flushed to the device.
    pub fn flushed_bytes(&self) -> u64 {
        self.flushed_bytes
    }

    /// Number of flushes (group commits).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Number of appended records.
    pub fn appends(&self) -> u64 {
        self.appends
    }
}

/// Result of scanning a log image.
#[derive(Debug, Clone, Default)]
pub struct LogScan {
    /// Records recovered, in LSN order.
    pub records: Vec<(Lsn, WalRecord)>,
    /// Bytes of the image covered by valid frames (and padding).
    pub valid_bytes: usize,
    /// `true` if the scan stopped before the end of the image (torn tail or
    /// corruption).
    pub torn: bool,
    /// Checksum chain value after the last valid record.
    pub end_chain: u64,
}

/// Scans a log image, validating frame structure and the checksum chain.
/// Stops at the first torn or corrupt frame; everything before it is
/// returned. Zero-filled sector padding between flush ranges is skipped.
pub fn scan_log(image: &[u8]) -> LogScan {
    let mut out = LogScan::default();
    let mut pos = 0usize;
    let mut chain = 0u64;
    while pos < image.len() {
        // Sector padding: zero bytes up to the next sector boundary.
        if image[pos] == 0 {
            let boundary = ((pos / SECTOR as usize) + 1) * SECTOR as usize;
            let end = boundary.min(image.len());
            if image[pos..end].iter().all(|&b| b == 0) {
                pos = end;
                out.valid_bytes = pos;
                continue;
            }
            out.torn = true;
            break;
        }
        if pos + FRAME_HEADER > image.len() {
            out.torn = true;
            break;
        }
        let magic = u16::from_le_bytes([image[pos], image[pos + 1]]);
        if magic != FRAME_MAGIC {
            out.torn = true;
            break;
        }
        let len = u32::from_le_bytes(image[pos + 2..pos + 6].try_into().unwrap()) as usize;
        let lsn = u64::from_le_bytes(image[pos + 6..pos + 14].try_into().unwrap());
        let stored_chain = u64::from_le_bytes(image[pos + 14..pos + 22].try_into().unwrap());
        let payload_start = pos + FRAME_HEADER;
        let Some(payload_end) = payload_start.checked_add(len) else {
            out.torn = true;
            break;
        };
        if payload_end > image.len() {
            out.torn = true;
            break;
        }
        let payload = &image[payload_start..payload_end];
        let expect = chain_checksum(chain, lsn, payload);
        if expect != stored_chain {
            out.torn = true;
            break;
        }
        let Some(rec) = decode_record(payload) else {
            out.torn = true;
            break;
        };
        chain = expect;
        out.records.push((Lsn(lsn), rec));
        pos = payload_end;
        out.valid_bytes = pos;
        out.end_chain = chain;
    }
    out
}

/// FNV-1a over the previous chain value, the LSN, and the payload: each
/// record's checksum commits to the entire log prefix, so corruption
/// anywhere invalidates everything after it.
fn chain_checksum(prev: u64, lsn: u64, payload: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in prev.to_le_bytes().into_iter().chain(lsn.to_le_bytes()) {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for &b in payload {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

// --- record payload encoding ---------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_row(out: &mut Vec<u8>, row: &Row) {
    put_u32(out, row.len() as u32);
    for v in row {
        match v {
            Value::Int(x) => {
                out.push(0);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Float(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(2);
                put_u32(out, s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Null => out.push(3),
        }
    }
}

/// Encodes `rec` into a fresh buffer: the reference encoding. Equivalent
/// to [`encode_record_into`] on an empty buffer (a property test holds the
/// two to byte identity).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    encode_record_into(rec, &mut out);
    out
}

/// Encodes `rec` into `out`, replacing its contents. [`Wal::append_record`]
/// funnels every record through one such buffer per log, so steady-state
/// encoding costs no allocations once the buffer has grown to the largest
/// record seen.
pub fn encode_record_into(rec: &WalRecord, out: &mut Vec<u8>) {
    out.clear();
    match rec {
        WalRecord::Begin { txn } => {
            out.push(0);
            put_u64(out, *txn);
        }
        WalRecord::Insert {
            txn,
            table,
            rid,
            row,
        } => {
            out.push(1);
            put_u64(out, *txn);
            put_u32(out, *table);
            put_u64(out, *rid);
            put_row(out, row);
        }
        WalRecord::Update {
            txn,
            table,
            rid,
            before,
            after,
        } => {
            out.push(2);
            put_u64(out, *txn);
            put_u32(out, *table);
            put_u64(out, *rid);
            put_row(out, before);
            put_row(out, after);
        }
        WalRecord::Delete {
            txn,
            table,
            rid,
            row,
        } => {
            out.push(3);
            put_u64(out, *txn);
            put_u32(out, *table);
            put_u64(out, *rid);
            put_row(out, row);
        }
        WalRecord::Commit { txn } => {
            out.push(4);
            put_u64(out, *txn);
        }
        WalRecord::Abort { txn } => {
            out.push(5);
            put_u64(out, *txn);
        }
        WalRecord::Clr {
            txn,
            undo_of,
            table,
            rid,
            action,
        } => {
            out.push(6);
            put_u64(out, *txn);
            put_u64(out, *undo_of);
            put_u32(out, *table);
            put_u64(out, *rid);
            match action {
                ClrAction::Remove => out.push(0),
                ClrAction::Reinsert { row } => {
                    out.push(1);
                    put_row(out, row);
                }
                ClrAction::SetTo { row } => {
                    out.push(2);
                    put_row(out, row);
                }
            }
        }
        WalRecord::Checkpoint {
            active_txns,
            dirty_pages,
        } => {
            out.push(7);
            put_u32(out, active_txns.len() as u32);
            for t in active_txns {
                put_u64(out, *t);
            }
            put_u32(out, dirty_pages.len() as u32);
            for (p, l) in dirty_pages {
                put_u64(out, *p);
                put_u64(out, *l);
            }
        }
        WalRecord::Prepare { txn, coordinator } => {
            out.push(8);
            put_u64(out, *txn);
            put_u32(out, *coordinator);
        }
        WalRecord::CoordCommit { txn, participants } => {
            out.push(9);
            put_u64(out, *txn);
            put_u32(out, participants.len() as u32);
            for p in participants {
                put_u32(out, *p);
            }
        }
        WalRecord::CoordEnd { txn } => {
            out.push(10);
            put_u64(out, *txn);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn row(&mut self) -> Option<Row> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return None;
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(match self.u8()? {
                0 => Value::Int(self.u64()? as i64),
                1 => Value::Float(f64::from_bits(self.u64()?)),
                2 => {
                    let len = self.u32()? as usize;
                    let b = self.buf.get(self.pos..self.pos.checked_add(len)?)?;
                    self.pos += len;
                    Value::Str(String::from_utf8(b.to_vec()).ok()?)
                }
                3 => Value::Null,
                _ => return None,
            });
        }
        Some(row)
    }
}

fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let rec = match c.u8()? {
        0 => WalRecord::Begin { txn: c.u64()? },
        1 => WalRecord::Insert {
            txn: c.u64()?,
            table: c.u32()?,
            rid: c.u64()?,
            row: c.row()?,
        },
        2 => WalRecord::Update {
            txn: c.u64()?,
            table: c.u32()?,
            rid: c.u64()?,
            before: c.row()?,
            after: c.row()?,
        },
        3 => WalRecord::Delete {
            txn: c.u64()?,
            table: c.u32()?,
            rid: c.u64()?,
            row: c.row()?,
        },
        4 => WalRecord::Commit { txn: c.u64()? },
        5 => WalRecord::Abort { txn: c.u64()? },
        6 => WalRecord::Clr {
            txn: c.u64()?,
            undo_of: c.u64()?,
            table: c.u32()?,
            rid: c.u64()?,
            action: match c.u8()? {
                0 => ClrAction::Remove,
                1 => ClrAction::Reinsert { row: c.row()? },
                2 => ClrAction::SetTo { row: c.row()? },
                _ => return None,
            },
        },
        7 => {
            let n = c.u32()? as usize;
            if n > payload.len() {
                return None;
            }
            let mut active_txns = Vec::with_capacity(n);
            for _ in 0..n {
                active_txns.push(c.u64()?);
            }
            let m = c.u32()? as usize;
            if m > payload.len() {
                return None;
            }
            let mut dirty_pages = Vec::with_capacity(m);
            for _ in 0..m {
                dirty_pages.push((c.u64()?, c.u64()?));
            }
            WalRecord::Checkpoint {
                active_txns,
                dirty_pages,
            }
        }
        8 => WalRecord::Prepare {
            txn: c.u64()?,
            coordinator: c.u32()?,
        },
        9 => {
            let txn = c.u64()?;
            let n = c.u32()? as usize;
            if n > payload.len() {
                return None;
            }
            let mut participants = Vec::with_capacity(n);
            for _ in 0..n {
                participants.push(c.u32()?);
            }
            WalRecord::CoordCommit { txn, participants }
        }
        10 => WalRecord::CoordEnd { txn: c.u64()? },
        _ => return None,
    };
    if c.pos != payload.len() {
        return None;
    }
    Some(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_increase() {
        let mut w = Wal::new();
        let a = w.append(10);
        let b = w.append(10);
        assert!(b > a);
    }

    #[test]
    fn group_commit_batches_pending() {
        let mut w = Wal::new();
        w.append(100);
        w.append(100);
        w.append(100);
        let flushed = w.flush_for_commit();
        assert_eq!(flushed, 512);
        assert_eq!(w.pending_bytes(), 0);
        // A larger batch spans sectors.
        for _ in 0..10 {
            w.append(400);
        }
        assert_eq!(w.flush_for_commit(), 4096);
        assert_eq!(w.flushes(), 2);
    }

    #[test]
    fn interleaved_appends_and_flushes_account_exactly() {
        // Appends land between group commits; every flush hardens exactly
        // what was pending at that instant, and pending never leaks across.
        let mut w = Wal::new();
        w.append(300);
        assert_eq!(w.pending_bytes(), 300);
        w.append(300);
        assert_eq!(w.pending_bytes(), 600);
        assert_eq!(w.flush_for_commit(), 1024); // 600 -> two sectors
        assert_eq!(w.pending_bytes(), 0);
        // New appends after the flush start a fresh batch.
        w.append(10);
        assert_eq!(w.pending_bytes(), 10);
        let lsn_before = w.append(512);
        assert_eq!(w.pending_bytes(), 522);
        assert_eq!(w.flush_for_commit(), 1024); // 522 -> two sectors
                                                // LSNs keep increasing across flush boundaries.
        let lsn_after = w.append(1);
        assert!(lsn_after > lsn_before);
        assert_eq!(w.flush_for_commit(), 512);
        assert_eq!(w.flushed_bytes(), 1024 + 1024 + 512);
        assert_eq!(w.flushes(), 3);
        assert_eq!(w.appends(), 5);
    }

    #[test]
    fn empty_commit_still_writes_a_sector() {
        let mut w = Wal::new();
        assert_eq!(w.flush_for_commit(), SECTOR);
    }

    #[test]
    fn totals_accumulate() {
        let mut w = Wal::new();
        w.append(1000);
        w.flush_for_commit();
        w.append(1000);
        w.flush_for_commit();
        assert_eq!(w.flushed_bytes(), 2 * 1024);
        assert_eq!(w.appends(), 2);
    }

    #[test]
    fn capture_off_keeps_image_empty() {
        let mut w = Wal::new();
        w.append(100);
        w.flush_for_commit();
        assert!(w.image().is_empty());
        assert!(!w.capture_enabled());
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::Insert {
                txn: 1,
                table: 2,
                rid: 7,
                row: vec![Value::Int(9), Value::Str("hi".into()), Value::Null],
            },
            WalRecord::Update {
                txn: 1,
                table: 2,
                rid: 7,
                before: vec![Value::Int(9)],
                after: vec![Value::Float(2.5)],
            },
            WalRecord::Delete {
                txn: 1,
                table: 2,
                rid: 7,
                row: vec![Value::Int(9)],
            },
            WalRecord::Commit { txn: 1 },
            WalRecord::Clr {
                txn: 3,
                undo_of: 2,
                table: 2,
                rid: 8,
                action: ClrAction::Reinsert {
                    row: vec![Value::Int(1)],
                },
            },
            WalRecord::Abort { txn: 3 },
            WalRecord::Checkpoint {
                active_txns: vec![4, 5],
                dirty_pages: vec![(10, 2), (11, 3)],
            },
            WalRecord::Prepare {
                txn: 6,
                coordinator: 2,
            },
            WalRecord::CoordCommit {
                txn: 6,
                participants: vec![0, 1, 3],
            },
            WalRecord::CoordEnd { txn: 6 },
        ]
    }

    #[test]
    fn records_round_trip_through_image() {
        let mut w = Wal::new();
        w.enable_capture();
        let recs = sample_records();
        for r in &recs {
            w.append_record(r, 100);
        }
        w.flush_for_commit();
        w.flush_durable();
        let scan = scan_log(w.image());
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), recs.len());
        for ((lsn, got), (i, want)) in scan.records.iter().zip(recs.iter().enumerate()) {
            assert_eq!(lsn.0, i as u64 + 1);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn crash_keeps_durable_flushes_and_torn_prefix_of_inflight() {
        let mut w = Wal::new();
        w.enable_capture();
        w.append_record(&WalRecord::Begin { txn: 1 }, 50);
        w.append_record(&WalRecord::Commit { txn: 1 }, 50);
        w.flush_for_commit();
        w.flush_durable(); // flush 1 completed
        w.append_record(&WalRecord::Begin { txn: 2 }, 50);
        w.append_record(&WalRecord::Commit { txn: 2 }, 50);
        w.flush_for_commit(); // flush 2 in flight
        w.append_record(&WalRecord::Begin { txn: 3 }, 50); // never flushed

        // Torn tail keeps zero sectors of the in-flight flush.
        let img = w.crash_image(|_| 0);
        let scan = scan_log(&img);
        assert_eq!(scan.records.len(), 2, "only the durable flush survives");

        // Torn tail keeps all sectors of the in-flight flush; txn 3's
        // unflushed record is still lost.
        let img = w.crash_image(|n| n);
        let scan = scan_log(&img);
        assert_eq!(scan.records.len(), 4);
        assert!(scan.records.iter().all(|(_, r)| r.txn() != Some(3)));
    }

    #[test]
    fn torn_mid_record_is_detected_and_truncated() {
        let mut w = Wal::new();
        w.enable_capture();
        w.append_record(&WalRecord::Begin { txn: 1 }, 50);
        w.append_record(
            &WalRecord::Insert {
                txn: 1,
                table: 0,
                rid: 0,
                row: vec![Value::Str("x".repeat(600))],
            },
            600,
        );
        // Cut inside the second record (pre-padding image).
        let cut = w.image().len() - 300;
        let img = w.image()[..cut].to_vec();
        let scan = scan_log(&img);
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn corrupted_sector_breaks_the_chain() {
        let mut w = Wal::new();
        w.enable_capture();
        for i in 0..8 {
            w.append_record(&WalRecord::Begin { txn: i }, 100);
        }
        let clean = scan_log(w.image());
        assert_eq!(clean.records.len(), 8);
        let mut img = w.image().to_vec();
        // Flip a byte in the middle of the (unpadded) record region.
        let mid = img.len() / 2;
        img[mid] ^= 0x40;
        let scan = scan_log(&img);
        assert!(scan.torn, "corruption must be detected");
        assert!(scan.records.len() < 8);
        // Every surviving record matches the clean scan prefix.
        for (got, want) in scan.records.iter().zip(clean.records.iter()) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn from_image_resumes_the_chain() {
        let mut w = Wal::new();
        w.enable_capture();
        w.append_record(&WalRecord::Begin { txn: 1 }, 50);
        w.flush_for_commit();
        w.force_durable();
        let mut r = Wal::from_image(w.image().to_vec());
        assert_eq!(r.next_lsn(), Lsn(2));
        r.append_record(&WalRecord::Commit { txn: 1 }, 50);
        r.force_durable();
        let scan = scan_log(r.image());
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn durable_lsn_tracks_completed_flushes() {
        let mut w = Wal::new();
        w.enable_capture();
        w.append_record(&WalRecord::Begin { txn: 1 }, 50);
        w.flush_for_commit();
        assert_eq!(w.durable_lsn(), Lsn(0));
        assert!(w.has_inflight_flush());
        w.flush_durable();
        assert_eq!(w.durable_lsn(), Lsn(1));
        assert!(!w.has_inflight_flush());
    }
}
