//! Lock manager and latch table with SQL Server-style wait accounting.
//!
//! Transactions take shared/exclusive row or key locks held until commit
//! (strict two-phase locking). Conflicting requests queue FIFO; the releaser
//! learns which blocked tasks to wake. Short-term physical latches
//! (page latches, internal structure latches) are modeled as busy windows:
//! an acquirer finding the latch busy backs off until the current holder's
//! window ends, which is exactly the PAGELATCH/LATCH contention the paper's
//! Table 3 decomposes.
//!
//! Deadlock discipline: workloads acquire locks in canonical resource order
//! within each transaction, so FIFO queues cannot deadlock.

use dbsens_hwsim::fx::FxHashMap;
use dbsens_hwsim::task::TaskId;
use dbsens_hwsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    S,
    /// Update (read with intent to write; prevents upgrade deadlocks).
    U,
    /// Exclusive (writers).
    X,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!(
            (self, other),
            (LockMode::S, LockMode::S) | (LockMode::S, LockMode::U) | (LockMode::U, LockMode::S)
        )
    }

    /// Does holding `self` satisfy a request for `want`?
    fn covers(self, want: LockMode) -> bool {
        matches!(
            (self, want),
            (LockMode::X, _)
                | (LockMode::U, LockMode::U | LockMode::S)
                | (LockMode::S, LockMode::S)
        )
    }
}

/// A lockable resource: a row (or key) of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockKey {
    /// Table identifier.
    pub table: u32,
    /// Row/key identifier within the table (modeled, full-scale id space so
    /// conflict probability scales with the database size).
    pub row: u64,
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockReq {
    /// The lock was granted; proceed.
    Granted,
    /// The requester must block until woken by a releaser.
    Wait,
}

#[derive(Debug, Clone, Default)]
struct LockEntry {
    holders: Vec<(TxnId, LockMode)>,
    waiters: VecDeque<(TxnId, TaskId, LockMode)>,
}

/// Grants from the front of `entry`'s queue while compatible, recording the
/// tasks to wake. Shared by release and wait-cancellation paths.
fn promote_waiters(
    entry: &mut LockEntry,
    key: LockKey,
    held_by_txn: &mut FxHashMap<TxnId, Vec<LockKey>>,
    keys_pool: &mut Vec<Vec<LockKey>>,
    woken: &mut Vec<TaskId>,
) {
    while let Some(&(wtxn, wtask, wmode)) = entry.waiters.front() {
        let upgrade_pos = entry.holders.iter().position(|(t, _)| *t == wtxn);
        let others_compatible = entry
            .holders
            .iter()
            .filter(|(t, _)| *t != wtxn)
            .all(|(_, held)| held.compatible(wmode));
        if !others_compatible {
            break;
        }
        entry.waiters.pop_front();
        match upgrade_pos {
            Some(pos) => entry.holders[pos].1 = wmode,
            None => {
                entry.holders.push((wtxn, wmode));
                held_by_txn
                    .entry(wtxn)
                    .or_insert_with(|| keys_pool.pop().unwrap_or_default())
                    .push(key);
            }
        }
        woken.push(wtask);
    }
}

/// The lock manager.
///
/// # Examples
///
/// ```
/// use dbsens_storage::lock::{LockKey, LockManager, LockMode, LockReq, TxnId};
/// use dbsens_hwsim::task::TaskId;
///
/// let mut lm = LockManager::new();
/// let key = LockKey { table: 1, row: 42 };
/// assert_eq!(lm.acquire(TxnId(1), TaskId(0), key, LockMode::X), LockReq::Granted);
/// assert_eq!(lm.acquire(TxnId(2), TaskId(1), key, LockMode::S), LockReq::Wait);
/// let woken = lm.release_all(TxnId(1));
/// assert_eq!(woken, vec![TaskId(1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockManager {
    locks: FxHashMap<LockKey, LockEntry>,
    held_by_txn: FxHashMap<TxnId, Vec<LockKey>>,
    /// Free list of retired lock entries. Hot resources cycle through the
    /// table constantly under strict 2PL (an entry dies whenever its last
    /// holder commits), so recycled holder/waiter buffers keep the steady
    /// state allocation-free.
    entry_pool: Vec<LockEntry>,
    /// Free list of retired per-transaction key lists.
    keys_pool: Vec<Vec<LockKey>>,
    grants: u64,
    waits: u64,
}

/// Bound on both free lists; past this, retired buffers drop normally.
const LOCK_POOL_CAP: usize = 256;

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Retires `entry`'s buffers into the free list.
    fn recycle_entry(&mut self, mut entry: LockEntry) {
        if (entry.holders.capacity() > 0 || entry.waiters.capacity() > 0)
            && self.entry_pool.len() < LOCK_POOL_CAP
        {
            entry.holders.clear();
            entry.waiters.clear();
            self.entry_pool.push(entry);
        }
    }

    /// Retires a per-transaction key list into the free list.
    fn recycle_keys(&mut self, mut keys: Vec<LockKey>) {
        if keys.capacity() > 0 && self.keys_pool.len() < LOCK_POOL_CAP {
            keys.clear();
            self.keys_pool.push(keys);
        }
    }

    /// Requests `key` in `mode` for `txn` (running as `task`).
    ///
    /// Re-entrant: a transaction already holding the resource in a
    /// covering mode is granted immediately. Upgrades (S/U to X) are
    /// granted in place when every other holder is compatible with the new
    /// mode, and otherwise queue at the *front* (upgrade priority). To stay
    /// deadlock-free, transactions that will write a resource must take
    /// `U` or `X` on first touch (SQL Server's update-lock discipline).
    pub fn acquire(&mut self, txn: TxnId, task: TaskId, key: LockKey, mode: LockMode) -> LockReq {
        let entry_pool = &mut self.entry_pool;
        let entry = self
            .locks
            .entry(key)
            .or_insert_with(|| entry_pool.pop().unwrap_or_default());
        // Re-entrancy and upgrade.
        if let Some(pos) = entry.holders.iter().position(|(t, _)| *t == txn) {
            let held = entry.holders[pos].1;
            if held.covers(mode) {
                self.grants += 1;
                return LockReq::Granted;
            }
            let others_ok = entry
                .holders
                .iter()
                .enumerate()
                .all(|(i, (_, h))| i == pos || h.compatible(mode));
            if others_ok {
                entry.holders[pos].1 = mode;
                self.grants += 1;
                return LockReq::Granted;
            }
            // Upgrade must wait for the other holders; it goes first in
            // line so new readers cannot starve it.
            entry.waiters.push_front((txn, task, mode));
            self.waits += 1;
            return LockReq::Wait;
        }
        let compatible =
            entry.waiters.is_empty() && entry.holders.iter().all(|(_, held)| held.compatible(mode));
        if compatible {
            entry.holders.push((txn, mode));
            let keys_pool = &mut self.keys_pool;
            self.held_by_txn
                .entry(txn)
                .or_insert_with(|| keys_pool.pop().unwrap_or_default())
                .push(key);
            self.grants += 1;
            LockReq::Granted
        } else {
            entry.waiters.push_back((txn, task, mode));
            self.waits += 1;
            LockReq::Wait
        }
    }

    /// Releases every lock held by `txn` (commit/abort under strict 2PL)
    /// and grants queued requests that become compatible. Returns the tasks
    /// to wake, in grant order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<TaskId> {
        let mut woken = Vec::new();
        let keys = self.held_by_txn.remove(&txn).unwrap_or_default();
        for &key in &keys {
            let Some(entry) = self.locks.get_mut(&key) else {
                continue;
            };
            entry.holders.retain(|(t, _)| *t != txn);
            promote_waiters(
                entry,
                key,
                &mut self.held_by_txn,
                &mut self.keys_pool,
                &mut woken,
            );
            if entry.holders.is_empty() && entry.waiters.is_empty() {
                if let Some(entry) = self.locks.remove(&key) {
                    self.recycle_entry(entry);
                }
            }
        }
        self.recycle_keys(keys);
        woken
    }

    /// Removes `txn`'s queued (not yet granted) request made by `task` from
    /// every wait queue — used when a transaction aborts while blocked.
    /// Removing a queue head can make the requests behind it grantable;
    /// the tasks to wake are returned.
    pub fn cancel_wait(&mut self, txn: TxnId, task: TaskId) -> Vec<TaskId> {
        let mut woken = Vec::new();
        let keys: Vec<LockKey> = self
            .locks
            .iter()
            .filter(|(_, e)| e.waiters.iter().any(|&(t, k, _)| t == txn && k == task))
            .map(|(key, _)| *key)
            .collect();
        for key in keys {
            let Some(entry) = self.locks.get_mut(&key) else {
                continue;
            };
            entry.waiters.retain(|&(t, k, _)| !(t == txn && k == task));
            promote_waiters(
                entry,
                key,
                &mut self.held_by_txn,
                &mut self.keys_pool,
                &mut woken,
            );
            if entry.holders.is_empty() && entry.waiters.is_empty() {
                if let Some(entry) = self.locks.remove(&key) {
                    self.recycle_entry(entry);
                }
            }
        }
        woken
    }

    /// Returns the transactions from `stalled` that currently hold a lock
    /// with at least one waiter queued behind it. Under fault injection a
    /// stalled holder is indistinguishable from a deadlock to its waiters,
    /// so the engine treats these as deadlock victims and aborts them.
    pub fn stalled_victims(&self, stalled: &[TxnId]) -> Vec<TxnId> {
        let mut victims: Vec<TxnId> = self
            .locks
            .values()
            .filter(|e| !e.waiters.is_empty())
            .flat_map(|e| e.holders.iter().map(|(t, _)| *t))
            .filter(|t| stalled.contains(t))
            .collect();
        victims.sort();
        victims.dedup();
        victims
    }

    /// Total grants so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total wait-queue entries so far.
    pub fn waits(&self) -> u64 {
        self.waits
    }

    /// Number of currently locked resources.
    pub fn locked_resources(&self) -> usize {
        self.locks.len()
    }
}

/// Latch namespaces, so page latches and internal-structure latches use
/// disjoint key spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatchKey {
    /// Latch on a buffer page (by modeled global page id).
    Page(u64),
    /// Latch on a named internal structure (log buffer, lock table
    /// partitions, allocation maps, ...).
    Internal(u32),
}

/// Short-term latch table modeled as busy windows.
///
/// A successful acquire marks the latch busy until `now + hold`; a
/// conflicting acquire is told when the latch frees so it can back off
/// (yielding a PAGELATCH or LATCH wait of that length).
///
/// # Examples
///
/// ```
/// use dbsens_storage::lock::{LatchKey, LatchTable};
/// use dbsens_hwsim::time::{SimDuration, SimTime};
///
/// let mut latches = LatchTable::new();
/// let now = SimTime::ZERO;
/// assert!(latches.acquire(LatchKey::Page(7), now, SimDuration::from_micros(5)).is_ok());
/// let busy_until = latches
///     .acquire(LatchKey::Page(7), now, SimDuration::from_micros(5))
///     .unwrap_err();
/// assert_eq!(busy_until.as_nanos(), 5_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatchTable {
    busy: FxHashMap<LatchKey, SimTime>,
    acquisitions: u64,
    conflicts: u64,
}

impl LatchTable {
    /// Creates an empty latch table.
    pub fn new() -> Self {
        LatchTable::default()
    }

    /// Attempts to hold latch `key` for `hold` starting at `now`.
    ///
    /// # Errors
    ///
    /// Returns `Err(busy_until)` when the latch is held; the caller should
    /// sleep until then and retry.
    pub fn acquire(
        &mut self,
        key: LatchKey,
        now: SimTime,
        hold: SimDuration,
    ) -> Result<(), SimTime> {
        match self.busy.get(&key) {
            Some(&until) if until > now => {
                self.conflicts += 1;
                Err(until)
            }
            _ => {
                self.busy.insert(key, now + hold);
                self.acquisitions += 1;
                // Opportunistic cleanup keeps the table bounded by the hot
                // set.
                if self.busy.len() > 4096 {
                    self.busy.retain(|_, &mut until| until > now);
                }
                Ok(())
            }
        }
    }

    /// Total successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Total conflicts observed.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(row: u64) -> LockKey {
        LockKey { table: 1, row }
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::S),
            LockReq::Granted
        );
        assert_eq!(
            lm.acquire(TxnId(2), TaskId(2), key(1), LockMode::S),
            LockReq::Granted
        );
        assert_eq!(
            lm.acquire(TxnId(3), TaskId(3), key(1), LockMode::X),
            LockReq::Wait
        );
    }

    #[test]
    fn exclusive_blocks_all() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::X),
            LockReq::Granted
        );
        assert_eq!(
            lm.acquire(TxnId(2), TaskId(2), key(1), LockMode::S),
            LockReq::Wait
        );
        assert_eq!(
            lm.acquire(TxnId(3), TaskId(3), key(1), LockMode::X),
            LockReq::Wait
        );
        // FIFO: releasing grants the shared waiter first, then stops at X.
        let woken = lm.release_all(TxnId(1));
        assert_eq!(woken, vec![TaskId(2)]);
        let woken = lm.release_all(TxnId(2));
        assert_eq!(woken, vec![TaskId(3)]);
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::S),
            LockReq::Granted
        );
        assert_eq!(
            lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::S),
            LockReq::Granted
        );
        // Sole holder may upgrade in place.
        assert_eq!(
            lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::X),
            LockReq::Granted
        );
        // X holder is granted anything.
        assert_eq!(
            lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::S),
            LockReq::Granted
        );
    }

    #[test]
    fn upgrade_waits_for_other_readers() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::S);
        lm.acquire(TxnId(2), TaskId(2), key(1), LockMode::S);
        assert_eq!(
            lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::X),
            LockReq::Wait
        );
        let woken = lm.release_all(TxnId(2));
        assert_eq!(woken, vec![TaskId(1)]);
        // Txn 1 now holds X: a new reader must wait.
        assert_eq!(
            lm.acquire(TxnId(3), TaskId(3), key(1), LockMode::S),
            LockReq::Wait
        );
    }

    #[test]
    fn waiters_block_new_compatible_requests() {
        // A queued X waiter prevents later S requests from overtaking
        // (no reader starvation of writers).
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::S);
        assert_eq!(
            lm.acquire(TxnId(2), TaskId(2), key(1), LockMode::X),
            LockReq::Wait
        );
        assert_eq!(
            lm.acquire(TxnId(3), TaskId(3), key(1), LockMode::S),
            LockReq::Wait
        );
        let woken = lm.release_all(TxnId(1));
        assert_eq!(woken, vec![TaskId(2)]);
    }

    #[test]
    fn release_cleans_up_entries() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::X);
        lm.acquire(TxnId(1), TaskId(1), key(2), LockMode::S);
        assert_eq!(lm.locked_resources(), 2);
        lm.release_all(TxnId(1));
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn stalled_holder_blocking_waiters_is_a_deadlock_victim() {
        // Txn 1 holds X and then stalls (its task is stuck retrying a failed
        // I/O); txn 2 queues behind it. From txn 2's perspective this is a
        // deadlock: nothing will ever release the lock unless the stalled
        // holder is victimized.
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::X),
            LockReq::Granted
        );
        assert_eq!(
            lm.acquire(TxnId(2), TaskId(2), key(1), LockMode::S),
            LockReq::Wait
        );
        // A stalled txn with no waiters behind it is left alone.
        assert_eq!(
            lm.acquire(TxnId(3), TaskId(3), key(2), LockMode::X),
            LockReq::Granted
        );
        assert_eq!(lm.stalled_victims(&[TxnId(1), TxnId(3)]), vec![TxnId(1)]);
        assert_eq!(lm.stalled_victims(&[TxnId(3)]), Vec::<TxnId>::new());
        // Victimizing the stalled holder unblocks the waiter.
        let woken = lm.release_all(TxnId(1));
        assert_eq!(woken, vec![TaskId(2)]);
    }

    #[test]
    fn cancel_wait_removes_waiter_and_promotes_followers() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), TaskId(1), key(1), LockMode::S);
        assert_eq!(
            lm.acquire(TxnId(2), TaskId(2), key(1), LockMode::X),
            LockReq::Wait
        );
        assert_eq!(
            lm.acquire(TxnId(3), TaskId(3), key(1), LockMode::S),
            LockReq::Wait
        );
        // Txn 2 aborts while waiting: its X request leaves the queue and the
        // S request behind it becomes compatible with the S holder.
        let woken = lm.cancel_wait(TxnId(2), TaskId(2));
        assert_eq!(woken, vec![TaskId(3)]);
        // Cancelling a txn that is not waiting is a no-op.
        assert!(lm.cancel_wait(TxnId(2), TaskId(2)).is_empty());
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(3));
        assert_eq!(lm.locked_resources(), 0);
    }

    #[test]
    fn latch_busy_window_expires() {
        let mut lt = LatchTable::new();
        let t0 = SimTime::ZERO;
        assert!(lt
            .acquire(LatchKey::Page(1), t0, SimDuration::from_micros(10))
            .is_ok());
        assert!(lt
            .acquire(LatchKey::Page(1), t0, SimDuration::from_micros(10))
            .is_err());
        // Different page: free.
        assert!(lt
            .acquire(LatchKey::Page(2), t0, SimDuration::from_micros(10))
            .is_ok());
        // After the window, the latch is free again.
        let later = t0 + SimDuration::from_micros(11);
        assert!(lt
            .acquire(LatchKey::Page(1), later, SimDuration::from_micros(10))
            .is_ok());
        assert_eq!(lt.conflicts(), 1);
        assert_eq!(lt.acquisitions(), 3);
    }

    #[test]
    fn internal_and_page_namespaces_disjoint() {
        let mut lt = LatchTable::new();
        let t0 = SimTime::ZERO;
        assert!(lt
            .acquire(LatchKey::Page(7), t0, SimDuration::from_micros(10))
            .is_ok());
        assert!(lt
            .acquire(LatchKey::Internal(7), t0, SimDuration::from_micros(10))
            .is_ok());
    }
}
