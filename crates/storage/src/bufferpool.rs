//! Buffer pool: a metadata-only page cache at extent granularity.
//!
//! The buffer pool tracks *which modeled pages are memory-resident* without
//! storing contents (contents live in the scaled-down logical structures).
//! To bound metadata for paper-scale databases (up to ~160 GB), residency is
//! tracked per 64-page extent (512 KB) with a clock (second-chance)
//! replacement policy. Misses translate into SSD reads and PAGEIOLATCH
//! waits; evictions of dirty extents translate into background write-back
//! traffic.

use dbsens_hwsim::fx::FxHashMap;

/// Bytes per modeled page (SQL Server: 8 KB).
pub const PAGE_BYTES: u64 = 8192;
/// Pages per extent tracked by the pool (SQL Server extents are 8 pages; we
/// use 64 to bound metadata, which only coarsens residency tracking).
pub const EXTENT_PAGES: u64 = 64;
/// Bytes per tracked extent.
pub const EXTENT_BYTES: u64 = PAGE_BYTES * EXTENT_PAGES;

/// Outcome of a page-run access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BpAccess {
    /// Pages found resident.
    pub hit_pages: u64,
    /// Pages that had to be read from the device.
    pub miss_pages: u64,
    /// Dirty pages evicted to make room (write-back traffic).
    pub evicted_dirty_pages: u64,
}

/// Cumulative buffer pool statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BpStats {
    /// Total page hits.
    pub hit_pages: u64,
    /// Total page misses.
    pub miss_pages: u64,
    /// Total dirty pages written back on eviction.
    pub evicted_dirty_pages: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    extent: u64,
    ref_bit: bool,
    /// Approximate count of dirty pages in the extent (saturating); used
    /// so eviction write-back traffic reflects pages actually written,
    /// not whole extents.
    dirty_pages: u64,
}

/// The buffer pool.
///
/// # Examples
///
/// ```
/// use dbsens_storage::bufferpool::BufferPool;
///
/// let mut pool = BufferPool::new(1 << 30); // 1 GB
/// let first = pool.access(0, 100, false);
/// assert_eq!(first.miss_pages, 100);
/// let again = pool.access(0, 100, false);
/// assert_eq!(again.hit_pages, 100);
/// ```
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity_extents: usize,
    slots: Vec<Slot>,
    map: FxHashMap<u64, usize>,
    hand: usize,
    stats: BpStats,
    probe_seed: u64,
}

impl BufferPool {
    /// Creates a pool holding up to `capacity_bytes` of pages.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one extent.
    pub fn new(capacity_bytes: u64) -> Self {
        let capacity_extents = (capacity_bytes / EXTENT_BYTES) as usize;
        assert!(capacity_extents >= 1, "buffer pool smaller than one extent");
        BufferPool {
            capacity_extents,
            slots: Vec::new(),
            map: FxHashMap::default(),
            hand: 0,
            stats: BpStats::default(),
            probe_seed: 0x9E3779B97F4A7C15,
        }
    }

    /// Pool capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_extents as u64 * EXTENT_BYTES
    }

    /// Current resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.slots.len() as u64 * EXTENT_BYTES
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BpStats {
        self.stats
    }

    /// Accesses the page run `[start_page, start_page + pages)`; `write`
    /// marks the pages dirty. Returns per-run hit/miss/eviction counts.
    pub fn access(&mut self, start_page: u64, pages: u64, write: bool) -> BpAccess {
        if pages == 0 {
            return BpAccess::default();
        }
        let first_extent = start_page / EXTENT_PAGES;
        let last_extent = (start_page + pages - 1) / EXTENT_PAGES;
        let mut out = BpAccess::default();
        for extent in first_extent..=last_extent {
            // Pages of the run that land in this extent.
            let ext_start = extent * EXTENT_PAGES;
            let lo = start_page.max(ext_start);
            let hi = (start_page + pages).min(ext_start + EXTENT_PAGES);
            let span = hi - lo;
            if let Some(&slot) = self.map.get(&extent) {
                self.slots[slot].ref_bit = true;
                if write {
                    self.slots[slot].dirty_pages =
                        (self.slots[slot].dirty_pages + span).min(EXTENT_PAGES);
                }
                out.hit_pages += span;
            } else {
                out.miss_pages += span;
                out.evicted_dirty_pages += self.admit(extent, if write { span } else { 0 });
            }
        }
        self.stats.hit_pages += out.hit_pages;
        self.stats.miss_pages += out.miss_pages;
        self.stats.evicted_dirty_pages += out.evicted_dirty_pages;
        out
    }

    /// Accesses `count` pages chosen (pseudo-)randomly within the span
    /// `[start_page, start_page + span_pages)` — the access pattern of
    /// nested-loops inner seeks. Large counts are sampled: up to 128 probes
    /// touch replacement state and the outcome is extrapolated.
    pub fn access_random(
        &mut self,
        start_page: u64,
        span_pages: u64,
        count: u64,
        write: bool,
    ) -> BpAccess {
        if count == 0 || span_pages == 0 {
            return BpAccess::default();
        }
        let probes = count.min(128);
        let mut probe_out = BpAccess::default();
        for _ in 0..probes {
            // Deterministic xorshift stream seeded from pool state.
            self.probe_seed ^= self.probe_seed << 13;
            self.probe_seed ^= self.probe_seed >> 7;
            self.probe_seed ^= self.probe_seed << 17;
            let page = start_page + self.probe_seed % span_pages;
            let one = self.access(page, 1, write);
            probe_out.hit_pages += one.hit_pages;
            probe_out.miss_pages += one.miss_pages;
            probe_out.evicted_dirty_pages += one.evicted_dirty_pages;
        }
        if probes == count {
            return probe_out;
        }
        // Extrapolate sampled ratios to the full count; stats were already
        // bumped for the probes, so add only the remainder.
        let scale = count as f64 / probes as f64;
        let hit_pages = (probe_out.hit_pages as f64 * scale) as u64;
        let out = BpAccess {
            hit_pages,
            miss_pages: count - hit_pages,
            evicted_dirty_pages: (probe_out.evicted_dirty_pages as f64 * scale) as u64,
        };
        self.stats.hit_pages += out.hit_pages - probe_out.hit_pages;
        self.stats.miss_pages += out.miss_pages - probe_out.miss_pages;
        self.stats.evicted_dirty_pages += out.evicted_dirty_pages - probe_out.evicted_dirty_pages;
        out
    }

    /// Fraction of the page run currently resident, without touching
    /// replacement state (used by read-ahead decisions).
    pub fn resident_fraction(&self, start_page: u64, pages: u64) -> f64 {
        if pages == 0 {
            return 1.0;
        }
        let first_extent = start_page / EXTENT_PAGES;
        let last_extent = (start_page + pages - 1) / EXTENT_PAGES;
        let total = last_extent - first_extent + 1;
        let resident = (first_extent..=last_extent)
            .filter(|e| self.map.contains_key(e))
            .count() as u64;
        resident as f64 / total as f64
    }

    /// Inserts `extent` with `written_pages` already dirty; returns dirty
    /// pages evicted.
    fn admit(&mut self, extent: u64, written_pages: u64) -> u64 {
        let written_pages = written_pages.min(EXTENT_PAGES);
        if self.slots.len() < self.capacity_extents {
            self.map.insert(extent, self.slots.len());
            self.slots.push(Slot {
                extent,
                ref_bit: true,
                dirty_pages: written_pages,
            });
            return 0;
        }
        // Clock sweep: clear reference bits until a victim is found.
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.ref_bit {
                slot.ref_bit = false;
                self.hand = (self.hand + 1) % self.slots.len();
                continue;
            }
            let evicted_dirty = slot.dirty_pages;
            self.map.remove(&slot.extent);
            *slot = Slot {
                extent,
                ref_bit: true,
                dirty_pages: written_pages,
            };
            self.map.insert(extent, self.hand);
            self.hand = (self.hand + 1) % self.slots.len();
            return evicted_dirty;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_warm() {
        let mut p = BufferPool::new(100 * EXTENT_BYTES);
        let a = p.access(0, EXTENT_PAGES * 4, false);
        assert_eq!(a.miss_pages, EXTENT_PAGES * 4);
        assert_eq!(a.hit_pages, 0);
        let b = p.access(0, EXTENT_PAGES * 4, false);
        assert_eq!(b.hit_pages, EXTENT_PAGES * 4);
        assert_eq!(b.miss_pages, 0);
    }

    #[test]
    fn partial_extent_runs_counted_in_pages() {
        let mut p = BufferPool::new(100 * EXTENT_BYTES);
        // 10 pages spanning two extents (starts at page 60).
        let a = p.access(60, 10, false);
        assert_eq!(a.miss_pages, 10);
        let b = p.access(60, 10, false);
        assert_eq!(b.hit_pages, 10);
    }

    #[test]
    fn working_set_larger_than_pool_always_misses() {
        let mut p = BufferPool::new(4 * EXTENT_BYTES);
        // Stream 100 extents twice: second pass misses too.
        let pass1 = p.access(0, EXTENT_PAGES * 100, false);
        assert_eq!(pass1.miss_pages, EXTENT_PAGES * 100);
        let pass2 = p.access(0, EXTENT_PAGES * 100, false);
        assert!(
            pass2.miss_pages > EXTENT_PAGES * 90,
            "got {} misses",
            pass2.miss_pages
        );
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut p = BufferPool::new(2 * EXTENT_BYTES);
        p.access(0, EXTENT_PAGES * 2, true); // fill with dirty extents
        let a = p.access(EXTENT_PAGES * 2, EXTENT_PAGES * 2, false);
        assert!(
            a.evicted_dirty_pages >= EXTENT_PAGES,
            "dirty writeback expected"
        );
    }

    #[test]
    fn dirty_writeback_counts_written_pages_not_whole_extents() {
        let mut p = BufferPool::new(2 * EXTENT_BYTES);
        // Dirty a single page in each of two extents.
        p.access(0, 1, true);
        p.access(EXTENT_PAGES, 1, true);
        // Evict both by streaming two fresh extents through.
        let a = p.access(EXTENT_PAGES * 2, EXTENT_PAGES * 2, false);
        assert!(
            a.evicted_dirty_pages <= 2,
            "expected ~2 dirty pages, got {}",
            a.evicted_dirty_pages
        );
    }

    #[test]
    fn clock_gives_second_chance_to_referenced() {
        let mut p = BufferPool::new(2 * EXTENT_BYTES);
        p.access(0, 1, false); // extent 0 (A)
        p.access(EXTENT_PAGES, 1, false); // extent 1 (B)
                                          // Insert C: the sweep clears both reference bits and evicts A.
        p.access(EXTENT_PAGES * 2, 1, false);
        // Re-reference C; B's reference bit stays clear.
        p.access(EXTENT_PAGES * 2, 1, false);
        // Insert D: the unreferenced B is the victim; C survives.
        p.access(EXTENT_PAGES * 3, 1, false);
        assert_eq!(
            p.access(EXTENT_PAGES * 2, 1, false).hit_pages,
            1,
            "C evicted"
        );
        assert_eq!(p.access(EXTENT_PAGES, 1, false).miss_pages, 1, "B survived");
    }

    #[test]
    fn resident_fraction_reports_without_mutation() {
        let mut p = BufferPool::new(10 * EXTENT_BYTES);
        p.access(0, EXTENT_PAGES * 5, false);
        assert!((p.resident_fraction(0, EXTENT_PAGES * 5) - 1.0).abs() < 1e-9);
        assert!((p.resident_fraction(0, EXTENT_PAGES * 10) - 0.5).abs() < 1e-9);
        assert!((p.resident_fraction(EXTENT_PAGES * 100, EXTENT_PAGES * 2) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate() {
        let mut p = BufferPool::new(10 * EXTENT_BYTES);
        p.access(0, 10, false);
        p.access(0, 10, false);
        let s = p.stats();
        assert_eq!(s.miss_pages, 10);
        assert_eq!(s.hit_pages, 10);
    }

    #[test]
    fn random_access_sampled_and_extrapolated() {
        let mut p = BufferPool::new(1000 * EXTENT_BYTES);
        // Warm half the span.
        p.access(0, EXTENT_PAGES * 500, false);
        let out = p.access_random(0, EXTENT_PAGES * 1000, 100_000, false);
        assert_eq!(out.hit_pages + out.miss_pages, 100_000);
        let hit_frac = out.hit_pages as f64 / 100_000.0;
        assert!((0.3..0.75).contains(&hit_frac), "hit fraction {hit_frac}");
    }

    #[test]
    fn random_access_zero_inputs() {
        let mut p = BufferPool::new(10 * EXTENT_BYTES);
        assert_eq!(p.access_random(0, 0, 10, false), BpAccess::default());
        assert_eq!(p.access_random(0, 10, 0, false), BpAccess::default());
    }

    #[test]
    #[should_panic(expected = "smaller than one extent")]
    fn tiny_pool_rejected() {
        let _ = BufferPool::new(10);
    }
}
