//! Heap (row-store) tables.
//!
//! A heap holds the *logical* rows of a table — real data at scaled-down
//! cardinality — in insertion slots addressed by [`RowId`]. Deleted slots go
//! on a free list and are reused, like pages with free space in a real heap.

use crate::btree::RowId;
use crate::schema::Schema;
use crate::value::Row;

/// A slotted heap of rows.
///
/// # Examples
///
/// ```
/// use dbsens_storage::heap::HeapTable;
/// use dbsens_storage::schema::{ColType, Schema};
/// use dbsens_storage::value::Value;
///
/// let schema = Schema::new(&[("id", ColType::Int)]);
/// let mut heap = HeapTable::new(schema);
/// let rid = heap.insert(vec![Value::Int(7)]);
/// assert_eq!(heap.get(rid).unwrap()[0], Value::Int(7));
/// ```
#[derive(Debug, Clone)]
pub struct HeapTable {
    schema: Schema,
    slots: Vec<Option<Row>>,
    free: Vec<u64>,
    live: usize,
}

impl HeapTable {
    /// Creates an empty heap for the given schema.
    pub fn new(schema: Schema) -> Self {
        HeapTable {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// The heap's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if there are no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a row and returns its id.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the row does not match the schema.
    pub fn insert(&mut self, row: Row) -> RowId {
        debug_assert!(self.schema.check_row(&row), "row does not match schema");
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(row);
            RowId(slot)
        } else {
            self.slots.push(Some(row));
            RowId(self.slots.len() as u64 - 1)
        }
    }

    /// Returns the row with the given id, if live.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.slots.get(rid.0 as usize).and_then(|s| s.as_ref())
    }

    /// Mutable access to a live row.
    pub fn get_mut(&mut self, rid: RowId) -> Option<&mut Row> {
        self.slots.get_mut(rid.0 as usize).and_then(|s| s.as_mut())
    }

    /// Inserts a row at a specific slot (recovery/undo path: a deleted row
    /// must come back under its original id so later log records still
    /// resolve). Extends the heap if the slot is past the end. Returns
    /// `false` (and leaves the heap unchanged) if the slot is occupied.
    pub fn insert_at(&mut self, rid: RowId, row: Row) -> bool {
        debug_assert!(self.schema.check_row(&row), "row does not match schema");
        let idx = rid.0 as usize;
        if idx >= self.slots.len() {
            // Newly materialized slots below idx are free.
            for i in self.slots.len()..idx {
                self.free.push(i as u64);
            }
            self.slots.resize(idx + 1, None);
        } else if self.slots[idx].is_some() {
            return false;
        } else {
            self.free.retain(|&s| s != rid.0);
        }
        self.slots[idx] = Some(row);
        self.live += 1;
        true
    }

    /// Deletes a row; returns it if it was live.
    pub fn delete(&mut self, rid: RowId) -> Option<Row> {
        let slot = self.slots.get_mut(rid.0 as usize)?;
        let row = slot.take()?;
        self.free.push(rid.0);
        self.live -= 1;
        Some(row)
    }

    /// Deletes a row but keeps its slot reserved (not on the free list), so
    /// the id cannot be reused. Transactional deletes use this: the slot
    /// must stay claimable in case the delete is undone (a ghost record).
    pub fn delete_keep_slot(&mut self, rid: RowId) -> Option<Row> {
        let slot = self.slots.get_mut(rid.0 as usize)?;
        let row = slot.take()?;
        self.live -= 1;
        Some(row)
    }

    /// Iterates `(RowId, &Row)` over live rows in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u64), r)))
    }

    /// Capacity in slots (live + free), which maps to allocated pages.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColType;
    use crate::value::Value;

    fn heap() -> HeapTable {
        HeapTable::new(Schema::new(&[("id", ColType::Int), ("v", ColType::Float)]))
    }

    fn row(id: i64) -> Row {
        vec![Value::Int(id), Value::Float(id as f64 * 0.5)]
    }

    #[test]
    fn insert_get_delete() {
        let mut h = heap();
        let a = h.insert(row(1));
        let b = h.insert(row(2));
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(a).unwrap()[0].as_int(), 1);
        assert_eq!(h.delete(a).unwrap()[0].as_int(), 1);
        assert!(h.get(a).is_none());
        assert_eq!(h.len(), 1);
        assert!(h.get(b).is_some());
    }

    #[test]
    fn slots_are_reused() {
        let mut h = heap();
        let a = h.insert(row(1));
        h.insert(row(2));
        h.delete(a);
        let c = h.insert(row(3));
        assert_eq!(c, a, "free slot should be reused");
        assert_eq!(h.slot_count(), 2);
    }

    #[test]
    fn delete_twice_is_none() {
        let mut h = heap();
        let a = h.insert(row(1));
        assert!(h.delete(a).is_some());
        assert!(h.delete(a).is_none());
        assert!(h.delete(RowId(99)).is_none());
    }

    #[test]
    fn iter_skips_deleted() {
        let mut h = heap();
        let ids: Vec<RowId> = (0..10).map(|i| h.insert(row(i))).collect();
        h.delete(ids[3]);
        h.delete(ids[7]);
        let seen: Vec<i64> = h.iter().map(|(_, r)| r[0].as_int()).collect();
        assert_eq!(seen, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut h = heap();
        let a = h.insert(row(1));
        h.get_mut(a).unwrap()[1] = Value::Float(9.0);
        assert_eq!(h.get(a).unwrap()[1].as_f64(), 9.0);
    }
}
