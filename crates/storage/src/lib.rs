//! # dbsens-storage
//!
//! Storage engine substrate for the `dbsens` reproduction of
//! *"Characterizing Resource Sensitivity of Database Workloads"* (HPCA
//! 2018): row values and schemas, heap tables, a from-scratch B+ tree, a
//! compressed columnstore with delta store, an extent-granular buffer pool,
//! a write-ahead log with group commit, and a lock/latch manager with SQL
//! Server-style wait classification.
//!
//! Logical data structures hold real (scaled-down) data; the [`physical`]
//! module models their paper-scale footprints so cache and I/O pressure
//! match the paper's database sizes (Table 2).
//!
//! ## Example
//!
//! ```
//! use dbsens_storage::btree::{BTree, RowId};
//! use dbsens_storage::value::Key;
//!
//! let mut index = BTree::new();
//! for i in 0..100 {
//!     index.insert(Key::int(i), RowId(i as u64));
//! }
//! assert_eq!(index.get(&Key::int(42)).count(), 1);
//! ```

#![warn(missing_docs)]

pub mod btree;
pub mod bufferpool;
pub mod columnstore;
pub mod heap;
pub mod lock;
pub mod physical;
pub mod schema;
pub mod value;
pub mod wal;

pub use btree::{BTree, RowId};
pub use bufferpool::{BufferPool, PAGE_BYTES};
pub use columnstore::ColumnStore;
pub use heap::HeapTable;
pub use lock::{LatchKey, LatchTable, LockKey, LockManager, LockMode, LockReq, TxnId};
pub use physical::{ColumnstoreLayout, IndexLayout, ModelSpace, TableLayout};
pub use schema::{ColType, ColumnDef, Schema};
pub use value::{cmp_values, Key, Row, Value};
pub use wal::{scan_log, ClrAction, LogScan, Lsn, Wal, WalRecord};
