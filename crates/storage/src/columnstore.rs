//! Columnstore: compressed column segments with a delta store.
//!
//! Models SQL Server's columnstore indexes: rows are organized into **row
//! groups**, each column of a row group compressed into a **segment**
//! (dictionary or run-length encoding, whichever is smaller) with min/max
//! metadata for segment elimination. An updateable non-clustered columnstore
//! index (the HTAP configuration) additionally maintains a **delta store**
//! of recently inserted rows and a deleted-row bitmap; a tuple-mover
//! compresses the delta store into new row groups.

use crate::btree::RowId;
use crate::schema::Schema;
use crate::value::{cmp_values, Row, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Rows per row group. SQL Server uses ~1M rows; the logical store is
/// scaled down, so the default group is smaller but the *modeled* group
/// size used for sizing stays at paper scale in [`crate::physical`].
pub const DEFAULT_ROWGROUP_ROWS: usize = 4096;

#[derive(Debug, Clone)]
enum Encoding {
    /// Distinct values plus per-row codes (bit-packed in the byte model).
    Dict { dict: Vec<Value>, codes: Vec<u32> },
    /// Run-length encoded `(value, run_length)` pairs.
    Rle { runs: Vec<(Value, u32)> },
}

/// One column of one row group, compressed.
#[derive(Debug, Clone)]
pub struct ColumnSegment {
    encoding: Encoding,
    rows: usize,
    min: Value,
    max: Value,
    compressed_bytes: u64,
}

impl ColumnSegment {
    /// Compresses a column slice, choosing the smaller encoding.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty (row groups are never empty).
    pub fn compress(values: &[Value]) -> Self {
        assert!(!values.is_empty(), "empty segment");
        // Build RLE runs.
        let mut runs: Vec<(Value, u32)> = Vec::new();
        for v in values {
            match runs.last_mut() {
                Some((rv, n)) if rv == v => *n += 1,
                _ => runs.push((v.clone(), 1)),
            }
        }
        // Build a dictionary.
        let mut dict: Vec<Value> = Vec::new();
        let mut dict_pos: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let fingerprint = format!("{v:?}");
            let code = *dict_pos.entry(fingerprint).or_insert_with(|| {
                dict.push(v.clone());
                dict.len() as u32 - 1
            });
            codes.push(code);
        }
        let value_bytes = |v: &Value| v.byte_size();
        let rle_bytes: u64 = runs.iter().map(|(v, _)| value_bytes(v) + 4).sum();
        let code_bits = (usize::BITS - (dict.len().max(2) - 1).leading_zeros()) as u64;
        let dict_bytes: u64 = dict.iter().map(value_bytes).sum::<u64>()
            + (values.len() as u64 * code_bits).div_ceil(8);

        let (min, max) =
            values
                .iter()
                .fold((values[0].clone(), values[0].clone()), |(mn, mx), v| {
                    let mn = if cmp_values(v, &mn) == Ordering::Less {
                        v.clone()
                    } else {
                        mn
                    };
                    let mx = if cmp_values(v, &mx) == Ordering::Greater {
                        v.clone()
                    } else {
                        mx
                    };
                    (mn, mx)
                });

        let rows = values.len();
        if rle_bytes <= dict_bytes {
            ColumnSegment {
                encoding: Encoding::Rle { runs },
                rows,
                min,
                max,
                compressed_bytes: rle_bytes,
            }
        } else {
            ColumnSegment {
                encoding: Encoding::Dict { dict, codes },
                rows,
                min,
                max,
                compressed_bytes: dict_bytes,
            }
        }
    }

    /// Number of rows in the segment.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Estimated compressed size in bytes (drives scan I/O volume).
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Segment minimum value.
    pub fn min(&self) -> &Value {
        &self.min
    }

    /// Segment maximum value.
    pub fn max(&self) -> &Value {
        &self.max
    }

    /// Decodes the segment back into values.
    pub fn decode(&self) -> Vec<Value> {
        match &self.encoding {
            Encoding::Dict { dict, codes } => {
                codes.iter().map(|c| dict[*c as usize].clone()).collect()
            }
            Encoding::Rle { runs } => {
                let mut out = Vec::with_capacity(self.rows);
                for (v, n) in runs {
                    out.extend(std::iter::repeat_with(|| v.clone()).take(*n as usize));
                }
                out
            }
        }
    }

    /// Could any row in this segment satisfy `lo <= v <= hi`? Drives
    /// segment elimination.
    pub fn overlaps(&self, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        if let Some(lo) = lo {
            if cmp_values(&self.max, lo) == Ordering::Less {
                return false;
            }
        }
        if let Some(hi) = hi {
            if cmp_values(&self.min, hi) == Ordering::Greater {
                return false;
            }
        }
        true
    }
}

/// One compressed row group: one segment per column.
#[derive(Debug, Clone)]
pub struct RowGroup {
    segments: Vec<ColumnSegment>,
    rows: usize,
}

impl RowGroup {
    /// Compresses `rows` (column-major conversion happens internally).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn compress(schema: &Schema, rows: &[Row]) -> Self {
        assert!(!rows.is_empty(), "empty row group");
        let segments = (0..schema.len())
            .map(|c| {
                let col: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
                ColumnSegment::compress(&col)
            })
            .collect();
        RowGroup {
            segments,
            rows: rows.len(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The segment for column `c`.
    pub fn segment(&self, c: usize) -> &ColumnSegment {
        &self.segments[c]
    }

    /// Total compressed bytes across all columns.
    pub fn compressed_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(ColumnSegment::compressed_bytes)
            .sum()
    }
}

/// A (non-clustered, updateable) columnstore over a table.
///
/// # Examples
///
/// ```
/// use dbsens_storage::columnstore::ColumnStore;
/// use dbsens_storage::schema::{ColType, Schema};
/// use dbsens_storage::value::Value;
///
/// let schema = Schema::new(&[("id", ColType::Int), ("qty", ColType::Int)]);
/// let rows: Vec<Vec<Value>> =
///     (0..100).map(|i| vec![Value::Int(i), Value::Int(i % 5)]).collect();
/// let mut cs = ColumnStore::build(schema, &rows, 32);
/// assert_eq!(cs.total_rows(), 100);
/// cs.insert(dbsens_storage::btree::RowId(1000), vec![Value::Int(1000), Value::Int(3)]);
/// assert_eq!(cs.delta_rows(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ColumnStore {
    schema: Schema,
    groups: Vec<RowGroup>,
    rowgroup_rows: usize,
    delta: Vec<(RowId, Row)>,
    deleted: std::collections::HashSet<RowId>,
    /// Row ids stored per compressed group, for delete lookups.
    group_rids: Vec<Vec<RowId>>,
}

impl ColumnStore {
    /// Builds a columnstore over initial rows. Row ids for the initial load
    /// are assigned sequentially from 0.
    pub fn build(schema: Schema, rows: &[Row], rowgroup_rows: usize) -> Self {
        let rowgroup_rows = rowgroup_rows.max(1);
        let mut cs = ColumnStore {
            schema,
            groups: Vec::new(),
            rowgroup_rows,
            delta: Vec::new(),
            deleted: std::collections::HashSet::new(),
            group_rids: Vec::new(),
        };
        for (start, chunk) in rows.chunks(rowgroup_rows).enumerate() {
            cs.groups.push(RowGroup::compress(&cs.schema, chunk));
            cs.group_rids.push(
                (0..chunk.len())
                    .map(|i| RowId((start * rowgroup_rows + i) as u64))
                    .collect(),
            );
        }
        cs
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Inserts a row into the delta store.
    pub fn insert(&mut self, rid: RowId, row: Row) {
        debug_assert!(self.schema.check_row(&row));
        self.delta.push((rid, row));
    }

    /// Deletes a row: delta-store rows are removed physically; compressed
    /// rows are marked in the deleted bitmap (the NCCI maintenance model).
    pub fn delete(&mut self, rid: RowId) {
        if let Some(pos) = self.delta.iter().position(|(r, _)| *r == rid) {
            self.delta.remove(pos);
        } else {
            self.deleted.insert(rid);
        }
    }

    /// Updates = delete + insert, per the NCCI maintenance model.
    pub fn update(&mut self, rid: RowId, new_row: Row) {
        self.delete(rid);
        self.insert(rid, new_row);
    }

    /// Rows currently in the (uncompressed) delta store.
    pub fn delta_rows(&self) -> usize {
        self.delta.len()
    }

    /// Live rows across compressed groups and delta.
    pub fn total_rows(&self) -> usize {
        let compressed: usize = self
            .group_rids
            .iter()
            .map(|rids| rids.iter().filter(|r| !self.deleted.contains(r)).count())
            .sum();
        compressed + self.delta_rows()
    }

    /// The compressed row groups.
    pub fn groups(&self) -> &[RowGroup] {
        &self.groups
    }

    /// Total compressed bytes (the scan footprint).
    pub fn compressed_bytes(&self) -> u64 {
        self.groups.iter().map(RowGroup::compressed_bytes).sum()
    }

    /// Scans column `c`, applying segment elimination against the optional
    /// `[lo, hi]` bound on that column, and including delta rows. Returns
    /// `(values, groups_scanned, groups_eliminated)`.
    pub fn scan_column(
        &self,
        c: usize,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> (Vec<Value>, usize, usize) {
        let mut out = Vec::new();
        let mut scanned = 0;
        let mut eliminated = 0;
        for (g, group) in self.groups.iter().enumerate() {
            if !group.segment(c).overlaps(lo, hi) {
                eliminated += 1;
                continue;
            }
            scanned += 1;
            let values = group.segment(c).decode();
            for (i, v) in values.into_iter().enumerate() {
                if !self.deleted.contains(&self.group_rids[g][i]) {
                    out.push(v);
                }
            }
        }
        for (_, row) in &self.delta {
            out.push(row[c].clone());
        }
        (out, scanned, eliminated)
    }

    /// Scans whole rows (all columns), applying segment elimination on
    /// column `elim_col` if bounds are given.
    pub fn scan_rows(&self, elim_col: Option<(usize, Option<&Value>, Option<&Value>)>) -> Vec<Row> {
        let mut out = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            if let Some((c, lo, hi)) = elim_col {
                if !group.segment(c).overlaps(lo, hi) {
                    continue;
                }
            }
            // Rows are assembled by *moving* values out of the decoded
            // columns (one decode clone per value, not two) — string-heavy
            // schemas would otherwise double their allocation traffic here.
            let mut cols: Vec<std::vec::IntoIter<Value>> = (0..self.schema.len())
                .map(|c| group.segment(c).decode().into_iter())
                .collect();
            for i in 0..group.rows() {
                let row: Row = cols
                    .iter_mut()
                    .map(|col| col.next().expect("segment rows match group rows"))
                    .collect();
                if !self.deleted.contains(&self.group_rids[g][i]) {
                    out.push(row);
                }
            }
        }
        for (_, row) in &self.delta {
            out.push(row.clone());
        }
        out
    }

    /// Runs the tuple mover: compresses full delta-store chunks into new
    /// row groups. Returns the number of rows compressed.
    pub fn move_tuples(&mut self) -> usize {
        let live: Vec<(RowId, Row)> = self.delta.drain(..).collect();
        let moved = live.len();
        for chunk in live.chunks(self.rowgroup_rows) {
            let rows: Vec<Row> = chunk.iter().map(|(_, r)| r.clone()).collect();
            self.groups.push(RowGroup::compress(&self.schema, &rows));
            self.group_rids
                .push(chunk.iter().map(|(rid, _)| *rid).collect());
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColType;

    fn schema() -> Schema {
        Schema::new(&[
            ("id", ColType::Int),
            ("status", ColType::Str(1)),
            ("qty", ColType::Int),
        ])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(if i % 2 == 0 { "A".into() } else { "B".into() }),
                    Value::Int(i % 10),
                ]
            })
            .collect()
    }

    #[test]
    fn segment_roundtrip_dict_and_rle() {
        // Low-cardinality column favours one of the encodings; either way
        // decode must be exact.
        let vals: Vec<Value> = (0..500).map(|i| Value::Int(i % 3)).collect();
        let seg = ColumnSegment::compress(&vals);
        assert_eq!(seg.decode(), vals);
        assert_eq!(seg.min(), &Value::Int(0));
        assert_eq!(seg.max(), &Value::Int(2));
        // Compression beats the raw 8 bytes/value by a wide margin.
        assert!(
            seg.compressed_bytes() < 500 * 8 / 4,
            "bytes={}",
            seg.compressed_bytes()
        );
    }

    #[test]
    fn rle_wins_on_sorted_runs() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int(i / 100)).collect();
        let seg = ColumnSegment::compress(&vals);
        assert!(seg.compressed_bytes() <= 10 * 12);
        assert_eq!(seg.decode(), vals);
    }

    #[test]
    fn segment_elimination_bounds() {
        let vals: Vec<Value> = (100..200).map(Value::Int).collect();
        let seg = ColumnSegment::compress(&vals);
        assert!(!seg.overlaps(Some(&Value::Int(500)), None));
        assert!(!seg.overlaps(None, Some(&Value::Int(50))));
        assert!(seg.overlaps(Some(&Value::Int(150)), Some(&Value::Int(160))));
        assert!(seg.overlaps(None, None));
    }

    #[test]
    fn build_and_scan_column() {
        let cs = ColumnStore::build(schema(), &rows(100), 32);
        assert_eq!(cs.groups().len(), 4); // 32+32+32+4
        let (vals, scanned, eliminated) = cs.scan_column(0, None, None);
        assert_eq!(vals.len(), 100);
        assert_eq!(scanned, 4);
        assert_eq!(eliminated, 0);
    }

    #[test]
    fn scan_with_elimination_skips_groups() {
        // id column is sorted, so range predicates eliminate groups.
        let cs = ColumnStore::build(schema(), &rows(100), 25);
        let lo = Value::Int(80);
        let (vals, scanned, eliminated) = cs.scan_column(0, Some(&lo), None);
        // Elimination is per-group: the surviving group contributes all of
        // its 25 values (value-level filtering happens in the operator).
        assert_eq!(vals.len(), 25);
        assert_eq!(scanned, 1);
        assert_eq!(eliminated, 3);
    }

    #[test]
    fn delta_store_and_deletes() {
        let mut cs = ColumnStore::build(schema(), &rows(50), 25);
        cs.insert(
            RowId(1000),
            vec![Value::Int(1000), Value::Str("C".into()), Value::Int(5)],
        );
        cs.insert(
            RowId(1001),
            vec![Value::Int(1001), Value::Str("C".into()), Value::Int(5)],
        );
        assert_eq!(cs.delta_rows(), 2);
        assert_eq!(cs.total_rows(), 52);
        // Delete one compressed row and one delta row.
        cs.delete(RowId(10));
        cs.delete(RowId(1001));
        assert_eq!(cs.total_rows(), 50);
        let (vals, _, _) = cs.scan_column(0, None, None);
        assert!(!vals.contains(&Value::Int(10)));
        assert!(vals.contains(&Value::Int(1000)));
        assert!(!vals.contains(&Value::Int(1001)));
    }

    #[test]
    fn update_is_delete_plus_insert() {
        let mut cs = ColumnStore::build(schema(), &rows(10), 5);
        cs.update(
            RowId(3),
            vec![Value::Int(333), Value::Str("Z".into()), Value::Int(9)],
        );
        let (vals, _, _) = cs.scan_column(0, None, None);
        assert!(!vals.contains(&Value::Int(3)));
        assert!(vals.contains(&Value::Int(333)));
        assert_eq!(cs.total_rows(), 10);
    }

    #[test]
    fn tuple_mover_compresses_delta() {
        let mut cs = ColumnStore::build(schema(), &rows(10), 8);
        for i in 100..120 {
            cs.insert(
                RowId(i),
                vec![Value::Int(i as i64), Value::Str("D".into()), Value::Int(1)],
            );
        }
        let groups_before = cs.groups().len();
        let moved = cs.move_tuples();
        assert_eq!(moved, 20);
        assert_eq!(cs.delta_rows(), 0);
        assert!(cs.groups().len() > groups_before);
        assert_eq!(cs.total_rows(), 30);
    }

    #[test]
    fn scan_rows_reconstructs_rows() {
        let cs = ColumnStore::build(schema(), &rows(30), 10);
        let all = cs.scan_rows(None);
        assert_eq!(all.len(), 30);
        assert_eq!(all[7][0].as_int(), 7);
        assert_eq!(all[7][2].as_int(), 7);
    }
}
