//! Physical layout model: paper-scale footprints for scaled-down logical
//! structures.
//!
//! The logical layer (heaps, B-trees, columnstores) holds real data at
//! reduced cardinality. This module computes the *modeled* physical shape of
//! each structure at full paper scale — pages, B-tree levels, compressed
//! segment bytes — inside one global page address space and one cache
//! [`Region`] namespace. Engine operators combine logical results with these
//! layouts to emit buffer-pool page runs and LLC access patterns whose
//! footprints match the paper's databases (Table 2), which is what makes
//! "fits in memory vs not" land in the right place.

use crate::bufferpool::PAGE_BYTES;
use crate::columnstore::ColumnStore;
use dbsens_hwsim::mem::{MemProfile, Region};

/// Fill factor of data pages.
const DATA_FILL: f64 = 0.95;
/// Fill factor of index pages.
const INDEX_FILL: f64 = 0.70;
/// Per-entry overhead in index pages (row locator + slot).
const INDEX_ENTRY_OVERHEAD: u64 = 9;

/// Allocator for the global modeled page space and cache region namespace.
#[derive(Debug, Clone, Default)]
pub struct ModelSpace {
    next_page: u64,
    next_region: u64,
}

impl ModelSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        ModelSpace::default()
    }

    /// Allocates a contiguous run of modeled pages; returns the start page.
    pub fn alloc_pages(&mut self, pages: u64) -> u64 {
        let start = self.next_page;
        self.next_page += pages.max(1);
        start
    }

    /// Allocates a fresh cache region.
    pub fn alloc_region(&mut self) -> Region {
        self.next_region += 1;
        Region::new(self.next_region)
    }

    /// Total modeled pages allocated.
    pub fn allocated_pages(&self) -> u64 {
        self.next_page
    }
}

/// Paper-scale layout of a row-store table.
///
/// # Examples
///
/// ```
/// use dbsens_storage::physical::{ModelSpace, TableLayout};
///
/// let mut space = ModelSpace::new();
/// let layout = TableLayout::new(&mut space, 1_000_000, 100);
/// assert!(layout.pages() > 10_000);
/// assert!(layout.data_bytes() > 90 * 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct TableLayout {
    modeled_rows: u64,
    rows_per_page: u64,
    start_page: u64,
    pages: u64,
    region: Region,
}

impl TableLayout {
    /// Lays out a table of `modeled_rows` rows of `row_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `row_bytes` is zero or exceeds a page.
    pub fn new(space: &mut ModelSpace, modeled_rows: u64, row_bytes: u64) -> Self {
        assert!(
            row_bytes > 0 && row_bytes <= PAGE_BYTES,
            "bad row size {row_bytes}"
        );
        let rows_per_page = ((PAGE_BYTES as f64 * DATA_FILL / row_bytes as f64) as u64).max(1);
        let pages = modeled_rows.div_ceil(rows_per_page).max(1);
        TableLayout {
            modeled_rows,
            rows_per_page,
            start_page: space.alloc_pages(pages),
            pages,
            region: space.alloc_region(),
        }
    }

    /// Modeled row count at paper scale.
    pub fn modeled_rows(&self) -> u64 {
        self.modeled_rows
    }

    /// Modeled rows per page.
    pub fn rows_per_page(&self) -> u64 {
        self.rows_per_page
    }

    /// Global page holding modeled row `row` (0-based).
    pub fn page_of_row(&self, row: u64) -> u64 {
        self.start_page + (row / self.rows_per_page).min(self.pages - 1)
    }

    /// Modeled page count.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// First global page id.
    pub fn start_page(&self) -> u64 {
        self.start_page
    }

    /// Modeled on-disk bytes.
    pub fn data_bytes(&self) -> u64 {
        self.pages * PAGE_BYTES
    }

    /// Cache region of the table's pages.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Global page holding the row at position `fraction` (in `[0, 1)`) of
    /// the table.
    pub fn page_of_fraction(&self, fraction: f64) -> u64 {
        let f = fraction.clamp(0.0, 1.0 - 1e-12);
        self.start_page + (f * self.pages as f64) as u64
    }

    /// The page run of a full scan.
    pub fn scan_run(&self) -> (u64, u64) {
        (self.start_page, self.pages)
    }

    /// Adds the LLC behaviour of touching `rows` random rows to a profile.
    pub fn random_rows_mem(&self, profile: &mut MemProfile, rows: u64) {
        profile.random(self.region, self.data_bytes(), rows);
    }

    /// Adds the LLC behaviour of scanning a `fraction` of the table.
    pub fn scan_mem(&self, profile: &mut MemProfile, fraction: f64) {
        let bytes = (self.data_bytes() as f64 * fraction.clamp(0.0, 1.0)) as u64;
        // Tables that fit comfortably in the LLC get reuse across scans;
        // model their scans as random touches over the footprint instead of
        // a cold stream.
        if self.data_bytes() <= 64 << 20 {
            profile.random(self.region, self.data_bytes(), bytes / 64);
        } else {
            profile.stream(self.region, bytes);
        }
    }
}

/// Paper-scale layout of a B-tree index.
#[derive(Debug, Clone)]
pub struct IndexLayout {
    modeled_entries: u64,
    fanout: u64,
    levels: u32,
    leaf_pages: u64,
    internal_pages: u64,
    start_page: u64,
    leaf_region: Region,
    internal_region: Region,
}

impl IndexLayout {
    /// Lays out an index of `modeled_entries` entries with `key_bytes`
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics if `key_bytes` is zero.
    pub fn new(space: &mut ModelSpace, modeled_entries: u64, key_bytes: u64) -> Self {
        assert!(key_bytes > 0, "zero-byte keys");
        let entry_bytes = key_bytes + INDEX_ENTRY_OVERHEAD;
        let fanout = ((PAGE_BYTES as f64 * INDEX_FILL / entry_bytes as f64) as u64).max(2);
        let leaf_pages = modeled_entries.div_ceil(fanout).max(1);
        let mut internal_pages = 0;
        let mut level_nodes = leaf_pages;
        let mut levels = 1;
        while level_nodes > 1 {
            level_nodes = level_nodes.div_ceil(fanout);
            internal_pages += level_nodes;
            levels += 1;
        }
        IndexLayout {
            modeled_entries,
            fanout,
            levels,
            leaf_pages,
            internal_pages,
            start_page: space.alloc_pages(leaf_pages + internal_pages),
            leaf_region: space.alloc_region(),
            internal_region: space.alloc_region(),
        }
    }

    /// B-tree depth at paper scale (1 = lone leaf).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Modeled index bytes (leaf + internal pages), the Table 2 "Index"
    /// column.
    pub fn index_bytes(&self) -> u64 {
        (self.leaf_pages + self.internal_pages) * PAGE_BYTES
    }

    /// Modeled entry count.
    pub fn modeled_entries(&self) -> u64 {
        self.modeled_entries
    }

    /// Page fan-out.
    pub fn fanout(&self) -> u64 {
        self.fanout
    }

    /// Global page id of the leaf holding key position `fraction`.
    pub fn leaf_page_of_fraction(&self, fraction: f64) -> u64 {
        let f = fraction.clamp(0.0, 1.0 - 1e-12);
        self.start_page + (f * self.leaf_pages as f64) as u64
    }

    /// The page run of a range scan over `fraction` of the leaf level
    /// starting at key position `start_fraction`.
    pub fn leaf_scan_run(&self, start_fraction: f64, fraction: f64) -> (u64, u64) {
        let start = self.leaf_page_of_fraction(start_fraction);
        let pages = ((self.leaf_pages as f64 * fraction).ceil() as u64)
            .max(1)
            .min(self.start_page + self.leaf_pages - start);
        (start, pages)
    }

    /// Adds the LLC behaviour of `probes` root-to-leaf traversals: the
    /// upper levels are a small, heavily reused footprint; the leaf level is
    /// a random touch over the full leaf footprint.
    pub fn probe_mem(&self, profile: &mut MemProfile, probes: u64) {
        if probes == 0 {
            return;
        }
        let internal_bytes = (self.internal_pages * PAGE_BYTES).max(PAGE_BYTES);
        let upper_touches = probes * (self.levels.saturating_sub(1) as u64).max(1);
        profile.random(self.internal_region, internal_bytes, upper_touches);
        profile.random(self.leaf_region, self.leaf_pages * PAGE_BYTES, probes);
    }
}

/// Paper-scale layout of a columnstore.
#[derive(Debug, Clone)]
pub struct ColumnstoreLayout {
    col_pages: Vec<u64>,
    col_start: Vec<u64>,
    total_pages: u64,
    region: Region,
}

impl ColumnstoreLayout {
    /// Derives the paper-scale layout from a logical columnstore holding
    /// `1 / row_scale` of the modeled rows: compressed bytes scale
    /// linearly with row count (dictionary/RLE sizes are dominated by the
    /// per-row code/run streams).
    pub fn from_logical(space: &mut ModelSpace, cs: &ColumnStore, row_scale: f64) -> Self {
        let cols = cs.schema().len();
        let mut col_bytes = vec![0u64; cols];
        for group in cs.groups() {
            for (c, bytes) in col_bytes.iter_mut().enumerate() {
                *bytes += group.segment(c).compressed_bytes();
            }
        }
        let mut col_pages = Vec::with_capacity(cols);
        let mut col_start = Vec::with_capacity(cols);
        let mut total = 0;
        for bytes in &col_bytes {
            let modeled = (*bytes as f64 * row_scale) as u64;
            let pages = modeled.div_ceil(PAGE_BYTES).max(1);
            col_pages.push(pages);
            total += pages;
        }
        let start = space.alloc_pages(total);
        let mut cursor = start;
        for pages in &col_pages {
            col_start.push(cursor);
            cursor += pages;
        }
        ColumnstoreLayout {
            col_pages,
            col_start,
            total_pages: total,
            region: space.alloc_region(),
        }
    }

    /// Modeled compressed bytes across all columns.
    pub fn data_bytes(&self) -> u64 {
        self.total_pages * PAGE_BYTES
    }

    /// The page run of scanning column `c` (optionally only a fraction of
    /// its segments, after segment elimination).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn column_scan_run(&self, c: usize, fraction: f64) -> (u64, u64) {
        let pages = ((self.col_pages[c] as f64 * fraction.clamp(0.0, 1.0)).ceil() as u64).max(1);
        (self.col_start[c], pages.min(self.col_pages[c]))
    }

    /// Adds the LLC behaviour of scanning column `c` over `fraction` of its
    /// segments: decompression streams the compressed bytes through the
    /// cache.
    pub fn column_scan_mem(&self, profile: &mut MemProfile, c: usize, fraction: f64) {
        let bytes =
            (self.col_pages[c] as f64 * PAGE_BYTES as f64 * fraction.clamp(0.0, 1.0)) as u64;
        profile.stream(self.region, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnstore::ColumnStore;
    use crate::schema::{ColType, Schema};
    use crate::value::Value;

    #[test]
    fn model_space_is_disjoint() {
        let mut s = ModelSpace::new();
        let a = TableLayout::new(&mut s, 1000, 100);
        let b = TableLayout::new(&mut s, 1000, 100);
        assert!(a.start_page() + a.pages() <= b.start_page());
        assert_ne!(a.region(), b.region());
    }

    #[test]
    fn table_layout_sizes() {
        let mut s = ModelSpace::new();
        // 100-byte rows: 77 rows/page at 95% fill.
        let t = TableLayout::new(&mut s, 77_000, 100);
        assert_eq!(t.pages(), 1000);
        assert_eq!(t.data_bytes(), 1000 * PAGE_BYTES);
        assert_eq!(t.page_of_fraction(0.0), t.start_page());
        assert_eq!(t.page_of_fraction(0.5), t.start_page() + 500);
        assert!(t.page_of_fraction(1.0) < t.start_page() + 1000);
    }

    #[test]
    fn index_layout_levels_grow_with_entries() {
        let mut s = ModelSpace::new();
        let small = IndexLayout::new(&mut s, 100, 8);
        let big = IndexLayout::new(&mut s, 100_000_000, 8);
        assert_eq!(small.levels(), 1);
        assert!(big.levels() >= 3, "levels={}", big.levels());
        assert!(big.index_bytes() > small.index_bytes() * 1000);
    }

    #[test]
    fn index_probe_mem_includes_hot_and_leaf() {
        let mut s = ModelSpace::new();
        let idx = IndexLayout::new(&mut s, 10_000_000, 16);
        let mut p = MemProfile::new();
        idx.probe_mem(&mut p, 100);
        assert_eq!(p.patterns().len(), 2);
    }

    #[test]
    fn leaf_scan_run_clamps_to_index() {
        let mut s = ModelSpace::new();
        let idx = IndexLayout::new(&mut s, 1_000_000, 8);
        let (start, pages) = idx.leaf_scan_run(0.9, 0.5);
        assert!(pages >= 1);
        // Must not run past the leaf level.
        assert!(start + pages <= idx.leaf_page_of_fraction(0.999_999) + 2);
    }

    #[test]
    fn columnstore_layout_scales_with_row_scale() {
        let schema = Schema::new(&[("a", ColType::Int), ("b", ColType::Int)]);
        let rows: Vec<Vec<Value>> = (0..1000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
            .collect();
        let cs = ColumnStore::build(schema, &rows, 256);
        let mut s = ModelSpace::new();
        let small = ColumnstoreLayout::from_logical(&mut s, &cs, 1.0);
        let big = ColumnstoreLayout::from_logical(&mut s, &cs, 1000.0);
        assert!(big.data_bytes() > small.data_bytes() * 100);
        let (_, pages_full) = big.column_scan_run(0, 1.0);
        let (_, pages_half) = big.column_scan_run(0, 0.5);
        assert!(pages_half <= pages_full / 2 + 1);
    }
}
