//! A from-scratch B+ tree index.
//!
//! This is the engine's B-tree substrate: arena-allocated nodes, leaf
//! chaining for range scans, split-on-insert and borrow/merge-on-delete
//! rebalancing. Entries are `(Key, RowId)` pairs, so duplicate keys are
//! naturally supported (the pair is unique).
//!
//! The logical tree holds scaled-down data; the physical shape of the
//! paper-scale index (levels, pages) is computed separately by
//! [`crate::physical`].

use crate::value::Key;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a heap row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rid{}", self.0)
    }
}

type Entry = (Key, RowId);

/// Maximum entries per leaf and children per internal node.
const MAX: usize = 32;
/// Minimum entries per non-root leaf and children per non-root internal.
const MIN: usize = MAX / 2;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<Entry>,
        next: Option<usize>,
    },
    Internal {
        seps: Vec<Entry>,
        children: Vec<usize>,
    },
    /// Arena slot on the free list.
    Free,
}

/// A B+ tree index from composite [`Key`]s to [`RowId`]s.
///
/// # Examples
///
/// ```
/// use dbsens_storage::btree::{BTree, RowId};
/// use dbsens_storage::value::Key;
///
/// let mut index = BTree::new();
/// index.insert(Key::int(10), RowId(1));
/// index.insert(Key::int(20), RowId(2));
/// assert_eq!(index.get(&Key::int(10)).collect::<Vec<_>>(), vec![RowId(1)]);
/// assert_eq!(index.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BTree {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    len: usize,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// Creates an empty index.
    pub fn new() -> Self {
        BTree {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
                next: None,
            }],
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    idx = children[0];
                    h += 1;
                }
                Node::Free => unreachable!("free node reachable from root"),
            }
        }
    }

    /// Number of live arena nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn dealloc(&mut self, idx: usize) {
        self.nodes[idx] = Node::Free;
        self.free.push(idx);
    }

    /// Inserts an entry. Returns `false` if the exact `(key, rid)` pair was
    /// already present (and leaves the tree unchanged).
    pub fn insert(&mut self, key: Key, rid: RowId) -> bool {
        let entry = (key, rid);
        match self.insert_rec(self.root, entry) {
            InsertResult::Duplicate => false,
            InsertResult::Done => {
                self.len += 1;
                true
            }
            InsertResult::Split(sep, new_idx) => {
                self.len += 1;
                let old_root = self.root;
                self.root = self.alloc(Node::Internal {
                    seps: vec![sep],
                    children: vec![old_root, new_idx],
                });
                true
            }
        }
    }

    /// Removes an entry. Returns `false` if the pair was not present.
    pub fn remove(&mut self, key: &Key, rid: RowId) -> bool {
        let entry = (key.clone(), rid);
        if !self.remove_rec(self.root, &entry) {
            return false;
        }
        self.len -= 1;
        // Collapse a root that shrank to a single child.
        if let Node::Internal { children, .. } = &self.nodes[self.root] {
            if children.len() == 1 {
                let child = children[0];
                let old = self.root;
                self.root = child;
                self.dealloc(old);
            }
        }
        true
    }

    /// All row ids with exactly this key, in row-id order.
    pub fn get<'a>(&'a self, key: &'a Key) -> impl Iterator<Item = RowId> + 'a {
        self.seek(key)
            .take_while(move |(k, _)| *k == key)
            .map(|(_, rid)| rid)
    }

    /// Returns `true` if any entry has this key.
    pub fn contains_key(&self, key: &Key) -> bool {
        self.get(key).next().is_some()
    }

    /// Iterates entries with key `>= key`, in key order.
    pub fn seek<'a>(&'a self, key: &'a Key) -> Cursor<'a> {
        // Entries compare as `(Key, RowId)` pairs; descending against the
        // implied probe `(key, RowId(0))` with borrowed comparisons keeps
        // point lookups allocation-free (no probe key is materialized).
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Internal { seps, children } => {
                    let ci = seps.partition_point(|s| match s.0.cmp(key) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => s.1 == RowId(0),
                        std::cmp::Ordering::Greater => false,
                    });
                    idx = children[ci];
                }
                Node::Leaf { entries, .. } => {
                    let pos = entries.partition_point(|e| e.0.cmp(key).is_lt());
                    return Cursor {
                        tree: self,
                        leaf: Some(idx),
                        pos,
                    };
                }
                Node::Free => unreachable!("free node reachable from root"),
            }
        }
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> Cursor<'_> {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Internal { children, .. } => idx = children[0],
                Node::Leaf { .. } => {
                    return Cursor {
                        tree: self,
                        leaf: Some(idx),
                        pos: 0,
                    }
                }
                Node::Free => unreachable!("free node reachable from root"),
            }
        }
    }

    /// Iterates entries with `lo <= key < hi`.
    pub fn range<'a>(
        &'a self,
        lo: &'a Key,
        hi: &'a Key,
    ) -> impl Iterator<Item = (&'a Key, RowId)> + 'a {
        self.seek(lo).take_while(move |(k, _)| *k < hi)
    }

    fn insert_rec(&mut self, idx: usize, entry: Entry) -> InsertResult {
        match &mut self.nodes[idx] {
            Node::Leaf { entries, next } => {
                let pos = entries.partition_point(|e| *e < entry);
                if entries.get(pos).is_some_and(|e| *e == entry) {
                    return InsertResult::Duplicate;
                }
                entries.insert(pos, entry);
                if entries.len() <= MAX {
                    return InsertResult::Done;
                }
                let right_entries = entries.split_off(entries.len() / 2);
                let sep = right_entries[0].clone();
                let old_next = *next;
                let new_idx = self.alloc(Node::Leaf {
                    entries: right_entries,
                    next: old_next,
                });
                if let Node::Leaf { next, .. } = &mut self.nodes[idx] {
                    *next = Some(new_idx);
                }
                InsertResult::Split(sep, new_idx)
            }
            Node::Internal { seps, children } => {
                let ci = seps.partition_point(|s| *s <= entry);
                let child = children[ci];
                match self.insert_rec(child, entry) {
                    InsertResult::Split(sep, new_child) => {
                        let Node::Internal { seps, children } = &mut self.nodes[idx] else {
                            unreachable!()
                        };
                        seps.insert(ci, sep);
                        children.insert(ci + 1, new_child);
                        if children.len() <= MAX {
                            return InsertResult::Done;
                        }
                        // Split this internal node: the middle separator
                        // moves up.
                        let mid = seps.len() / 2;
                        let up = seps[mid].clone();
                        let right_seps = seps.split_off(mid + 1);
                        seps.pop(); // drop the promoted separator
                        let right_children = children.split_off(mid + 1);
                        let new_idx = self.alloc(Node::Internal {
                            seps: right_seps,
                            children: right_children,
                        });
                        InsertResult::Split(up, new_idx)
                    }
                    other => other,
                }
            }
            Node::Free => unreachable!("descended into free node"),
        }
    }

    fn remove_rec(&mut self, idx: usize, entry: &Entry) -> bool {
        match &mut self.nodes[idx] {
            Node::Leaf { entries, .. } => {
                let pos = entries.partition_point(|e| e < entry);
                if entries.get(pos).is_some_and(|e| e == entry) {
                    entries.remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Internal { seps, children } => {
                let ci = seps.partition_point(|s| s <= entry);
                let child = children[ci];
                if !self.remove_rec(child, entry) {
                    return false;
                }
                if self.node_size(child) < MIN {
                    self.fix_underflow(idx, ci);
                }
                true
            }
            Node::Free => unreachable!("descended into free node"),
        }
    }

    fn node_size(&self, idx: usize) -> usize {
        match &self.nodes[idx] {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { children, .. } => children.len(),
            Node::Free => unreachable!("sized a free node"),
        }
    }

    /// Restores the minimum-occupancy invariant for `parent`'s `ci`-th
    /// child by borrowing from a sibling or merging with one.
    fn fix_underflow(&mut self, parent: usize, ci: usize) {
        let (left_sib, right_sib) = {
            let Node::Internal { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            (
                if ci > 0 { Some(children[ci - 1]) } else { None },
                if ci + 1 < children.len() {
                    Some(children[ci + 1])
                } else {
                    None
                },
            )
        };
        if let Some(l) = left_sib {
            if self.node_size(l) > MIN {
                self.borrow_from_left(parent, ci);
                return;
            }
        }
        if let Some(r) = right_sib {
            if self.node_size(r) > MIN {
                self.borrow_from_right(parent, ci);
                return;
            }
        }
        // Merge with a sibling: prefer merging into the left one.
        if left_sib.is_some() {
            self.merge_children(parent, ci - 1);
        } else if right_sib.is_some() {
            self.merge_children(parent, ci);
        }
    }

    fn two_nodes(&mut self, a: usize, b: usize) -> (&mut Node, &mut Node) {
        assert_ne!(a, b);
        if a < b {
            let (lo, hi) = self.nodes.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.nodes.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }

    fn borrow_from_left(&mut self, parent: usize, ci: usize) {
        let (left, child) = {
            let Node::Internal { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            (children[ci - 1], children[ci])
        };
        // For internal children the parent separator rotates down into the
        // child and the left sibling's last separator rotates up.
        let down = {
            let Node::Internal { seps, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            seps[ci - 1].clone()
        };
        let new_sep = {
            let (l, c) = self.two_nodes(left, child);
            match (l, c) {
                (Node::Leaf { entries: le, .. }, Node::Leaf { entries: ce, .. }) => {
                    let moved = le.pop().expect("left sibling above MIN");
                    ce.insert(0, moved.clone());
                    moved
                }
                (
                    Node::Internal {
                        seps: ls,
                        children: lc,
                    },
                    Node::Internal {
                        seps: cs,
                        children: cc,
                    },
                ) => {
                    let moved_child = lc.pop().expect("left sibling above MIN");
                    let up = ls.pop().expect("internal node has seps");
                    cc.insert(0, moved_child);
                    cs.insert(0, down);
                    up
                }
                _ => unreachable!("siblings at same level share node kind"),
            }
        };
        let Node::Internal { seps, .. } = &mut self.nodes[parent] else {
            unreachable!()
        };
        seps[ci - 1] = new_sep;
    }

    fn borrow_from_right(&mut self, parent: usize, ci: usize) {
        let (child, right) = {
            let Node::Internal { children, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            (children[ci], children[ci + 1])
        };
        let down = {
            let Node::Internal { seps, .. } = &self.nodes[parent] else {
                unreachable!()
            };
            seps[ci].clone()
        };
        let new_sep = {
            let (c, r) = self.two_nodes(child, right);
            match (c, r) {
                (Node::Leaf { entries: ce, .. }, Node::Leaf { entries: re, .. }) => {
                    let moved = re.remove(0);
                    ce.push(moved);
                    re[0].clone()
                }
                (
                    Node::Internal {
                        seps: cs,
                        children: cc,
                    },
                    Node::Internal {
                        seps: rs,
                        children: rc,
                    },
                ) => {
                    // Parent separator rotates down; right sibling's first
                    // separator rotates up.
                    let moved_child = rc.remove(0);
                    let up = rs.remove(0);
                    cc.push(moved_child);
                    cs.push(down);
                    up
                }
                _ => unreachable!("siblings at same level share node kind"),
            }
        };
        let Node::Internal { seps, .. } = &mut self.nodes[parent] else {
            unreachable!()
        };
        seps[ci] = new_sep;
    }

    /// Merges `parent`'s children `ci` and `ci + 1` into the left one.
    fn merge_children(&mut self, parent: usize, ci: usize) {
        let (left, right, sep) = {
            let Node::Internal { seps, children } = &mut self.nodes[parent] else {
                unreachable!()
            };
            let left = children[ci];
            let right = children.remove(ci + 1);
            let sep = seps.remove(ci);
            (left, right, sep)
        };
        let right_node = std::mem::replace(&mut self.nodes[right], Node::Free);
        self.free.push(right);
        match (&mut self.nodes[left], right_node) {
            (
                Node::Leaf {
                    entries: le,
                    next: ln,
                },
                Node::Leaf {
                    entries: re,
                    next: rn,
                },
            ) => {
                le.extend(re);
                *ln = rn;
            }
            (
                Node::Internal {
                    seps: ls,
                    children: lc,
                },
                Node::Internal {
                    seps: rs,
                    children: rc,
                },
            ) => {
                ls.push(sep);
                ls.extend(rs);
                lc.extend(rc);
            }
            _ => unreachable!("merged siblings share node kind"),
        }
    }

    /// Verifies structural invariants; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        let mut count = 0;
        self.check_node(self.root, true, None, None, &mut count, self.height());
        assert_eq!(count, self.len, "entry count mismatch");
    }

    fn check_node(
        &self,
        idx: usize,
        is_root: bool,
        lo: Option<&Entry>,
        hi: Option<&Entry>,
        count: &mut usize,
        expected_depth: usize,
    ) {
        match &self.nodes[idx] {
            Node::Leaf { entries, .. } => {
                assert_eq!(expected_depth, 1, "leaves at unequal depth");
                if !is_root {
                    assert!(entries.len() >= MIN, "leaf underflow: {}", entries.len());
                }
                assert!(entries.len() <= MAX);
                assert!(entries.windows(2).all(|w| w[0] < w[1]), "unsorted leaf");
                if let Some(lo) = lo {
                    assert!(entries.iter().all(|e| e >= lo));
                }
                if let Some(hi) = hi {
                    assert!(entries.iter().all(|e| e < hi));
                }
                *count += entries.len();
            }
            Node::Internal { seps, children } => {
                assert_eq!(children.len(), seps.len() + 1);
                if !is_root {
                    assert!(children.len() >= MIN, "internal underflow");
                }
                assert!(children.len() <= MAX);
                assert!(seps.windows(2).all(|w| w[0] < w[1]), "unsorted separators");
                for (i, &child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&seps[i - 1]) };
                    let child_hi = if i == seps.len() { hi } else { Some(&seps[i]) };
                    self.check_node(child, false, child_lo, child_hi, count, expected_depth - 1);
                }
            }
            Node::Free => panic!("free node reachable from root"),
        }
    }
}

enum InsertResult {
    Done,
    Duplicate,
    Split(Entry, usize),
}

/// Forward iterator over B+ tree entries.
#[derive(Debug)]
pub struct Cursor<'a> {
    tree: &'a BTree,
    leaf: Option<usize>,
    pos: usize,
}

impl<'a> Iterator for Cursor<'a> {
    type Item = (&'a Key, RowId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            let Node::Leaf { entries, next } = &self.tree.nodes[leaf] else {
                unreachable!("cursor on non-leaf");
            };
            if self.pos < entries.len() {
                let (k, rid) = &entries[self.pos];
                self.pos += 1;
                return Some((k, *rid));
            }
            self.leaf = *next;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: i64) -> BTree {
        let mut t = BTree::new();
        // Insert in a scrambled order to exercise splits in both halves.
        for i in 0..n {
            let k = (i * 7919) % n;
            assert!(t.insert(Key::int(k), RowId(k as u64)));
        }
        t
    }

    #[test]
    fn insert_get_roundtrip() {
        let t = build(1000);
        assert_eq!(t.len(), 1000);
        t.check_invariants();
        for k in [0, 1, 499, 998, 999] {
            assert_eq!(
                t.get(&Key::int(k)).collect::<Vec<_>>(),
                vec![RowId(k as u64)]
            );
        }
        assert!(t.get(&Key::int(1000)).next().is_none());
        assert!(t.height() > 1);
    }

    #[test]
    fn duplicate_pair_rejected_but_duplicate_key_ok() {
        let mut t = BTree::new();
        assert!(t.insert(Key::int(1), RowId(10)));
        assert!(!t.insert(Key::int(1), RowId(10)));
        assert!(t.insert(Key::int(1), RowId(11)));
        assert_eq!(
            t.get(&Key::int(1)).collect::<Vec<_>>(),
            vec![RowId(10), RowId(11)]
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let t = build(500);
        let keys: Vec<i64> = t.iter().map(|(k, _)| k.values()[0].as_int()).collect();
        assert_eq!(keys.len(), 500);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys[0], 0);
        assert_eq!(keys[499], 499);
    }

    #[test]
    fn seek_and_range() {
        let t = build(100);
        let from_50: Vec<i64> = t
            .seek(&Key::int(50))
            .map(|(k, _)| k.values()[0].as_int())
            .collect();
        assert_eq!(from_50.len(), 50);
        assert_eq!(from_50[0], 50);
        let lo = Key::int(10);
        let hi = Key::int(20);
        let r: Vec<i64> = t
            .range(&lo, &hi)
            .map(|(k, _)| k.values()[0].as_int())
            .collect();
        assert_eq!(r, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn remove_all_in_random_order() {
        let n = 800;
        let mut t = build(n);
        for i in 0..n {
            let k = (i * 7919 + 13) % n;
            assert!(t.remove(&Key::int(k), RowId(k as u64)), "missing {k}");
            if i % 97 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        t.check_invariants();
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t = build(10);
        assert!(!t.remove(&Key::int(100), RowId(100)));
        assert!(!t.remove(&Key::int(1), RowId(999)));
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn interleaved_insert_remove_keeps_invariants() {
        let mut t = BTree::new();
        let mut live = std::collections::BTreeSet::new();
        for step in 0..5000i64 {
            let k = (step * 31) % 400;
            if live.contains(&k) {
                assert!(t.remove(&Key::int(k), RowId(k as u64)));
                live.remove(&k);
            } else {
                assert!(t.insert(Key::int(k), RowId(k as u64)));
                live.insert(k);
            }
            if step % 500 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), live.len());
        let keys: Vec<i64> = t.iter().map(|(k, _)| k.values()[0].as_int()).collect();
        assert_eq!(keys, live.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn node_count_shrinks_after_mass_delete() {
        let mut t = build(2000);
        let full_nodes = t.node_count();
        for k in 0..1900 {
            t.remove(&Key::int(k), RowId(k as u64));
        }
        t.check_invariants();
        assert!(t.node_count() < full_nodes / 4);
    }
}
