//! End-to-end engine tests: queries and transactions running on the
//! simulated hardware through the discrete-event kernel.

use dbsens_engine::db::{Database, TableId};
use dbsens_engine::expr::{CmpOp, Expr};
use dbsens_engine::governor::Governor;
use dbsens_engine::grant::GrantManager;
use dbsens_engine::metrics::RunMetrics;
use dbsens_engine::plan::{count, sum, JoinKind, Logical};
use dbsens_engine::tasks::QueryStreamTask;
use dbsens_engine::txn::{
    LockSpec, MutOp, Mutation, TxOp, TxnClientTask, TxnGenerator, TxnProgram,
};
use dbsens_hwsim::kernel::{Kernel, SimConfig};
use dbsens_hwsim::rng::SimRng;
use dbsens_hwsim::task::WaitClass;
use dbsens_hwsim::time::{SimDuration, SimTime};
use dbsens_storage::schema::{ColType, Schema};
use dbsens_storage::value::{Key, Value};
use std::cell::RefCell;
use std::rc::Rc;

fn build_db(row_scale: f64) -> (Rc<RefCell<Database>>, TableId, TableId) {
    let mut db = Database::new(row_scale, 1 << 30);
    let fact_schema = Schema::new(&[
        ("id", ColType::Int),
        ("fk", ColType::Int),
        ("qty", ColType::Int),
        ("price", ColType::Float),
    ]);
    let fact_rows: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Int(i % 7),
                Value::Float(i as f64),
            ]
        })
        .collect();
    let fact = db.create_table("fact", fact_schema, fact_rows);
    db.create_index(fact, "pk", &[0]);
    let dim_schema = Schema::new(&[("id", ColType::Int), ("cat", ColType::Int)]);
    let dim_rows: Vec<Vec<Value>> = (0..50)
        .map(|i| vec![Value::Int(i), Value::Int(i % 5)])
        .collect();
    let dim = db.create_table("dim", dim_schema, dim_rows);
    db.create_index(dim, "pk", &[0]);
    (Rc::new(RefCell::new(db)), fact, dim)
}

fn analytics_query(fact: TableId, dim: TableId) -> Logical {
    Logical::scan(fact, None, 1000.0)
        .join(
            Logical::scan(dim, None, 50.0),
            vec![1],
            vec![0],
            JoinKind::Inner,
            1000.0,
        )
        .agg(vec![5], vec![count(), sum(3)], 5.0)
        .sort(vec![(1, true)])
}

#[test]
fn query_stream_completes_and_records_metrics() {
    let (db, fact, dim) = build_db(1000.0);
    let grants = Rc::new(RefCell::new(GrantManager::new(
        Governor::paper_default(8).workspace_bytes,
    )));
    let metrics = Rc::new(RefCell::new(RunMetrics::new()));
    let mut kernel = Kernel::new(SimConfig::paper_default(1));
    kernel.spawn(Box::new(QueryStreamTask::new(
        Rc::clone(&db),
        Rc::clone(&grants),
        Rc::clone(&metrics),
        Governor::paper_default(8),
        vec![("Q".into(), analytics_query(fact, dim))],
        false,
        "stream",
    )));
    assert!(
        kernel.run_to_completion(SimDuration::from_secs(3600)),
        "query stream stuck"
    );
    let m = metrics.borrow();
    assert_eq!(m.queries().len(), 1);
    assert!(m.queries()[0].duration > SimDuration::ZERO);
    // Hardware was exercised.
    assert!(kernel.counters().instructions > 1_000_000);
    assert!(
        kernel.counters().ssd_read_bytes > 0,
        "cold buffer pool should read"
    );
}

#[test]
fn parallel_query_is_faster_than_serial() {
    let mut times = Vec::new();
    for maxdop in [1usize, 16] {
        let (db, fact, dim) = build_db(100_000.0);
        let mut gov = Governor::paper_default(maxdop);
        gov.cost_threshold = 1e6; // make even this query parallel-eligible
        let grants = Rc::new(RefCell::new(GrantManager::new(gov.workspace_bytes)));
        let metrics = Rc::new(RefCell::new(RunMetrics::new()));
        let mut kernel = Kernel::new(SimConfig::paper_default(7));
        kernel.spawn(Box::new(QueryStreamTask::new(
            Rc::clone(&db),
            Rc::clone(&grants),
            Rc::clone(&metrics),
            gov,
            vec![("Q".into(), analytics_query(fact, dim))],
            false,
            "stream",
        )));
        assert!(kernel.run_to_completion(SimDuration::from_secs(36_000)));
        times.push(metrics.borrow().queries()[0].duration.as_secs_f64());
    }
    assert!(
        times[1] < times[0] * 0.5,
        "dop16 ({}s) should be much faster than dop1 ({}s)",
        times[1],
        times[0]
    );
}

#[derive(Debug)]
struct SimpleGen {
    fact: TableId,
    n_keys: i64,
    hot: bool,
}

impl TxnGenerator for SimpleGen {
    fn next_txn(&mut self, rng: &mut SimRng) -> TxnProgram {
        let k1 = rng.next_below(self.n_keys as u64) as i64;
        let lock = if self.hot {
            LockSpec::ExactRow
        } else {
            LockSpec::Diffuse
        };
        TxnProgram {
            name: "Mix",
            ops: vec![
                TxOp::Read {
                    table: self.fact,
                    index: 0,
                    key: Key::int(k1),
                    lock,
                    for_update: true,
                },
                TxOp::Update {
                    table: self.fact,
                    index: 0,
                    key: Key::int(k1),
                    muts: vec![Mutation {
                        col: 2,
                        op: MutOp::AddInt(1),
                    }],
                    lock,
                },
            ],
        }
    }
}

#[test]
fn txn_clients_commit_and_write_log() {
    let (db, fact, _) = build_db(1000.0);
    let metrics = Rc::new(RefCell::new(RunMetrics::new()));
    let mut kernel = Kernel::new(SimConfig::paper_default(3));
    for i in 0..8 {
        kernel.spawn(Box::new(TxnClientTask::new(
            Rc::clone(&db),
            Rc::clone(&metrics),
            Box::new(SimpleGen {
                fact,
                n_keys: 1000,
                hot: false,
            }),
            SimDuration::ZERO,
            format!("client{i}"),
        )));
    }
    kernel.run_until(SimTime::from_nanos(2_000_000_000)); // 2 virtual seconds
    let m = metrics.borrow();
    assert!(m.txns_committed() > 100, "only {} txns", m.txns_committed());
    assert!(
        kernel.counters().ssd_write_bytes > 0,
        "commits must write the log"
    );
    assert!(m.txn_latency_percentile(0.99).unwrap() > SimDuration::ZERO);
    assert_eq!(*m.txns_by_type().get("Mix").unwrap(), m.txns_committed());
}

#[test]
fn hot_keys_create_lock_waits_cold_keys_do_not() {
    let mut lock_waits = Vec::new();
    for hot in [true, false] {
        let (db, fact, _) = build_db(1000.0);
        let metrics = Rc::new(RefCell::new(RunMetrics::new()));
        let mut kernel = Kernel::new(SimConfig::paper_default(4));
        for i in 0..16 {
            kernel.spawn(Box::new(TxnClientTask::new(
                Rc::clone(&db),
                Rc::clone(&metrics),
                // All clients target the same tiny key range.
                Box::new(SimpleGen {
                    fact,
                    n_keys: 2,
                    hot,
                }),
                SimDuration::ZERO,
                format!("client{i}"),
            )));
        }
        kernel.run_until(SimTime::from_nanos(500_000_000));
        lock_waits.push(kernel.wait_stats().total(WaitClass::Lock).as_secs_f64());
    }
    assert!(
        lock_waits[0] > lock_waits[1] * 5.0 + 1e-6,
        "hot {} vs cold {}",
        lock_waits[0],
        lock_waits[1]
    );
}

#[test]
fn oltp_and_analytics_coexist() {
    // HTAP smoke test: 4 OLTP clients + 1 repeating analytical stream.
    let (db, fact, dim) = build_db(1000.0);
    let grants = Rc::new(RefCell::new(GrantManager::new(
        Governor::paper_default(4).workspace_bytes,
    )));
    let metrics = Rc::new(RefCell::new(RunMetrics::new()));
    let mut kernel = Kernel::new(SimConfig::paper_default(5));
    for i in 0..4 {
        kernel.spawn(Box::new(TxnClientTask::new(
            Rc::clone(&db),
            Rc::clone(&metrics),
            Box::new(SimpleGen {
                fact,
                n_keys: 1000,
                hot: false,
            }),
            SimDuration::ZERO,
            format!("client{i}"),
        )));
    }
    kernel.spawn(Box::new(QueryStreamTask::new(
        Rc::clone(&db),
        Rc::clone(&grants),
        Rc::clone(&metrics),
        Governor::paper_default(4),
        vec![("QA".into(), analytics_query(fact, dim))],
        true,
        "dss",
    )));
    kernel.run_until(SimTime::from_nanos(2_000_000_000));
    let m = metrics.borrow();
    assert!(m.txns_committed() > 50);
    assert!(!m.queries().is_empty(), "analytics made no progress");
}

#[test]
fn index_range_query_reads_fewer_pages_than_scan() {
    let (db, fact, _) = build_db(1000.0);
    let grants = Rc::new(RefCell::new(GrantManager::new(1 << 40)));
    let gov = Governor::paper_default(1);

    let run = |q: Logical, db: &Rc<RefCell<Database>>| {
        let metrics = Rc::new(RefCell::new(RunMetrics::new()));
        let mut kernel = Kernel::new(SimConfig::paper_default(6));
        kernel.spawn(Box::new(QueryStreamTask::new(
            Rc::clone(db),
            Rc::clone(&grants),
            Rc::clone(&metrics),
            gov.clone(),
            vec![("Q".into(), q)],
            false,
            "s",
        )));
        assert!(kernel.run_to_completion(SimDuration::from_secs(36_000)));
        kernel.counters().ssd_read_bytes
    };

    let seek = Logical::index_range(
        fact,
        "pk",
        Some(Key::int(10)),
        Some(Key::int(20)),
        None,
        10.0,
    );
    let seek_bytes = run(seek, &db);
    let scan = Logical::scan(
        fact,
        Some(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(20i64))),
        20.0,
    );
    let scan_bytes = run(scan, &db);
    assert!(
        seek_bytes * 4 < scan_bytes,
        "seek read {seek_bytes} vs scan {scan_bytes}"
    );
}
