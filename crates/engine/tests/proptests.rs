//! Property-based tests for engine components: expressions, plan
//! invariants, and the grant manager.

use dbsens_engine::expr::{CmpOp, Expr};
use dbsens_engine::grant::GrantManager;
use dbsens_hwsim::task::TaskId;
use dbsens_storage::value::{Row, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-100i64..100).prop_map(|v| Value::Float(v as f64 * 0.25)),
        "[a-z]{0,6}".prop_map(Value::Str),
        Just(Value::Null),
    ]
}

fn arb_expr(cols: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..cols).prop_map(Expr::Col),
        arb_value().prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.div(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::cmp(CmpOp::Lt, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            inner.clone().prop_map(|a| Expr::IsNull(Box::new(a))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::IntDiv(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Expression evaluation is total over arbitrary well-arity rows (no
    /// panics), and deterministic.
    #[test]
    fn expr_eval_is_total_and_deterministic(
        expr in arb_expr(4),
        row in prop::collection::vec(arb_value(), 4),
    ) {
        let a = expr.eval(&row);
        let b = expr.eval(&row);
        prop_assert_eq!(a, b);
        let _ = expr.matches(&row);
        prop_assert!(expr.node_count() >= 1);
    }

    /// `shift_cols` is exactly "evaluate against a row with `k` columns
    /// prepended".
    #[test]
    fn shift_cols_matches_padded_row(
        expr in arb_expr(3),
        row in prop::collection::vec(arb_value(), 3),
        pad in prop::collection::vec(arb_value(), 0..4),
    ) {
        let shifted = expr.shift_cols(pad.len());
        let mut padded: Row = pad.clone();
        padded.extend(row.iter().cloned());
        prop_assert_eq!(expr.eval(&row), shifted.eval(&padded));
    }

    /// Grant manager conservation: available never exceeds total, grants
    /// never overlap beyond capacity, and FIFO wakes hold their grants.
    #[test]
    fn grant_manager_conserves_capacity(
        total in 1u64..10_000,
        requests in prop::collection::vec(1u64..4_000, 1..40),
    ) {
        let mut gm = GrantManager::new(total);
        let mut held: Vec<u64> = Vec::new();
        let mut queued: std::collections::VecDeque<u64> = Default::default();
        for (i, want) in requests.iter().enumerate() {
            let clamped = (*want).min(total);
            if gm.try_acquire(TaskId(i), *want) {
                held.push(clamped);
            } else {
                queued.push_back(clamped);
            }
            prop_assert!(held.iter().sum::<u64>() <= total);
            prop_assert_eq!(gm.available(), total - held.iter().sum::<u64>());
        }
        // Drain: releasing everything wakes queued requests in FIFO order,
        // never exceeding capacity.
        while let Some(bytes) = held.pop() {
            let woken = gm.release(bytes);
            for _ in woken {
                let w = queued.pop_front().expect("woken task must have been queued");
                held.push(w);
            }
            prop_assert!(held.iter().sum::<u64>() <= total);
        }
        prop_assert!(queued.is_empty(), "all queued grants must eventually be served");
        prop_assert_eq!(gm.available(), total);
    }
}
