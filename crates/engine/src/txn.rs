//! OLTP transactions: programs, generators, and the client task.
//!
//! Transactions are declarative programs of index-based operations. The
//! client task interprets one operation at a time against the logical data
//! while issuing the matching hardware demands: lock acquisition (blocking,
//! LOCK waits), page latches (busy-window backoff, PAGELATCH waits), buffer
//! pool access (misses become device reads with PAGEIOLATCH waits plus
//! free-list LATCH contention), B-tree probe compute, WAL append, and a
//! group-commit log flush (WRITELOG) guarded by the log-buffer latch.
//!
//! **Deadlock discipline**: generators must emit lock-taking operations in
//! ascending `(table, key)` order within each transaction; the FIFO lock
//! queues then cannot deadlock.

use crate::db::{Database, TableId};
use crate::metrics::RunMetrics;
use dbsens_hwsim::mem::MemProfile;
use dbsens_hwsim::rng::SimRng;
use dbsens_hwsim::task::{Demand, SimTask, Step, TaskCtx, WaitClass};
use dbsens_hwsim::time::{SimDuration, SimTime};
use dbsens_storage::btree::RowId;
use dbsens_storage::bufferpool::PAGE_BYTES;
use dbsens_storage::lock::{LatchKey, LockKey, LockMode, LockReq, TxnId};
use dbsens_storage::value::{Key, Row, Value};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Internal latch ids.
const LOG_BUFFER_LATCH: u32 = 0;
const FREELIST_LATCH: u32 = 1;

/// A declarative column mutation.
#[derive(Debug, Clone)]
pub enum MutOp {
    /// Set an integer column.
    SetInt(i64),
    /// Add to an integer column.
    AddInt(i64),
    /// Set a float column.
    SetFloat(f64),
    /// Add to a float column.
    AddFloat(f64),
    /// Set a string column.
    SetStr(String),
}

/// A mutation of one column.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Column position.
    pub col: usize,
    /// Operation.
    pub op: MutOp,
}

impl Mutation {
    /// Applies the mutation to a row.
    pub fn apply(&self, row: &mut Row) {
        let v = &mut row[self.col];
        match &self.op {
            MutOp::SetInt(x) => *v = Value::Int(*x),
            MutOp::AddInt(x) => {
                if let Value::Int(cur) = v {
                    *cur += x;
                } else {
                    *v = Value::Int(*x);
                }
            }
            MutOp::SetFloat(x) => *v = Value::Float(*x),
            MutOp::AddFloat(x) => {
                if let Value::Float(cur) = v {
                    *cur += x;
                } else {
                    *v = Value::Float(*x);
                }
            }
            MutOp::SetStr(s) => *v = Value::Str(s.clone()),
        }
    }
}

/// How an operation's lock (and page) resource is chosen. Logical rows
/// each stand for `row_scale` real rows, so the spec controls whether
/// contention reflects a genuinely hot entity or a random key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LockSpec {
    /// Random-key access: diffuse the lock within the row's modeled block
    /// so conflict probability matches the paper-scale database.
    Diffuse,
    /// The logical row itself is hot (small fixed tables).
    ExactRow,
    /// A hot entity sampled from the real (paper-scale) id space; the id is
    /// used directly as the modeled row, so the number of distinct
    /// contended resources matches the real system (e.g. one LAST_TRADE row
    /// per security).
    Resource(u64),
}

/// One operation in a transaction program.
#[derive(Debug, Clone)]
pub enum TxOp {
    /// Point read through an index (S lock).
    Read {
        /// Table.
        table: TableId,
        /// Index position on the table.
        index: usize,
        /// Key to read.
        key: Key,
        /// Lock resource choice.
        lock: LockSpec,
        /// Take a `U` (update) lock instead of `S`: required when the same
        /// transaction later writes this key (deadlock-free upgrade).
        for_update: bool,
    },
    /// Range read through an index (no row locks; read-committed scan).
    ReadRange {
        /// Table.
        table: TableId,
        /// Index position.
        index: usize,
        /// Lower bound (inclusive).
        lo: Key,
        /// Upper bound (exclusive).
        hi: Key,
        /// Max logical rows to read.
        limit: usize,
        /// Real (paper-scale) rows this range represents; drives the
        /// modeled CPU/cache cost. OLTP ranges are usually far smaller than
        /// one logical row's block.
        model_rows: u64,
    },
    /// Point update through an index (X lock, page latch, WAL).
    Update {
        /// Table.
        table: TableId,
        /// Index position.
        index: usize,
        /// Key to update.
        key: Key,
        /// Mutations to apply.
        muts: Vec<Mutation>,
        /// Lock resource choice.
        lock: LockSpec,
    },
    /// Insert a new row (X lock on the new row, insert-hotspot page latch,
    /// WAL).
    Insert {
        /// Table.
        table: TableId,
        /// The row.
        row: Row,
    },
    /// Delete through an index (X lock, page latch, WAL).
    Delete {
        /// Table.
        table: TableId,
        /// Index position.
        index: usize,
        /// Key to delete.
        key: Key,
        /// Lock resource choice.
        lock: LockSpec,
    },
    /// Pure application logic between database calls.
    Compute {
        /// Instructions.
        instructions: u64,
    },
}

/// A transaction: a name (for per-type metrics) and its operations.
#[derive(Debug, Clone)]
pub struct TxnProgram {
    /// Transaction type name (e.g. "TradeOrder").
    pub name: &'static str,
    /// Operations, executed in order, then committed.
    pub ops: Vec<TxOp>,
}

/// Produces the next transaction for a client; implemented by each
/// workload.
pub trait TxnGenerator: fmt::Debug {
    /// Generates the next transaction program.
    fn next_txn(&mut self, rng: &mut SimRng) -> TxnProgram;

    /// Generates the next program, handing back the previous (fully
    /// executed) one so the generator can recycle its storage. The default
    /// simply drops `spent`; allocation-conscious generators dismantle it
    /// into a [`ProgramPool`] and build the new program from the parts.
    fn next_txn_reusing(&mut self, rng: &mut SimRng, spent: TxnProgram) -> TxnProgram {
        drop(spent);
        self.next_txn(rng)
    }
}

/// Recycled storage for transaction-program parts.
///
/// The OLTP hot loop retires a whole [`TxnProgram`] per transaction — an
/// op vector holding keys, mutation lists, row images, and strings — and
/// immediately builds the next one. [`ProgramPool::reclaim`] dismantles a
/// spent program into per-kind free lists, and the builder helpers
/// ([`ProgramPool::key1`], [`ProgramPool::string`], ...) reissue the
/// buffers, so a generator that routes its allocations through the pool
/// reaches a steady state where transaction generation touches the heap
/// allocator not at all.
///
/// Pools are bounded; overflow is simply dropped, so a pathological
/// program mix degrades to plain allocation rather than hoarding memory.
#[derive(Debug, Default)]
pub struct ProgramPool {
    ops: Vec<Vec<TxOp>>,
    values: Vec<Vec<Value>>,
    muts: Vec<Vec<Mutation>>,
    strings: Vec<String>,
}

/// Free-list bounds: `ops` is one-per-program; the others are per-op.
const POOL_OPS_CAP: usize = 8;
const POOL_PARTS_CAP: usize = 256;

impl ProgramPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ProgramPool::default()
    }

    /// Dismantles a spent program into the pool's free lists.
    pub fn reclaim(&mut self, prog: TxnProgram) {
        let mut ops = prog.ops;
        for op in ops.drain(..) {
            match op {
                TxOp::Read { key, .. } | TxOp::Delete { key, .. } => self.reclaim_key(key),
                TxOp::ReadRange { lo, hi, .. } => {
                    self.reclaim_key(lo);
                    self.reclaim_key(hi);
                }
                TxOp::Update { key, muts, .. } => {
                    self.reclaim_key(key);
                    self.reclaim_muts(muts);
                }
                TxOp::Insert { row, .. } => self.reclaim_values(row),
                TxOp::Compute { .. } => {}
            }
        }
        if ops.capacity() > 0 && self.ops.len() < POOL_OPS_CAP {
            self.ops.push(ops);
        }
    }

    fn reclaim_key(&mut self, key: Key) {
        self.reclaim_values(key.into_values());
    }

    fn reclaim_values(&mut self, mut values: Vec<Value>) {
        for v in values.drain(..) {
            if let Value::Str(s) = v {
                self.reclaim_string(s);
            }
        }
        if values.capacity() > 0 && self.values.len() < POOL_PARTS_CAP {
            self.values.push(values);
        }
    }

    /// Returns a mutation list to the pool (e.g. from a dismantled op).
    pub fn reclaim_muts(&mut self, mut muts: Vec<Mutation>) {
        for m in muts.drain(..) {
            if let MutOp::SetStr(s) = m.op {
                self.reclaim_string(s);
            }
        }
        if muts.capacity() > 0 && self.muts.len() < POOL_PARTS_CAP {
            self.muts.push(muts);
        }
    }

    fn reclaim_string(&mut self, mut s: String) {
        if s.capacity() > 0 && self.strings.len() < POOL_PARTS_CAP {
            s.clear();
            self.strings.push(s);
        }
    }

    /// An empty op vector for a program body.
    pub fn ops(&mut self) -> Vec<TxOp> {
        self.ops.pop().unwrap_or_default()
    }

    /// An empty value vector (row image or key storage).
    pub fn values(&mut self) -> Vec<Value> {
        self.values.pop().unwrap_or_default()
    }

    /// An empty mutation list.
    pub fn muts(&mut self) -> Vec<Mutation> {
        self.muts.pop().unwrap_or_default()
    }

    /// A string holding `content`.
    pub fn string(&mut self, content: &str) -> String {
        let mut s = self.strings.pop().unwrap_or_default();
        s.push_str(content);
        s
    }

    /// A single-integer key.
    pub fn key1(&mut self, v: i64) -> Key {
        let mut values = self.values();
        values.push(Value::Int(v));
        Key::from_values(values)
    }

    /// A two-integer key.
    pub fn key2(&mut self, a: i64, b: i64) -> Key {
        let mut values = self.values();
        values.push(Value::Int(a));
        values.push(Value::Int(b));
        Key::from_values(values)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Resolve and lock the op's row.
    Lock,
    /// Acquire the page latch (writes); `row` is the modeled row chosen at
    /// lock time, reused for the page so latching, dirtying, and locking
    /// all target the same physical location.
    Latch { row: u64 },
    /// Buffer-pool page access; may need the free-list latch first.
    PageIo { row: u64 },
    /// Issue the device read for missed pages.
    ReadMissed { row: u64, miss_bytes: u64 },
    /// Main compute burst (probe + row work); logical effects applied when
    /// the burst is issued.
    Compute { row: u64 },
}

#[derive(Debug)]
enum ClientState {
    /// Generate the next transaction.
    Start,
    /// Executing op `op` of the current program.
    InTxn { op: usize, phase: Phase },
    /// Commit-time CPU work (session/commit processing).
    CommitWork,
    /// Log flush issued; wait for durability.
    CommitFlush,
    /// Waiting for the log-buffer latch.
    CommitLatch,
    /// Post-commit think time.
    Think,
    /// Aborted under fault injection; backing off before re-running the
    /// same program under a fresh transaction id.
    RetryBackoff,
    /// The commit log write failed; backing off before reissuing it.
    CommitFlushRetry,
}

/// A simulated OLTP client connection: runs transactions from its
/// generator forever (the experiment decides when to stop the clock).
pub struct TxnClientTask {
    db: Rc<RefCell<Database>>,
    metrics: Rc<RefCell<RunMetrics>>,
    generator: Box<dyn TxnGenerator>,
    think: SimDuration,
    state: ClientState,
    program: Option<TxnProgram>,
    txn: Option<TxnId>,
    started: SimTime,
    label: String,
    /// Abort/retry budget per transaction (0 disables fault recovery).
    txn_retry_attempts: u32,
    /// Aborts already spent on the current program.
    txn_attempt: u32,
    /// Reissues already spent on the current commit flush.
    flush_attempt: u32,
    /// Bytes of the in-flight commit flush, kept for reissue.
    commit_bytes: u64,
    /// Whether the in-flight commit flush has been acknowledged durable
    /// (crash-consistency mode; guards latch-retry re-entry).
    flush_acked: bool,
}

impl fmt::Debug for TxnClientTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnClientTask")
            .field("label", &self.label)
            .field("state", &self.state)
            .finish()
    }
}

impl TxnClientTask {
    /// Creates a client.
    pub fn new(
        db: Rc<RefCell<Database>>,
        metrics: Rc<RefCell<RunMetrics>>,
        generator: Box<dyn TxnGenerator>,
        think: SimDuration,
        label: impl Into<String>,
    ) -> Self {
        TxnClientTask {
            db,
            metrics,
            generator,
            think,
            state: ClientState::Start,
            program: None,
            txn: None,
            started: SimTime::ZERO,
            label: label.into(),
            txn_retry_attempts: 0,
            txn_attempt: 0,
            flush_attempt: 0,
            commit_bytes: 0,
            flush_acked: false,
        }
    }

    /// Enables graceful degradation under fault injection: transactions hit
    /// by injected I/O errors (or victimized by the lock monitor) abort and
    /// re-run under jittered backoff, up to `attempts` times before the
    /// client gives the transaction up.
    pub fn with_fault_recovery(mut self, attempts: u32) -> Self {
        self.txn_retry_attempts = attempts;
        self
    }

    /// Resolves the row id an op refers to (logical lookup, free).
    fn resolve(&self, table: TableId, index: usize, key: &Key) -> Option<RowId> {
        let db = self.db.borrow();
        let rid = db.table(table).indexes[index].btree.get(key).next();
        rid
    }

    /// Lock resource for a row per its [`LockSpec`].
    fn lock_row(&self, table: TableId, rid: RowId, lock: LockSpec, rng: &mut SimRng) -> u64 {
        let db = self.db.borrow();
        // Crash-consistency mode needs writers serialized per *physical*
        // row: diffuse keys let two clients update the same row under
        // different lock resources, and resource keys distinguish modeled
        // rows that share one physical heap row (e.g. the one-row hot
        // tables), either of which would interleave before-image chains
        // and invalidate undo. Keying every lock by the physical row
        // restores strict 2PL at the grain recovery operates on.
        if db.crash_consistency() {
            return db.modeled_row(table, rid);
        }
        match lock {
            LockSpec::ExactRow => db.modeled_row(table, rid),
            LockSpec::Diffuse => {
                db.modeled_row(table, rid) + rng.next_below(db.row_scale.max(1.0) as u64)
            }
            LockSpec::Resource(id) => {
                id.min(db.table(table).layout.modeled_rows().saturating_sub(1))
            }
        }
    }

    /// Advances to the next op (or commit). `len` is the program's op
    /// count, passed explicitly because the program is moved out of `self`
    /// while an op executes.
    fn advance_with(&mut self, op: usize, len: usize) -> Step {
        if op + 1 < len {
            self.state = ClientState::InTxn {
                op: op + 1,
                phase: Phase::Lock,
            };
        } else {
            self.state = ClientState::CommitWork;
        }
        Step::Demand(Demand::Yield)
    }
}

impl SimTask for TxnClientTask {
    fn poll(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        if self.txn_retry_attempts > 0 {
            // Victimized by the lock monitor while stalled: our locks are
            // already gone; abort and re-run.
            if let Some(txn) = self.txn {
                if self.db.borrow_mut().take_victim(txn) {
                    return self.abort_txn(ctx);
                }
            }
            if ctx.io_failed() {
                match self.state {
                    // The group-commit flush failed: retry just the write,
                    // still holding locks (the lock monitor may victimize
                    // us if waiters pile up behind them).
                    ClientState::CommitLatch => return self.retry_commit_flush(ctx),
                    // Mid-transaction page read failed: abort and re-run.
                    ClientState::InTxn { .. } => return self.abort_txn(ctx),
                    _ => {}
                }
            }
        }
        loop {
            match self.state {
                ClientState::Start => {
                    // Hand the previous program's storage back to the
                    // generator for recycling before drawing the next one.
                    let program = match self.program.take() {
                        Some(spent) => self.generator.next_txn_reusing(ctx.rng(), spent),
                        None => self.generator.next_txn(ctx.rng()),
                    };
                    let txn = {
                        let mut db = self.db.borrow_mut();
                        let txn = db.begin_txn();
                        if db.crash_consistency() {
                            db.begin_txn_logged(txn);
                        }
                        txn
                    };
                    self.txn = Some(txn);
                    self.started = ctx.now();
                    self.txn_attempt = 0;
                    if program.ops.is_empty() {
                        self.program = Some(program);
                        self.state = ClientState::CommitWork;
                        continue;
                    }
                    self.program = Some(program);
                    self.state = ClientState::InTxn {
                        op: 0,
                        phase: Phase::Lock,
                    };
                }
                ClientState::InTxn { op, phase } => {
                    return self.exec_op(op, phase, ctx);
                }
                ClientState::CommitWork => {
                    let instructions = self.db.borrow().cost.txn_overhead;
                    self.state = ClientState::CommitFlush;
                    return Step::Demand(Demand::Compute {
                        instructions,
                        mem: MemProfile::new(),
                    });
                }
                ClientState::CommitFlush => {
                    let bytes = {
                        let mut db = self.db.borrow_mut();
                        if db.crash_consistency() {
                            if let Some(txn) = self.txn {
                                db.commit_txn_logged(txn);
                            }
                        }
                        db.wal.flush_for_commit()
                    };
                    self.commit_bytes = bytes;
                    self.flush_acked = false;
                    self.state = ClientState::CommitLatch;
                    return Step::Demand(Demand::DeviceWrite {
                        bytes,
                        class: WaitClass::WriteLog,
                    });
                }
                ClientState::CommitLatch => {
                    // The device write completed: the flushed log range is
                    // durable (only acknowledged once — this arm re-enters
                    // on latch conflicts).
                    if !self.flush_acked {
                        let mut db = self.db.borrow_mut();
                        if db.crash_consistency() {
                            db.wal.flush_durable();
                        }
                        self.flush_acked = true;
                    }
                    let now = ctx.now();
                    let (latch, hold_ns) = {
                        let db = self.db.borrow();
                        (
                            LatchKey::Internal(LOG_BUFFER_LATCH),
                            db.cost.internal_latch_ns,
                        )
                    };
                    let res = self.db.borrow_mut().latches.acquire(
                        latch,
                        now,
                        SimDuration::from_nanos(hold_ns),
                    );
                    if let Err(until) = res {
                        return Step::Demand(Demand::Sleep {
                            dur: until.saturating_since(now),
                            class: WaitClass::Latch,
                        });
                    }
                    // Release locks and credit the commit.
                    if let Some(txn) = self.txn.take() {
                        let woken = {
                            let mut db = self.db.borrow_mut();
                            if self.flush_attempt > 0 {
                                db.clear_stalled(txn);
                            }
                            db.locks.release_all(txn)
                        };
                        for t in woken {
                            ctx.wake(t);
                        }
                    }
                    self.flush_attempt = 0;
                    self.commit_bytes = 0;
                    let name = self.program.as_ref().map_or("txn", |p| p.name);
                    self.metrics
                        .borrow_mut()
                        .record_txn(name, ctx.now().saturating_since(self.started));
                    self.state = ClientState::Think;
                    if self.think > SimDuration::ZERO {
                        return Step::Demand(Demand::Sleep {
                            dur: self.think,
                            class: WaitClass::Think,
                        });
                    }
                }
                ClientState::Think => {
                    self.state = ClientState::Start;
                }
                ClientState::RetryBackoff => {
                    // Backoff elapsed: re-run the same program under a
                    // fresh transaction id. `started` is kept so the
                    // latency sample covers the aborted attempts too.
                    let txn = {
                        let mut db = self.db.borrow_mut();
                        let txn = db.begin_txn();
                        if db.crash_consistency() {
                            db.begin_txn_logged(txn);
                        }
                        txn
                    };
                    self.txn = Some(txn);
                    let len = self.program.as_ref().map_or(0, |p| p.ops.len());
                    self.state = if len == 0 {
                        ClientState::CommitWork
                    } else {
                        ClientState::InTxn {
                            op: 0,
                            phase: Phase::Lock,
                        }
                    };
                }
                ClientState::CommitFlushRetry => {
                    // Backoff elapsed: reissue the commit log write.
                    self.state = ClientState::CommitLatch;
                    return Step::Demand(Demand::DeviceWrite {
                        bytes: self.commit_bytes.max(512),
                        class: WaitClass::WriteLog,
                    });
                }
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl TxnClientTask {
    /// Aborts the current transaction (releasing everything it holds or
    /// waits for) and either schedules a jittered-backoff re-run or — once
    /// the retry budget is spent — gives the transaction up.
    fn abort_txn(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        if let Some(txn) = self.txn.take() {
            let woken = {
                let mut db = self.db.borrow_mut();
                if db.crash_consistency() {
                    // Reverse the transaction's effects (CLRs + Abort) while
                    // still holding its locks.
                    db.rollback_txn(txn);
                }
                db.clear_stalled(txn);
                let mut w = db.locks.cancel_wait(txn, ctx.self_id());
                w.extend(db.locks.release_all(txn));
                w
            };
            for t in woken {
                ctx.wake(t);
            }
        }
        self.flush_attempt = 0;
        self.commit_bytes = 0;
        self.txn_attempt += 1;
        if self.txn_attempt > self.txn_retry_attempts {
            self.metrics.borrow_mut().record_gave_up();
            self.txn_attempt = 0;
            self.program = None;
            self.state = ClientState::Think;
            if self.think > SimDuration::ZERO {
                return Step::Demand(Demand::Sleep {
                    dur: self.think,
                    class: WaitClass::Think,
                });
            }
            return Step::Demand(Demand::Yield);
        }
        self.metrics.borrow_mut().record_retry();
        self.state = ClientState::RetryBackoff;
        // Jittered capped exponential backoff. The extra RNG draw happens
        // only on this fault path, so healthy runs see an untouched stream.
        let base_us = 200u64 << (self.txn_attempt - 1).min(6);
        let jitter_us = ctx.rng().next_below(base_us.max(1));
        Step::Demand(Demand::Sleep {
            dur: SimDuration::from_micros(base_us + jitter_us),
            class: WaitClass::Lock,
        })
    }

    /// Handles a failed commit log write: back off and reissue it, marking
    /// the transaction as stalled so the lock monitor can victimize it if
    /// waiters pile up behind its locks.
    fn retry_commit_flush(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        self.flush_attempt += 1;
        if self.flush_attempt > self.txn_retry_attempts {
            self.flush_attempt = 0;
            return self.abort_txn(ctx);
        }
        if let Some(txn) = self.txn {
            self.db.borrow_mut().mark_stalled(txn);
        }
        self.metrics.borrow_mut().record_retry();
        self.state = ClientState::CommitFlushRetry;
        let base_us = 100u64 << (self.flush_attempt - 1).min(6);
        let jitter_us = ctx.rng().next_below(base_us.max(1));
        Step::Demand(Demand::Sleep {
            dur: SimDuration::from_micros(base_us + jitter_us),
            class: WaitClass::WriteLog,
        })
    }

    fn exec_op(&mut self, op: usize, phase: Phase, ctx: &mut TaskCtx<'_>) -> Step {
        // Move the program out of `self` for the duration of the op so its
        // spec can be *borrowed* instead of deep-cloned on every phase poll
        // (the clone was the single largest allocation source in the OLTP
        // hot loop). The program is put back before returning — aborts
        // re-run the same program, so it must survive the op.
        let program = self.program.take().expect("in txn");
        let step = match program.ops.get(op).expect("op index valid") {
            TxOp::Compute { instructions } => {
                let instructions = *instructions;
                let _ = self.advance_with(op, program.ops.len());
                self.program = Some(program);
                return Step::Demand(Demand::Compute {
                    instructions,
                    mem: MemProfile::new(),
                });
            }
            TxOp::ReadRange {
                table,
                index,
                lo,
                hi,
                limit,
                model_rows,
            } => self.exec_read_range(
                op,
                phase,
                *table,
                *index,
                lo,
                hi,
                *limit,
                *model_rows,
                program.ops.len(),
                ctx,
            ),
            TxOp::Read {
                table,
                index,
                key,
                lock,
                for_update,
            } => {
                let kind = if *for_update {
                    RowOpKind::ReadForUpdate
                } else {
                    RowOpKind::Read
                };
                self.exec_rowop(
                    OpCtx {
                        op,
                        phase,
                        table: *table,
                        index: *index,
                        key: Some(key),
                        lock: *lock,
                        kind,
                        muts: &[],
                        insert_row: None,
                        ops_len: program.ops.len(),
                    },
                    ctx,
                )
            }
            TxOp::Update {
                table,
                index,
                key,
                muts,
                lock,
            } => self.exec_rowop(
                OpCtx {
                    op,
                    phase,
                    table: *table,
                    index: *index,
                    key: Some(key),
                    lock: *lock,
                    kind: RowOpKind::Update,
                    muts,
                    insert_row: None,
                    ops_len: program.ops.len(),
                },
                ctx,
            ),
            TxOp::Delete {
                table,
                index,
                key,
                lock,
            } => self.exec_rowop(
                OpCtx {
                    op,
                    phase,
                    table: *table,
                    index: *index,
                    key: Some(key),
                    lock: *lock,
                    kind: RowOpKind::Delete,
                    muts: &[],
                    insert_row: None,
                    ops_len: program.ops.len(),
                },
                ctx,
            ),
            TxOp::Insert { table, row } => self.exec_rowop(
                OpCtx {
                    op,
                    phase,
                    table: *table,
                    index: 0,
                    key: None,
                    lock: LockSpec::Diffuse,
                    kind: RowOpKind::Insert,
                    muts: &[],
                    insert_row: Some(row),
                    ops_len: program.ops.len(),
                },
                ctx,
            ),
        };
        self.program = Some(program);
        step
    }

    fn exec_rowop(&mut self, o: OpCtx<'_>, ctx: &mut TaskCtx<'_>) -> Step {
        let OpCtx {
            op,
            phase,
            table,
            index,
            key,
            lock,
            kind,
            muts,
            insert_row,
            ops_len,
        } = o;
        let is_write = !matches!(kind, RowOpKind::Read | RowOpKind::ReadForUpdate);
        match phase {
            Phase::Lock => {
                // Resolve the target row (inserts have none yet).
                let rid = match key {
                    Some(k) => match self.resolve(table, index, k) {
                        Some(r) => Some(r),
                        None => return self.advance_with(op, ops_len), // missing key: no-op
                    },
                    None => None,
                };
                if let Some(rid) = rid {
                    let row = self.lock_row(table, rid, lock, ctx.rng());
                    let table_u32 = self.db.borrow().table(table).id;
                    let mode = match kind {
                        RowOpKind::Read => LockMode::S,
                        RowOpKind::ReadForUpdate => LockMode::U,
                        _ => LockMode::X,
                    };
                    let txn = self.txn.expect("txn open");
                    let req = self.db.borrow_mut().locks.acquire(
                        txn,
                        ctx.self_id(),
                        LockKey {
                            table: table_u32,
                            row,
                        },
                        mode,
                    );
                    let next_phase = if is_write {
                        Phase::Latch { row }
                    } else {
                        Phase::PageIo { row }
                    };
                    self.state = ClientState::InTxn {
                        op,
                        phase: next_phase,
                    };
                    if req == LockReq::Wait {
                        // Re-enter at the next phase once the releaser hands
                        // us the lock.
                        return Step::Demand(Demand::Block {
                            class: WaitClass::Lock,
                        });
                    }
                    return Step::Demand(Demand::Yield);
                }
                // Insert path: no pre-existing row to lock; it lands on the
                // table's tail.
                let row = {
                    let db = self.db.borrow();
                    db.table(table).layout.modeled_rows().saturating_sub(1)
                };
                self.state = ClientState::InTxn {
                    op,
                    phase: Phase::Latch { row },
                };
                Step::Demand(Demand::Yield)
            }
            Phase::Latch { row } => {
                let now = ctx.now();
                let (page, hold) = {
                    let db = self.db.borrow();
                    let t = db.table(table);
                    (
                        t.layout.page_of_row(row),
                        SimDuration::from_nanos(db.cost.page_latch_ns),
                    )
                };
                let res = self
                    .db
                    .borrow_mut()
                    .latches
                    .acquire(LatchKey::Page(page), now, hold);
                if let Err(until) = res {
                    return Step::Demand(Demand::Sleep {
                        dur: until.saturating_since(now),
                        class: WaitClass::PageLatch,
                    });
                }
                self.state = ClientState::InTxn {
                    op,
                    phase: Phase::PageIo { row },
                };
                Step::Demand(Demand::Yield)
            }
            Phase::PageIo { row } => {
                // Touch the index leaf and the row's data page.
                let (miss_bytes, dirty_bytes) = {
                    let mut db = self.db.borrow_mut();
                    let t = db.table(table);
                    let frac = row as f64 / t.layout.modeled_rows().max(1) as f64;
                    let leaf_page = t
                        .indexes
                        .get(index)
                        .or_else(|| t.indexes.first())
                        .map(|i| i.layout.leaf_page_of_fraction(frac.clamp(0.0, 1.0)))
                        .unwrap_or_else(|| t.layout.start_page());
                    let data_page = t.layout.page_of_row(row);
                    let a = db.bufferpool.access(leaf_page, 1, false);
                    let b = db.bufferpool.access(data_page, 1, is_write);
                    if is_write {
                        db.mark_dirty(data_page);
                    }
                    (
                        (a.miss_pages + b.miss_pages) * PAGE_BYTES,
                        (a.evicted_dirty_pages + b.evicted_dirty_pages) * PAGE_BYTES,
                    )
                };
                if dirty_bytes > 0 {
                    self.state = ClientState::InTxn {
                        op,
                        phase: Phase::ReadMissed { row, miss_bytes },
                    };
                    return Step::Demand(Demand::DeviceWriteAsync { bytes: dirty_bytes });
                }
                if miss_bytes > 0 {
                    // Page miss: the I/O path takes the buffer free-list
                    // latch, then reads.
                    let now = ctx.now();
                    let hold = SimDuration::from_nanos(self.db.borrow().cost.internal_latch_ns);
                    let res = self.db.borrow_mut().latches.acquire(
                        LatchKey::Internal(FREELIST_LATCH),
                        now,
                        hold,
                    );
                    if let Err(until) = res {
                        self.state = ClientState::InTxn {
                            op,
                            phase: Phase::ReadMissed { row, miss_bytes },
                        };
                        return Step::Demand(Demand::Sleep {
                            dur: until.saturating_since(now),
                            class: WaitClass::Latch,
                        });
                    }
                    self.state = ClientState::InTxn {
                        op,
                        phase: Phase::Compute { row },
                    };
                    return Step::Demand(Demand::DeviceRead {
                        bytes: miss_bytes,
                        class: WaitClass::PageIoLatch,
                    });
                }
                self.state = ClientState::InTxn {
                    op,
                    phase: Phase::Compute { row },
                };
                Step::Demand(Demand::Yield)
            }
            Phase::ReadMissed { row, miss_bytes } => {
                if miss_bytes > 0 {
                    self.state = ClientState::InTxn {
                        op,
                        phase: Phase::Compute { row },
                    };
                    return Step::Demand(Demand::DeviceRead {
                        bytes: miss_bytes,
                        class: WaitClass::PageIoLatch,
                    });
                }
                self.state = ClientState::InTxn {
                    op,
                    phase: Phase::Compute { row },
                };
                Step::Demand(Demand::Yield)
            }
            Phase::Compute { .. } => {
                // Apply the logical effect and charge the CPU work.
                let (instructions, mem) = {
                    let mut db = self.db.borrow_mut();
                    let mut mem = ctx.take_profile();
                    // Shared session state / plan cache / metadata.
                    mem.random(
                        db.session_region(),
                        db.cost.session_footprint_bytes,
                        db.cost.session_accesses_per_stmt,
                    );
                    let t = db.table(table);
                    let idx = &t.indexes[index.min(t.indexes.len().saturating_sub(1))];
                    idx.layout.probe_mem(&mut mem, 1);
                    // The row's cache lines.
                    let row_lines = (t.heap.schema().avg_row_bytes() / 64).max(1);
                    t.layout.random_rows_mem(&mut mem, row_lines);
                    let levels = idx.layout.levels() as u64;
                    let n_indexes = t.indexes.len() as u64;
                    let cost = db.cost.clone();
                    let mut instructions =
                        cost.stmt_overhead + levels * cost.btree_level + cost.scan_row;
                    // In crash-consistency mode the logged variants write
                    // the typed WAL record themselves (with the same
                    // modeled byte count); otherwise the plain append below
                    // keeps the byte accounting identical.
                    let capture = db.crash_consistency();
                    let mut logged = false;
                    match kind {
                        RowOpKind::Read | RowOpKind::ReadForUpdate => {}
                        RowOpKind::Update => {
                            instructions += cost.dml_row;
                            if let Some(k) = key {
                                let rid = db.table(table).indexes[index].btree.get(k).next();
                                if let Some(rid) = rid {
                                    let apply = |r: &mut Row| {
                                        for m in muts {
                                            m.apply(r);
                                        }
                                    };
                                    if capture {
                                        let txn = self.txn.expect("txn open");
                                        db.update_row_logged(txn, table, rid, apply);
                                        logged = true;
                                    } else {
                                        db.update_row(table, rid, apply);
                                    }
                                }
                            }
                            if !logged {
                                db.wal.append(cost.log_bytes_per_row);
                            }
                        }
                        RowOpKind::Delete => {
                            instructions += cost.dml_row * (1 + n_indexes);
                            if let Some(k) = key {
                                let rid = db.table(table).indexes[index].btree.get(k).next();
                                if let Some(rid) = rid {
                                    if capture {
                                        let txn = self.txn.expect("txn open");
                                        db.delete_row_logged(txn, table, rid);
                                        logged = true;
                                    } else {
                                        db.delete_row(table, rid);
                                    }
                                }
                            }
                            if !logged {
                                db.wal.append(cost.log_bytes_per_row);
                            }
                        }
                        RowOpKind::Insert => {
                            instructions += cost.dml_row * (1 + n_indexes);
                            if let Some(row) = insert_row {
                                // The program survives for abort re-runs, so
                                // the stored row is cloned once here — at the
                                // actual insertion — instead of on every
                                // phase poll.
                                if capture {
                                    let txn = self.txn.expect("txn open");
                                    db.insert_row_logged(txn, table, row.clone());
                                    logged = true;
                                } else {
                                    db.insert_row(table, row.clone());
                                }
                            }
                            if !logged {
                                db.wal.append(cost.log_bytes_per_row);
                            }
                        }
                    }
                    (instructions, mem)
                };
                let _ = self.advance_with(op, ops_len);
                Step::Demand(Demand::Compute { instructions, mem })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_read_range(
        &mut self,
        op: usize,
        phase: Phase,
        table: TableId,
        index: usize,
        lo: &Key,
        hi: &Key,
        limit: usize,
        model_rows: u64,
        ops_len: usize,
        ctx: &mut TaskCtx<'_>,
    ) -> Step {
        match phase {
            Phase::Lock => {
                // Range reads take no row locks; go straight to I/O.
                let (miss_bytes, rows) = {
                    let mut db = self.db.borrow_mut();
                    let t = db.table(table);
                    let idx = &t.indexes[index];
                    let mut rows = 0usize;
                    let mut first: Option<RowId> = None;
                    for (_, rid) in idx.btree.range(lo, hi).take(limit) {
                        if first.is_none() {
                            first = Some(rid);
                        }
                        rows += 1;
                    }
                    let total = idx.btree.len().max(1);
                    let frac = (rows as f64 / total as f64).clamp(0.0, 1.0);
                    let start_frac = first
                        .map(|r| (r.0 as f64 / t.heap.slot_count().max(1) as f64).clamp(0.0, 1.0))
                        .unwrap_or(0.0);
                    let (lstart, lpages) = idx.layout.leaf_scan_run(start_frac, frac.max(1e-9));
                    let a = db.bufferpool.access(lstart, lpages.max(1), false);
                    (a.miss_pages * PAGE_BYTES, rows)
                };
                self.state = ClientState::InTxn {
                    op,
                    phase: Phase::Compute { row: 0 },
                };
                if miss_bytes > 0 {
                    // Stash the row count via a compute right after the
                    // read; approximate by folding row work into Compute
                    // phase below using the same logic (re-resolved).
                    let _ = rows;
                    return Step::Demand(Demand::DeviceRead {
                        bytes: miss_bytes,
                        class: WaitClass::PageIoLatch,
                    });
                }
                Step::Demand(Demand::Yield)
            }
            Phase::Compute { .. } => {
                let (instructions, mem) = {
                    let db = self.db.borrow();
                    let t = db.table(table);
                    let idx = &t.indexes[index];
                    let mut mem = ctx.take_profile();
                    mem.random(
                        db.session_region(),
                        db.cost.session_footprint_bytes,
                        db.cost.session_accesses_per_stmt,
                    );
                    idx.layout.probe_mem(&mut mem, 1);
                    t.layout.random_rows_mem(&mut mem, model_rows.min(256));
                    (
                        db.cost.stmt_overhead
                            + idx.layout.levels() as u64 * db.cost.btree_level
                            + model_rows * db.cost.scan_row,
                        mem,
                    )
                };
                let _ = self.advance_with(op, ops_len);
                Step::Demand(Demand::Compute { instructions, mem })
            }
            _ => {
                // Other phases are unreachable for range reads.
                self.state = ClientState::InTxn {
                    op,
                    phase: Phase::Compute { row: 0 },
                };
                Step::Demand(Demand::Yield)
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowOpKind {
    Read,
    ReadForUpdate,
    Update,
    Delete,
    Insert,
}

/// Per-op execution context: the op's spec fields, borrowed from the
/// program (which is moved out of `self` while the op executes) so no
/// phase poll ever clones the spec.
struct OpCtx<'a> {
    op: usize,
    phase: Phase,
    table: TableId,
    index: usize,
    key: Option<&'a Key>,
    lock: LockSpec,
    kind: RowOpKind,
    muts: &'a [Mutation],
    insert_row: Option<&'a Row>,
    ops_len: usize,
}
