//! Presumed-abort two-phase commit: coordinator and participant state
//! machines.
//!
//! Both sides are *pure* state machines: they never touch a database, a
//! clock, or a network. Inputs are votes, decisions, acknowledgements, and
//! timer expirations; outputs are [`CoordAction`]s / [`PartAction`]s the
//! caller interprets (force a log record, send a message, resolve the local
//! transaction). This keeps the protocol unit-testable in isolation and
//! lets the cluster simulator drive it on virtual time while the chaos
//! verifier drives it through crash/restart schedules.
//!
//! The protocol is classic presumed abort:
//!
//! * The coordinator sends PREPARE to every participant and waits. All YES
//!   votes → force-log `CoordCommit`, then send COMMIT everywhere. Any NO
//!   vote or a vote timeout → send ABORT everywhere *without* logging
//!   (aborts are presumed).
//! * A participant force-logs `Prepare` before voting YES; from then on the
//!   transaction is in doubt until a decision arrives. If the decision
//!   never arrives (coordinator crashed), the participant periodically asks
//!   the coordinator — or, under coordinator failover, its peers
//!   (cooperative termination) — with capped exponential backoff.
//! * A restarted coordinator answers decision queries from its recovered
//!   log: `CoordCommit` durable → COMMIT, otherwise → ABORT (presumed).
//!   Once every participant acknowledged, `CoordEnd` lets it forget.

use std::collections::BTreeSet;

/// Coordinator-side protocol states for one distributed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordState {
    /// PREPARE sent; collecting votes.
    Preparing,
    /// Commit decision force-logged; collecting acknowledgements.
    Committing,
    /// Abort decision taken (presumed — never logged); collecting acks.
    Aborting,
    /// All participants acknowledged; transaction forgotten.
    Done,
}

/// What the coordinator asks its host to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordAction {
    /// Force `CoordCommit { txn, participants }` to the log before
    /// anything else happens.
    ForceCommitRecord,
    /// Send COMMIT to these participants.
    SendCommit(Vec<u32>),
    /// Send ABORT to these participants.
    SendAbort(Vec<u32>),
    /// Lazily log `CoordEnd` and drop the transaction.
    Forget,
}

/// Coordinator state machine for one distributed transaction.
#[derive(Debug, Clone)]
pub struct Coordinator {
    state: CoordState,
    participants: Vec<u32>,
    yes_votes: BTreeSet<u32>,
    acked: BTreeSet<u32>,
}

impl Coordinator {
    /// Starts a round with PREPARE already on the wire to `participants`.
    pub fn new(participants: Vec<u32>) -> Self {
        Coordinator {
            state: CoordState::Preparing,
            participants,
            yes_votes: BTreeSet::new(),
            acked: BTreeSet::new(),
        }
    }

    /// Current protocol state.
    pub fn state(&self) -> CoordState {
        self.state
    }

    /// The participant set.
    pub fn participants(&self) -> &[u32] {
        &self.participants
    }

    /// `true` once the commit decision is force-logged.
    pub fn decided_commit(&self) -> bool {
        self.state == CoordState::Committing
            || (self.state == CoordState::Done && self.yes_votes.len() == self.participants.len())
    }

    /// A vote arrived from `from`. Returns the actions to perform, in
    /// order.
    pub fn on_vote(&mut self, from: u32, yes: bool) -> Vec<CoordAction> {
        if self.state != CoordState::Preparing || !self.participants.contains(&from) {
            return Vec::new();
        }
        if !yes {
            // Presumed abort: no log write, just tell everyone.
            self.state = CoordState::Aborting;
            // The NO voter has already aborted locally; it needs no
            // message and owes no ack.
            self.acked.insert(from);
            return vec![CoordAction::SendAbort(self.pending_acks())];
        }
        self.yes_votes.insert(from);
        if self.yes_votes.len() == self.participants.len() {
            self.state = CoordState::Committing;
            return vec![
                CoordAction::ForceCommitRecord,
                CoordAction::SendCommit(self.participants.clone()),
            ];
        }
        Vec::new()
    }

    /// The vote-collection timer expired: missing votes count as NO.
    pub fn on_vote_timeout(&mut self) -> Vec<CoordAction> {
        if self.state != CoordState::Preparing {
            return Vec::new();
        }
        self.state = CoordState::Aborting;
        vec![CoordAction::SendAbort(self.pending_acks())]
    }

    /// A participant acknowledged the decision. Returns `Forget` when the
    /// last ack lands.
    pub fn on_ack(&mut self, from: u32) -> Vec<CoordAction> {
        if !matches!(self.state, CoordState::Committing | CoordState::Aborting) {
            return Vec::new();
        }
        self.acked.insert(from);
        if self.participants.iter().all(|p| self.acked.contains(p)) {
            self.state = CoordState::Done;
            return vec![CoordAction::Forget];
        }
        Vec::new()
    }

    /// The decision-retry timer expired: re-send the decision to
    /// participants that have not acknowledged yet.
    pub fn on_retry_timeout(&mut self) -> Vec<CoordAction> {
        match self.state {
            CoordState::Committing => vec![CoordAction::SendCommit(self.pending_acks())],
            CoordState::Aborting => vec![CoordAction::SendAbort(self.pending_acks())],
            _ => Vec::new(),
        }
    }

    fn pending_acks(&self) -> Vec<u32> {
        self.participants
            .iter()
            .copied()
            .filter(|p| !self.acked.contains(p))
            .collect()
    }
}

/// Participant-side protocol states for one distributed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartState {
    /// Work done, PREPARE received, `Prepare` record not yet durable.
    Voting,
    /// `Prepare` durable and YES vote sent: in doubt until a decision.
    InDoubt,
    /// COMMIT applied locally.
    Committed,
    /// ABORT applied locally (rolled back).
    Aborted,
}

/// What the participant asks its host to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartAction {
    /// Force `Prepare { txn, coordinator }` to the log.
    ForcePrepareRecord,
    /// Send the YES vote to the coordinator.
    SendYes,
    /// Send a NO vote (no log write; the txn rolls back locally first).
    SendNo,
    /// Log `Commit`, release locks, acknowledge.
    CommitLocally,
    /// Roll back with CLRs, log `Abort`, acknowledge.
    AbortLocally,
    /// Ask `target` for the outcome (decision query).
    QueryDecision {
        /// Node to ask: the coordinator, or a peer under cooperative
        /// termination.
        target: u32,
    },
}

/// Capped exponential backoff for decision queries, in virtual
/// microseconds: 500µs, 1ms, 2ms, ... capped at 8ms.
pub fn decision_backoff_us(attempt: u32) -> u64 {
    (500u64 << attempt.min(4)).min(8_000)
}

/// Participant state machine for one distributed transaction.
#[derive(Debug, Clone)]
pub struct Participant {
    state: PartState,
    coordinator: u32,
    attempts: u32,
}

impl Participant {
    /// PREPARE arrived from `coordinator`; the local work succeeded.
    pub fn new(coordinator: u32) -> Self {
        Participant {
            state: PartState::Voting,
            coordinator,
            attempts: 0,
        }
    }

    /// Current protocol state.
    pub fn state(&self) -> PartState {
        self.state
    }

    /// The coordinator this participant consults when in doubt.
    pub fn coordinator(&self) -> u32 {
        self.coordinator
    }

    /// Votes YES: force the prepare record, then send the vote. The
    /// transaction is in doubt from this point on.
    pub fn vote_yes(&mut self) -> Vec<PartAction> {
        if self.state != PartState::Voting {
            return Vec::new();
        }
        self.state = PartState::InDoubt;
        vec![PartAction::ForcePrepareRecord, PartAction::SendYes]
    }

    /// Votes NO (local failure): roll back immediately — a NO voter never
    /// waits for the decision (presumed abort lets it forget at once).
    pub fn vote_no(&mut self) -> Vec<PartAction> {
        if self.state != PartState::Voting {
            return Vec::new();
        }
        self.state = PartState::Aborted;
        vec![PartAction::AbortLocally, PartAction::SendNo]
    }

    /// The decision arrived.
    pub fn on_decision(&mut self, commit: bool) -> Vec<PartAction> {
        match (self.state, commit) {
            (PartState::InDoubt, true) => {
                self.state = PartState::Committed;
                vec![PartAction::CommitLocally]
            }
            (PartState::InDoubt, false) => {
                self.state = PartState::Aborted;
                vec![PartAction::AbortLocally]
            }
            // Duplicate decisions (retries after a lost ack) are no-ops.
            _ => Vec::new(),
        }
    }

    /// The decision-wait timer expired while in doubt: query the
    /// coordinator, or peer `failover_peer` if the coordinator is believed
    /// dead (cooperative termination). Returns the next backoff delay in
    /// virtual microseconds alongside the query action.
    pub fn on_decision_timeout(&mut self, failover_peer: Option<u32>) -> (Vec<PartAction>, u64) {
        if self.state != PartState::InDoubt {
            return (Vec::new(), 0);
        }
        let target = failover_peer.unwrap_or(self.coordinator);
        let delay = decision_backoff_us(self.attempts);
        self.attempts += 1;
        (vec![PartAction::QueryDecision { target }], delay)
    }

    /// Number of decision queries sent so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_yes_votes_commit_with_forced_record_first() {
        let mut c = Coordinator::new(vec![1, 2]);
        assert!(c.on_vote(1, true).is_empty());
        let actions = c.on_vote(2, true);
        assert_eq!(
            actions,
            vec![
                CoordAction::ForceCommitRecord,
                CoordAction::SendCommit(vec![1, 2]),
            ]
        );
        assert_eq!(c.state(), CoordState::Committing);
        assert!(c.on_ack(1).is_empty());
        assert_eq!(c.on_ack(2), vec![CoordAction::Forget]);
        assert_eq!(c.state(), CoordState::Done);
        assert!(c.decided_commit());
    }

    #[test]
    fn one_no_vote_aborts_without_logging() {
        let mut c = Coordinator::new(vec![1, 2, 3]);
        assert!(c.on_vote(1, true).is_empty());
        let actions = c.on_vote(2, false);
        // Only the nodes that have not already aborted get the message.
        assert_eq!(actions, vec![CoordAction::SendAbort(vec![1, 3])]);
        assert!(!actions.contains(&CoordAction::ForceCommitRecord));
        assert_eq!(c.state(), CoordState::Aborting);
        c.on_ack(1);
        assert_eq!(c.on_ack(3), vec![CoordAction::Forget]);
        assert!(!c.decided_commit());
    }

    #[test]
    fn vote_timeout_counts_as_no() {
        let mut c = Coordinator::new(vec![1, 2]);
        c.on_vote(1, true);
        assert_eq!(
            c.on_vote_timeout(),
            vec![CoordAction::SendAbort(vec![1, 2])]
        );
        assert_eq!(c.state(), CoordState::Aborting);
        // A straggler vote after the decision is ignored.
        assert!(c.on_vote(2, true).is_empty());
    }

    #[test]
    fn retry_timeout_resends_to_unacked_only() {
        let mut c = Coordinator::new(vec![1, 2]);
        c.on_vote(1, true);
        c.on_vote(2, true);
        c.on_ack(1);
        assert_eq!(c.on_retry_timeout(), vec![CoordAction::SendCommit(vec![2])]);
    }

    #[test]
    fn participant_yes_forces_prepare_before_voting() {
        let mut p = Participant::new(0);
        assert_eq!(
            p.vote_yes(),
            vec![PartAction::ForcePrepareRecord, PartAction::SendYes]
        );
        assert_eq!(p.state(), PartState::InDoubt);
        assert_eq!(p.on_decision(true), vec![PartAction::CommitLocally]);
        // A retried decision is a no-op.
        assert!(p.on_decision(true).is_empty());
        assert_eq!(p.state(), PartState::Committed);
    }

    #[test]
    fn participant_no_rolls_back_immediately() {
        let mut p = Participant::new(0);
        assert_eq!(
            p.vote_no(),
            vec![PartAction::AbortLocally, PartAction::SendNo]
        );
        assert_eq!(p.state(), PartState::Aborted);
        assert!(p.on_decision(false).is_empty());
    }

    #[test]
    fn indoubt_queries_back_off_and_fail_over() {
        let mut p = Participant::new(0);
        p.vote_yes();
        let (a1, d1) = p.on_decision_timeout(None);
        assert_eq!(a1, vec![PartAction::QueryDecision { target: 0 }]);
        let (_, d2) = p.on_decision_timeout(None);
        let (a3, d3) = p.on_decision_timeout(Some(7));
        assert_eq!(a3, vec![PartAction::QueryDecision { target: 7 }]);
        assert!(d1 < d2 && d2 < d3);
        // Backoff caps at 8ms.
        for _ in 0..10 {
            p.on_decision_timeout(None);
        }
        let (_, capped) = p.on_decision_timeout(None);
        assert_eq!(capped, 8_000);
    }
}
