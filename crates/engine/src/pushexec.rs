//! Push-based, morsel-driven parallel executor.
//!
//! The volcano path ([`crate::exec::execute`]) walks the plan tree
//! pull-style and models parallelism with pre-split worker traces. This
//! module replaces it for analytical plans: the [`PhysNode`] tree is
//! decomposed at pipeline breakers (hash-join build, aggregation, sort)
//! into a sequence of pipelines, each of which pushes fixed-size columnar
//! morsels ([`Batch`]es) from a source through a chain of
//! [`PhysicalOperator`]s into a sink. At simulation time each pipeline
//! becomes a [`MorselStage`]: a shared queue of per-morsel demand traces
//! claimed dynamically by `dop` worker partitions, so DOP, memory-grant,
//! and LLC sensitivity emerge from actual parallel execution rather than
//! modeled barriers.
//!
//! Execution is two-phase, mirroring the engine's logical/paper-scale
//! split (DESIGN.md §1):
//!
//! 1. **Logical pass** — the source materializes its logical rows, splits
//!    them into morsels, and pushes each batch through the operator chain
//!    in morsel order. Operators transform batches (vectorized expression
//!    evaluation via [`crate::vexpr`]) and record per-morsel input counts.
//! 2. **Demand synthesis** — once totals are known (hash-table bytes,
//!    spill volumes), each operator's `finalize` writes its paper-scale
//!    per-morsel instruction and memory demands into a [`FinalizeCtx`],
//!    which assembles one fused compute burst per morsel plus the page
//!    runs of scan sources and any spill stages.
//!
//! Rows produced are byte-identical to the volcano path: operators process
//! rows in morsel order (= volcano row order), so hash-table insertion
//! sequences, aggregation group order, and sort stability all agree, and
//! results are invariant across DOP settings by construction. Plans with
//! nested-loop joins or index-range sources return `None` from
//! [`execute_push`] and fall back to the volcano path.

use crate::batch::{Batch, ColumnVector};
use crate::db::{Database, TableId};
use crate::exec::{
    collect_cols, key_sig, key_sig_into, scale_profile, AggAcc, DemandTrace, KeyPart, MorselStage,
    QueryExecution, TraceItem,
};
use crate::expr::Expr;
use crate::optimizer::workspace_width;
use crate::physplan::{PhysNode, PhysPlan};
use crate::plan::{AggSpec, JoinKind};
use crate::vexpr::{compile, filter_mask, PhysicalExpr};
use dbsens_hwsim::fx::FxHashMap;
use dbsens_hwsim::mem::{AccessPattern, MemProfile, Region};
use dbsens_storage::value::{Row, Value};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Target morsel size in *modeled* (paper-scale) rows.
const MORSEL_ROWS: f64 = 1_000_000.0;

/// Base region id for transient per-query structures; matches the volcano
/// executor so both paths share the allocator-reuse model.
const TRANSIENT_REGION_BASE: u64 = 1 << 40;

/// Result of pushing a batch into an operator.
#[derive(Debug)]
pub enum PollPush {
    /// The operator produced output for this input; push it downstream.
    Continue(Batch),
    /// The operator consumed the batch (sinks accumulate state and emit
    /// nothing until `finalize`).
    NeedsMore,
    /// Like `Continue`, but the operator is saturated (e.g. a `Top` that
    /// has its n rows). The executor keeps pushing remaining morsels so
    /// upstream demand accounting stays faithful to the volcano path.
    Finished(Batch),
}

/// One operator in a push pipeline.
///
/// Operators receive each morsel exactly once via [`push`] during the
/// logical pass (in morsel order, so order-sensitive state like hash-table
/// insertion sequences matches the volcano executor) and contribute their
/// paper-scale demand in [`finalize`] once pipeline totals are known.
///
/// [`push`]: PhysicalOperator::push
/// [`finalize`]: PhysicalOperator::finalize
pub trait PhysicalOperator: fmt::Debug {
    /// Processes one morsel on behalf of `partition`.
    fn push(&mut self, partition: usize, batch: Batch) -> PollPush;

    /// Completes the operator after all morsels were pushed: finishes any
    /// buffered logical work (building the hash table, sorting) and
    /// records per-morsel demand in `fin`. Sinks that produce the query's
    /// final result return its rows; all other operators return `None`.
    fn finalize(&mut self, fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>>;
}

/// Demand-synthesis context handed to [`PhysicalOperator::finalize`].
///
/// Carries the engine database (cost model and layouts), the query's
/// grant state, and the per-morsel accumulators of the pipeline being
/// finalized. Operators add instructions and memory patterns per morsel;
/// the executor fuses each morsel's contributions into a single compute
/// burst.
pub struct FinalizeCtx<'a> {
    /// The database whose cost model and layouts price the demand.
    pub db: &'a Database,
    /// Effective degree of parallelism of the query.
    pub dop: usize,
    grant: u64,
    desired: u64,
    spilled: u64,
    next_region: u64,
    acct: PipelineAcct,
}

#[derive(Default)]
struct PipelineAcct {
    morsels: usize,
    instr: Vec<f64>,
    mem: Vec<MemProfile>,
    lead_io: Vec<Vec<TraceItem>>,
    extra: Vec<DemandTrace>,
    post: Vec<MorselStage>,
}

impl<'a> FinalizeCtx<'a> {
    /// Number of morsels in the pipeline being finalized.
    pub fn morsels(&self) -> usize {
        self.acct.morsels
    }

    /// Paper-scale rows represented by `logical` logical rows.
    pub fn modeled(&self, logical: u64) -> f64 {
        logical as f64 * self.db.row_scale
    }

    /// Adds `instructions` to morsel `k`'s fused compute burst.
    pub fn add_instr(&mut self, k: usize, instructions: f64) {
        self.acct.instr[k] += instructions;
    }

    /// The memory profile of morsel `k`'s fused compute burst.
    pub fn mem_mut(&mut self, k: usize) -> &mut MemProfile {
        &mut self.acct.mem[k]
    }

    /// Workspace available to an operator wanting `want` bytes, sharing
    /// the grant proportionally; returns bytes to spill (0 if it fits).
    /// Same arithmetic as the volcano executor.
    pub fn spill_share(&mut self, want: u64) -> u64 {
        if want == 0 || self.desired == 0 {
            return 0;
        }
        let share = (self.grant as f64 * want as f64 / self.desired as f64) as u64;
        if want > share {
            let spill = want - share;
            self.spilled += spill;
            spill
        } else {
            0
        }
    }

    /// Records extra spill traffic (probe-side grace-join partitions)
    /// not produced by [`spill_share`].
    ///
    /// [`spill_share`]: FinalizeCtx::spill_share
    pub fn add_spilled(&mut self, bytes: u64) {
        self.spilled += bytes;
    }

    /// A fresh transient memory region (hash table, sort run).
    pub fn fresh_region(&mut self) -> Region {
        self.next_region += 1;
        Region::new(self.next_region)
    }

    /// Splits `bytes` of spill I/O into claimable chunk morsels (volcano's
    /// per-worker spill granularity).
    fn spill_chunks(&self, bytes: u64, write: bool) -> Vec<DemandTrace> {
        if bytes == 0 {
            return Vec::new();
        }
        let chunks = (bytes / (8 << 20)).clamp(self.dop as u64, 256) as usize;
        let per = bytes / chunks as u64;
        let rem = bytes - per * chunks as u64;
        (0..chunks)
            .filter_map(|i| {
                let b = per + if i == 0 { rem } else { 0 };
                if b == 0 {
                    return None;
                }
                let item = if write {
                    TraceItem::SpillWrite { bytes: b }
                } else {
                    TraceItem::SpillRead { bytes: b }
                };
                Some(DemandTrace { items: vec![item] })
            })
            .collect()
    }

    /// Appends spill-write chunks as extra morsels of the current stage
    /// (aggregate/sort run writes overlap the pipeline's compute).
    pub fn extra_spill_write(&mut self, bytes: u64) {
        let chunks = self.spill_chunks(bytes, true);
        self.acct.extra.extend(chunks);
    }

    /// Appends a barrier stage containing only spill-write chunks (the
    /// grace-join pass-1 flush that must finish before probing).
    pub fn post_spill_write(&mut self, bytes: u64) {
        let morsels = self.spill_chunks(bytes, true);
        if !morsels.is_empty() {
            let partitions = self.dop;
            self.acct.post.push(MorselStage {
                partitions,
                morsels,
            });
        }
    }

    /// Appends a barrier stage that reads `bytes` of spilled workspace
    /// back and replays `instructions` of merge/rebuild compute with the
    /// given memory behaviour, split across the partitions.
    pub fn post_spill_read(&mut self, bytes: u64, instructions: f64, mem: MemProfile) {
        let mut morsels = self.spill_chunks(bytes, false);
        let total = instructions.max(0.0) as u64;
        if total > 0 || !mem.is_empty() {
            let n = self.dop.max(1);
            let per_mem = scale_profile(&mem, 1.0 / n as f64);
            for _ in 0..n {
                morsels.push(DemandTrace {
                    items: vec![TraceItem::Compute {
                        instructions: total / n as u64,
                        mem: per_mem.clone(),
                    }],
                });
            }
        }
        if !morsels.is_empty() {
            let partitions = self.dop;
            self.acct.post.push(MorselStage {
                partitions,
                morsels,
            });
        }
    }

    fn begin_pipeline(&mut self, morsels: usize) {
        self.acct = PipelineAcct {
            morsels,
            instr: vec![0.0; morsels],
            mem: vec![MemProfile::new(); morsels],
            lead_io: vec![Vec::new(); morsels],
            extra: Vec::new(),
            post: Vec::new(),
        };
    }

    /// Drains the pipeline accounting into stages: the main morsel stage
    /// (leading page runs + one fused compute per morsel, plus any extra
    /// spill-write morsels) followed by barrier stages.
    fn take_stages(&mut self) -> Vec<MorselStage> {
        let acct = std::mem::take(&mut self.acct);
        let mut morsels = Vec::new();
        for (k, io) in acct.lead_io.into_iter().enumerate() {
            let mut items = io;
            let instr = acct.instr[k];
            let mem = acct.mem[k].clone();
            if instr > 0.0 || !mem.is_empty() {
                items.push(TraceItem::Compute {
                    instructions: instr.max(0.0) as u64,
                    mem,
                });
            }
            if !items.is_empty() {
                morsels.push(DemandTrace { items });
            }
        }
        morsels.extend(acct.extra);
        let mut out = Vec::new();
        if !morsels.is_empty() {
            out.push(MorselStage {
                partitions: self.dop,
                morsels,
            });
        }
        out.extend(acct.post);
        out
    }

    /// Distributes a source's total demand across morsels proportionally
    /// to their logical row counts, slicing each page run contiguously.
    fn source_split(
        &mut self,
        n_src: &[usize],
        instr_total: f64,
        mem: &MemProfile,
        runs: &[(u64, u64)],
    ) {
        let total: usize = n_src.iter().sum();
        for (k, &n) in n_src.iter().enumerate() {
            let f = if total == 0 {
                if k == 0 {
                    1.0
                } else {
                    continue;
                }
            } else if n == 0 {
                continue;
            } else {
                n as f64 / total as f64
            };
            self.acct.instr[k] += instr_total * f;
            add_scaled(&mut self.acct.mem[k], mem, f);
        }
        for &(start, pages) in runs {
            if pages == 0 {
                continue;
            }
            if total == 0 {
                self.acct.lead_io[0].push(TraceItem::PageRun {
                    start,
                    pages,
                    write: false,
                });
                continue;
            }
            let mut cum: u64 = 0;
            for (k, &n) in n_src.iter().enumerate() {
                let lo = pages * cum / total as u64;
                cum += n as u64;
                let hi = pages * cum / total as u64;
                if hi > lo {
                    self.acct.lead_io[k].push(TraceItem::PageRun {
                        start: start + lo,
                        pages: hi - lo,
                        write: false,
                    });
                }
            }
        }
    }
}

/// Adds `src`'s patterns to `dst` scaled by `f` (same rounding as the
/// volcano executor's `scale_profile`).
fn add_scaled(dst: &mut MemProfile, src: &MemProfile, f: f64) {
    for p in src.patterns() {
        match *p {
            AccessPattern::Stream { region, bytes } => {
                dst.stream(region, (bytes as f64 * f) as u64);
            }
            AccessPattern::Random {
                region,
                footprint,
                count,
            } => {
                dst.random(region, footprint, ((count as f64 * f) as u64).max(1));
            }
        }
    }
}

/// How many morsels a pipeline over `modeled_rows` paper-scale rows is
/// split into at degree of parallelism `dop`: roughly one per
/// [`MORSEL_ROWS`], at least two per partition for load balance, but never
/// finer than quarter-morsels and never more than 192.
fn morsel_count(modeled_rows: f64, dop: usize) -> usize {
    let by_size = (modeled_rows / MORSEL_ROWS).ceil() as usize;
    let quarter = (modeled_rows / (MORSEL_ROWS / 4.0)).ceil() as usize;
    by_size.max(2 * dop).min(quarter.max(1)).clamp(1, 192)
}

/// Splits `rows` into exactly `m` contiguous chunks of near-equal size
/// (earlier chunks take the remainder).
fn split_chunks(mut rows: Vec<Row>, m: usize) -> Vec<Vec<Row>> {
    let total = rows.len();
    let base = total / m;
    let rem = total % m;
    let mut out: Vec<Vec<Row>> = Vec::with_capacity(m);
    // Split from the back so each chunk is a cheap tail split; chunk `k`
    // gets `base` rows plus one of the remainder when `k < rem`.
    for k in (1..m).rev() {
        let size = base + usize::from(k < rem);
        let at = rows.len() - size;
        out.push(rows.split_off(at));
    }
    out.push(rows);
    out.reverse();
    out
}

/// A pipeline source: where the logical rows come from and what
/// paper-scale I/O + compute reading them costs.
#[derive(Debug)]
enum PSource {
    /// Heap (rowstore) scan; filter/projection hoisted into the chain.
    Seq {
        table: TableId,
        filter: Option<Expr>,
    },
    /// Columnstore scan with segment elimination.
    Cs {
        table: TableId,
        filter: Option<Expr>,
        elim: Option<(usize, Option<Value>, Option<Value>)>,
        project: Option<Vec<usize>>,
    },
    /// Output buffer of an upstream pipeline breaker (free to re-read:
    /// the intermediate is in memory, like the volcano path).
    Buffer(Rc<RefCell<Vec<Row>>>),
}

impl PSource {
    /// Materializes the logical rows (pre-filter for scans, exactly as
    /// the volcano executor does) and the total modeled rows used for
    /// morsel sizing.
    fn materialize(&self, db: &Database) -> (Vec<Row>, f64) {
        match self {
            PSource::Seq { table, .. } => {
                let t = db.table(*table);
                let rows = t.heap.iter().map(|(_, r)| r.clone()).collect();
                (rows, t.layout.modeled_rows() as f64)
            }
            PSource::Cs { table, elim, .. } => {
                let t = db.table(*table);
                let cs = t.columnstore.as_ref().unwrap_or_else(|| {
                    panic!("columnstore scan on {} without columnstore", t.name)
                });
                let (elim_arg, frac) = cs_elim(db, *table, elim.as_ref());
                let rows = cs.store.scan_rows(elim_arg);
                (rows, t.layout.modeled_rows() as f64 * frac)
            }
            PSource::Buffer(buf) => {
                let rows = std::mem::take(&mut *buf.borrow_mut());
                let modeled = rows.len() as f64 * db.row_scale;
                (rows, modeled)
            }
        }
    }

    /// Writes the source's per-morsel demand (page runs + scan compute)
    /// given the logical rows each morsel received.
    fn account(&self, db: &Database, n_src: &[usize], fin: &mut FinalizeCtx<'_>) {
        match self {
            PSource::Buffer(_) => {}
            PSource::Seq { table, filter } => {
                let t = db.table(*table);
                let modeled_rows = t.layout.modeled_rows() as f64;
                let expr_nodes = filter.as_ref().map_or(0, Expr::node_count);
                let instr =
                    modeled_rows * (db.cost.scan_row + expr_nodes * db.cost.expr_node) as f64;
                let mut mem = MemProfile::new();
                t.layout.scan_mem(&mut mem, 1.0);
                mem.random(
                    db.batch_region(),
                    db.cost.batch_footprint_bytes,
                    (modeled_rows as u64).max(1),
                );
                fin.source_split(n_src, instr, &mem, &[t.layout.scan_run()]);
            }
            PSource::Cs {
                table,
                filter,
                elim,
                project,
            } => {
                let t = db.table(*table);
                let cs = t.columnstore.as_ref().expect("checked in materialize");
                let (_, frac) = cs_elim(db, *table, elim.as_ref());
                let schema_len = t.heap.schema().len();
                let cols: Vec<usize> = match project {
                    Some(p) => {
                        let mut c = p.clone();
                        if let Some(f) = filter {
                            collect_cols(f, &mut c);
                        }
                        if let Some((ec, _, _)) = elim {
                            c.push(*ec);
                        }
                        c.sort_unstable();
                        c.dedup();
                        c
                    }
                    None => (0..schema_len).collect(),
                };
                let modeled_rows = t.layout.modeled_rows() as f64 * frac;
                let expr_nodes = filter.as_ref().map_or(0, Expr::node_count);
                let instr = modeled_rows
                    * (cols.len() as u64 * db.cost.columnstore_row_per_col
                        + expr_nodes * db.cost.expr_node) as f64;
                let mut mem = MemProfile::new();
                let mut runs = Vec::with_capacity(cols.len());
                for &c in &cols {
                    cs.layout.column_scan_mem(&mut mem, c, frac);
                    runs.push(cs.layout.column_scan_run(c, frac));
                }
                mem.random(
                    db.batch_region(),
                    db.cost.batch_footprint_bytes,
                    ((modeled_rows as u64) * db.cost.batch_accesses_per_row).max(1),
                );
                fin.source_split(n_src, instr, &mem, &runs);
            }
        }
    }
}

/// Borrowed segment-elimination predicate: column index plus optional
/// low/high bounds.
type ElimBounds<'e> = Option<(usize, Option<&'e Value>, Option<&'e Value>)>;

/// Segment-elimination argument and surviving fraction for a columnstore
/// scan (volcano's exact arithmetic).
fn cs_elim<'e>(
    db: &Database,
    table: TableId,
    elim: Option<&'e (usize, Option<Value>, Option<Value>)>,
) -> (ElimBounds<'e>, f64) {
    let t = db.table(table);
    let cs = t.columnstore.as_ref().expect("columnstore present");
    match elim {
        Some((c, lo, hi)) => {
            let total = cs.store.groups().len().max(1);
            let surviving = cs
                .store
                .groups()
                .iter()
                .filter(|g| g.segment(*c).overlaps(lo.as_ref(), hi.as_ref()))
                .count();
            (
                Some((*c, lo.as_ref(), hi.as_ref())),
                surviving as f64 / total as f64,
            )
        }
        None => (None, 1.0),
    }
}

/// One push pipeline: a source feeding a chain of operators whose last
/// element is a sink (pipeline breaker or result collector).
#[derive(Debug)]
struct Pipeline {
    source: PSource,
    ops: Vec<Box<dyn PhysicalOperator>>,
}

/// Executes a physical plan through the push pipelines, or returns `None`
/// when the plan uses operators the push path does not cover (nested-loop
/// joins, index-range scans) and the caller should fall back to
/// [`crate::exec::execute`].
///
/// The returned [`QueryExecution`] carries the same logical rows the
/// volcano path would produce (byte-identical, including order) with
/// `pipelines` populated and `stages` empty.
pub fn execute_push(db: &Database, plan: &PhysPlan) -> Option<QueryExecution> {
    if !push_supported(&plan.root) {
        return None;
    }
    let dop = plan.dop.max(1);
    let mut builder = PipelineBuilder {
        pipelines: Vec::new(),
    };
    let (source, mut ops) = builder.decompose(&plan.root);
    // A breaker at the root already materialized the result; otherwise a
    // collector sink terminates the final pipeline.
    let direct: Option<Rc<RefCell<Vec<Row>>>> = match (&source, ops.is_empty()) {
        (PSource::Buffer(buf), true) => Some(buf.clone()),
        _ => None,
    };
    if direct.is_none() {
        ops.push(Box::new(CollectSink { rows: Vec::new() }));
        builder.pipelines.push(Pipeline { source, ops });
    }

    let mut fin = FinalizeCtx {
        db,
        dop,
        grant: plan.memory_grant,
        desired: plan.desired_memory.max(1),
        spilled: 0,
        next_region: TRANSIENT_REGION_BASE,
        acct: PipelineAcct::default(),
    };
    let mut stages: Vec<MorselStage> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    for pipeline in &mut builder.pipelines {
        // Phase 1: logical pass, single morsel stream in order.
        let (src_rows, modeled) = pipeline.source.materialize(db);
        let m = morsel_count(modeled, dop);
        let chunks = split_chunks(src_rows, m);
        let n_src: Vec<usize> = chunks.iter().map(Vec::len).collect();
        for (k, chunk) in chunks.into_iter().enumerate() {
            let mut batch = Batch::from_rows(chunk);
            for op in &mut pipeline.ops {
                match op.push(k % dop, batch) {
                    PollPush::Continue(b) | PollPush::Finished(b) => batch = b,
                    PollPush::NeedsMore => break,
                }
            }
        }
        // Phase 2: demand synthesis now that totals are known.
        fin.begin_pipeline(m);
        pipeline.source.account(db, &n_src, &mut fin);
        for op in &mut pipeline.ops {
            if let Some(out) = op.finalize(&mut fin) {
                rows = out;
            }
        }
        stages.extend(fin.take_stages());
    }
    if let Some(buf) = direct {
        rows = std::mem::take(&mut *buf.borrow_mut());
    }
    if dop > 1 {
        // Parallel startup cost, one burst per partition, ahead of the
        // first stage's work queue.
        let startup: Vec<DemandTrace> = (0..dop)
            .map(|_| DemandTrace {
                items: vec![TraceItem::Compute {
                    instructions: db.cost.parallel_startup,
                    mem: MemProfile::new(),
                }],
            })
            .collect();
        if let Some(first) = stages.first_mut() {
            first.morsels.splice(0..0, startup);
        } else {
            stages.push(MorselStage {
                partitions: dop,
                morsels: startup,
            });
        }
    }
    Some(QueryExecution {
        rows,
        stages: Vec::new(),
        pipelines: stages,
        dop,
        grant: plan.memory_grant,
        desired: plan.desired_memory,
        spilled_bytes: fin.spilled,
    })
}

/// Whether the push path covers every operator of a plan.
fn push_supported(n: &PhysNode) -> bool {
    match n {
        PhysNode::SeqScan { .. } | PhysNode::ColumnstoreScan { .. } => true,
        PhysNode::IndexRange { .. } | PhysNode::NlJoin { .. } => false,
        PhysNode::HashJoin { probe, build, .. } => push_supported(probe) && push_supported(build),
        PhysNode::HashAgg { input, .. }
        | PhysNode::StreamAgg { input, .. }
        | PhysNode::Sort { input, .. }
        | PhysNode::Top { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::Filter { input, .. } => push_supported(input),
    }
}

struct PipelineBuilder {
    pipelines: Vec<Pipeline>,
}

impl PipelineBuilder {
    /// Decomposes a subtree into the (source, operator-chain) pair that
    /// streams its output, emitting complete pipelines for every breaker
    /// encountered (build sides first, matching volcano stage order).
    fn decompose(&mut self, node: &PhysNode) -> (PSource, Vec<Box<dyn PhysicalOperator>>) {
        match node {
            PhysNode::SeqScan {
                table,
                filter,
                project,
                ..
            } => {
                let mut ops: Vec<Box<dyn PhysicalOperator>> = Vec::new();
                if let Some(f) = filter {
                    // The scan formula already charges the filter's
                    // expression nodes; the hoisted operator is free.
                    ops.push(Box::new(FilterOp::new(f.clone(), false)));
                }
                if let Some(p) = project {
                    ops.push(Box::new(ProjectCols { cols: p.clone() }));
                }
                (
                    PSource::Seq {
                        table: *table,
                        filter: filter.clone(),
                    },
                    ops,
                )
            }
            PhysNode::ColumnstoreScan {
                table,
                filter,
                elim,
                project,
                ..
            } => {
                let mut ops: Vec<Box<dyn PhysicalOperator>> = Vec::new();
                if let Some(f) = filter {
                    ops.push(Box::new(FilterOp::new(f.clone(), false)));
                }
                if let Some(p) = project {
                    ops.push(Box::new(ProjectCols { cols: p.clone() }));
                }
                (
                    PSource::Cs {
                        table: *table,
                        filter: filter.clone(),
                        elim: elim.clone(),
                        project: project.clone(),
                    },
                    ops,
                )
            }
            PhysNode::HashJoin {
                probe,
                build,
                probe_keys,
                build_keys,
                kind,
                swapped,
                ..
            } => {
                let (bsrc, mut bops) = self.decompose(build);
                let state = Rc::new(RefCell::new(JoinState::default()));
                bops.push(Box::new(BuildSink {
                    keys: build_keys.clone(),
                    state: state.clone(),
                    inputs: Vec::new(),
                }));
                self.pipelines.push(Pipeline {
                    source: bsrc,
                    ops: bops,
                });
                let (psrc, mut pops) = self.decompose(probe);
                pops.push(Box::new(HashProbe {
                    state,
                    probe_keys: probe_keys.clone(),
                    kind: *kind,
                    swapped: *swapped,
                    inputs: Vec::new(),
                    key_scratch: Vec::new(),
                }));
                (psrc, pops)
            }
            PhysNode::HashAgg {
                input,
                group_by,
                aggs,
                ..
            } => {
                let (src, mut ops) = self.decompose(input);
                let out = Rc::new(RefCell::new(Vec::new()));
                ops.push(Box::new(AggSink::new(
                    group_by.clone(),
                    aggs.clone(),
                    out.clone(),
                )));
                self.pipelines.push(Pipeline { source: src, ops });
                (PSource::Buffer(out), Vec::new())
            }
            PhysNode::StreamAgg { input, aggs } => {
                let (src, mut ops) = self.decompose(input);
                let out = Rc::new(RefCell::new(Vec::new()));
                ops.push(Box::new(StreamAggSink::new(aggs.clone(), out.clone())));
                self.pipelines.push(Pipeline { source: src, ops });
                (PSource::Buffer(out), Vec::new())
            }
            PhysNode::Sort { input, keys, .. } => {
                let (src, mut ops) = self.decompose(input);
                let out = Rc::new(RefCell::new(Vec::new()));
                ops.push(Box::new(SortSink {
                    keys: keys.clone(),
                    rows: Vec::new(),
                    inputs: Vec::new(),
                    out: out.clone(),
                }));
                self.pipelines.push(Pipeline { source: src, ops });
                (PSource::Buffer(out), Vec::new())
            }
            PhysNode::Top { input, n } => {
                let (src, mut ops) = self.decompose(input);
                ops.push(Box::new(TopGate { remaining: *n }));
                (src, ops)
            }
            PhysNode::Project { input, exprs } => {
                let (src, mut ops) = self.decompose(input);
                ops.push(Box::new(ProjectExprs::new(exprs.clone())));
                (src, ops)
            }
            PhysNode::Filter { input, pred } => {
                let (src, mut ops) = self.decompose(input);
                ops.push(Box::new(FilterOp::new(pred.clone(), true)));
                (src, ops)
            }
            PhysNode::IndexRange { .. } | PhysNode::NlJoin { .. } => {
                unreachable!("push_supported() rejects these plans")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass-through operators.
// ---------------------------------------------------------------------------

/// Vectorized filter; `charge` is false when hoisted from a scan whose
/// source formula already prices the predicate.
struct FilterOp {
    pred: Expr,
    compiled: Box<dyn PhysicalExpr>,
    charge: bool,
    inputs: Vec<u64>,
}

impl FilterOp {
    fn new(pred: Expr, charge: bool) -> Self {
        let compiled = compile(&pred);
        FilterOp {
            pred,
            compiled,
            charge,
            inputs: Vec::new(),
        }
    }
}

impl fmt::Debug for FilterOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FilterOp({})", self.pred)
    }
}

impl PhysicalOperator for FilterOp {
    fn push(&mut self, _partition: usize, mut batch: Batch) -> PollPush {
        let n = batch.num_rows() as u64;
        self.inputs.push(n);
        if n == 0 {
            return PollPush::Continue(batch);
        }
        let keep = filter_mask(self.compiled.as_ref(), &batch);
        batch.select(keep);
        PollPush::Continue(batch)
    }

    fn finalize(&mut self, fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        if self.charge {
            let nodes = self.pred.node_count();
            for (k, &n) in self.inputs.iter().enumerate() {
                if n > 0 {
                    fin.add_instr(k, fin.modeled(n) * (nodes * fin.db.cost.expr_node) as f64);
                }
            }
        }
        None
    }
}

/// Column projection hoisted from a scan; free (the scan's per-column
/// pricing covers it).
#[derive(Debug)]
struct ProjectCols {
    cols: Vec<usize>,
}

impl PhysicalOperator for ProjectCols {
    fn push(&mut self, _partition: usize, batch: Batch) -> PollPush {
        if batch.num_rows() == 0 {
            return PollPush::Continue(Batch::empty());
        }
        PollPush::Continue(batch.project(&self.cols))
    }

    fn finalize(&mut self, _fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        None
    }
}

/// Expression projection ([`PhysNode::Project`]); charges expression-node
/// cost per input row like the volcano path.
struct ProjectExprs {
    exprs: Vec<Expr>,
    compiled: Vec<Box<dyn PhysicalExpr>>,
    inputs: Vec<u64>,
}

impl ProjectExprs {
    fn new(exprs: Vec<Expr>) -> Self {
        let compiled = exprs.iter().map(|e| compile(e)).collect();
        ProjectExprs {
            exprs,
            compiled,
            inputs: Vec::new(),
        }
    }
}

impl fmt::Debug for ProjectExprs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProjectExprs({} exprs)", self.exprs.len())
    }
}

impl PhysicalOperator for ProjectExprs {
    fn push(&mut self, _partition: usize, batch: Batch) -> PollPush {
        let n = batch.num_rows() as u64;
        self.inputs.push(n);
        if n == 0 {
            return PollPush::Continue(Batch::empty());
        }
        let cols = self.compiled.iter().map(|e| e.evaluate(&batch)).collect();
        PollPush::Continue(Batch::from_columns(cols))
    }

    fn finalize(&mut self, fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        let nodes: u64 = self.exprs.iter().map(Expr::node_count).sum();
        for (k, &n) in self.inputs.iter().enumerate() {
            if n > 0 {
                fin.add_instr(k, fin.modeled(n) * (nodes * fin.db.cost.expr_node) as f64);
            }
        }
        None
    }
}

/// `Top` gate: passes the first `n` rows of the stream and empties the
/// rest. Free, like the volcano path's truncate.
#[derive(Debug)]
struct TopGate {
    remaining: usize,
}

impl PhysicalOperator for TopGate {
    fn push(&mut self, _partition: usize, mut batch: Batch) -> PollPush {
        let n = batch.num_rows();
        if n == 0 {
            return PollPush::Continue(Batch::empty());
        }
        if self.remaining == 0 {
            return PollPush::Finished(Batch::empty());
        }
        if n > self.remaining {
            batch.select((0..self.remaining as u32).collect());
            self.remaining = 0;
            return PollPush::Finished(batch);
        }
        self.remaining -= n;
        PollPush::Continue(batch)
    }

    fn finalize(&mut self, _fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        None
    }
}

// ---------------------------------------------------------------------------
// Hash join.
// ---------------------------------------------------------------------------

/// Shared state between a join's build-side sink and its probe operator.
#[derive(Debug, Default)]
struct JoinState {
    build_rows: Vec<Row>,
    ht: FxHashMap<Vec<KeyPart>, Vec<usize>>,
    build_modeled: f64,
    width: u64,
    ht_bytes: u64,
    spill: u64,
    ht_region: Option<Region>,
}

/// Build-side sink: accumulates rows in arrival order (= volcano's build
/// row order) and erects the hash table at finalize.
#[derive(Debug)]
struct BuildSink {
    keys: Vec<usize>,
    state: Rc<RefCell<JoinState>>,
    inputs: Vec<u64>,
}

impl PhysicalOperator for BuildSink {
    fn push(&mut self, _partition: usize, batch: Batch) -> PollPush {
        let n = batch.num_rows() as u64;
        self.inputs.push(n);
        if n > 0 {
            self.state.borrow_mut().build_rows.extend(batch.to_rows());
        }
        PollPush::NeedsMore
    }

    fn finalize(&mut self, fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        let mut st = self.state.borrow_mut();
        let mut ht: FxHashMap<Vec<KeyPart>, Vec<usize>> = FxHashMap::default();
        for (i, r) in st.build_rows.iter().enumerate() {
            ht.entry(key_sig(r, &self.keys)).or_default().push(i);
        }
        st.ht = ht;
        let total: u64 = self.inputs.iter().sum();
        st.build_modeled = fin.modeled(total);
        st.width = st
            .build_rows
            .first()
            .map_or(8, |r| workspace_width(r.len()));
        st.ht_bytes =
            (st.build_modeled * (fin.db.cost.hash_bytes_per_row + st.width) as f64) as u64;
        st.spill = fin.spill_share(st.ht_bytes);
        let region = fin.fresh_region();
        st.ht_region = Some(region);
        let (ht_bytes, spill) = (st.ht_bytes, st.spill);
        let batch_region = fin.db.batch_region();
        let batch_fp = fin.db.cost.batch_footprint_bytes;
        let build_row_cost = fin.db.cost.hash_build_row as f64;
        drop(st);
        for (k, &n) in self.inputs.iter().enumerate() {
            if n == 0 && !(total == 0 && k == 0) {
                continue;
            }
            let nm = fin.modeled(n);
            fin.add_instr(k, nm * build_row_cost);
            let mem = fin.mem_mut(k);
            mem.random(region, ht_bytes.max(4096), nm as u64);
            mem.random(batch_region, batch_fp, ((nm as u64) * 2).max(1));
        }
        if spill > 0 {
            // Grace-join pass 1: overflowed partitions flush before any
            // probing starts.
            fin.post_spill_write(spill);
        }
        None
    }
}

/// Probe operator: streams probe morsels against the finished build hash
/// table, reproducing the volcano executor's join semantics exactly
/// (including the `swapped` column-order restoration for inner joins).
#[derive(Debug)]
struct HashProbe {
    state: Rc<RefCell<JoinState>>,
    probe_keys: Vec<usize>,
    kind: JoinKind,
    swapped: bool,
    inputs: Vec<u64>,
    /// Reusable probe key (probe rows never insert into the table).
    key_scratch: Vec<KeyPart>,
}

impl PhysicalOperator for HashProbe {
    fn push(&mut self, _partition: usize, batch: Batch) -> PollPush {
        let n = batch.num_rows() as u64;
        self.inputs.push(n);
        if n == 0 {
            return PollPush::Continue(Batch::empty());
        }
        let st = self.state.borrow();
        let build_width = st.build_rows.first().map_or(0, Vec::len);
        let mut out = Vec::new();
        for pr in batch.to_rows() {
            key_sig_into(&pr, &self.probe_keys, &mut self.key_scratch);
            let matches = st.ht.get(&self.key_scratch);
            match self.kind {
                JoinKind::Inner => {
                    if let Some(ms) = matches {
                        for &bi in ms {
                            let mut row = if self.swapped {
                                st.build_rows[bi].clone()
                            } else {
                                pr.clone()
                            };
                            row.extend(if self.swapped {
                                pr.iter().cloned()
                            } else {
                                st.build_rows[bi].iter().cloned()
                            });
                            out.push(row);
                        }
                    }
                }
                JoinKind::LeftOuter => match matches {
                    Some(ms) => {
                        for &bi in ms {
                            let mut row = pr.clone();
                            row.extend(st.build_rows[bi].iter().cloned());
                            out.push(row);
                        }
                    }
                    None => {
                        let mut row = pr.clone();
                        row.extend(std::iter::repeat_with(|| Value::Null).take(build_width));
                        out.push(row);
                    }
                },
                JoinKind::Semi => {
                    if matches.is_some() {
                        out.push(pr);
                    }
                }
                JoinKind::Anti => {
                    if matches.is_none() {
                        out.push(pr);
                    }
                }
            }
        }
        PollPush::Continue(Batch::from_rows(out))
    }

    fn finalize(&mut self, fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        let st = self.state.borrow();
        let (build_modeled, ht_bytes, spill, width) =
            (st.build_modeled, st.ht_bytes, st.spill, st.width);
        let region = st.ht_region.expect("build finalized before probe");
        drop(st);
        let total: u64 = self.inputs.iter().sum();
        let probe_cost = fin.db.cost.hash_probe_row as f64;
        let exchange = fin.db.cost.exchange_row as f64;
        let batch_region = fin.db.batch_region();
        let batch_fp = fin.db.cost.batch_footprint_bytes;
        for (k, &n) in self.inputs.iter().enumerate() {
            let f = if total == 0 {
                if k == 0 {
                    1.0
                } else {
                    continue;
                }
            } else if n == 0 {
                continue;
            } else {
                n as f64 / total as f64
            };
            let nm = fin.modeled(n);
            let mut instr = nm * probe_cost;
            if fin.dop > 1 {
                instr += (nm + build_modeled * f) * exchange;
            }
            fin.add_instr(k, instr);
            let mem = fin.mem_mut(k);
            mem.random(region, ht_bytes.max(4096), (nm * 0.6) as u64);
            mem.random(batch_region, batch_fp, ((nm as u64) * 3).max(1));
        }
        if spill > 0 {
            // Grace-join pass 2: spill the matching probe partitions, then
            // read both sides back and re-build behind a barrier.
            let probe_modeled = fin.modeled(total);
            let probe_bytes = (probe_modeled * width as f64 * 0.5) as u64;
            let probe_spill = (probe_bytes as f64 * (spill as f64 / ht_bytes.max(1) as f64)) as u64;
            fin.extra_spill_write(probe_spill);
            fin.add_spilled(probe_spill);
            let spilled_rows = build_modeled * (spill as f64 / ht_bytes.max(1) as f64);
            let mut mem = MemProfile::new();
            mem.random(region, spill.max(4096), spilled_rows as u64);
            fin.post_spill_read(
                spill + probe_spill,
                spilled_rows * fin.db.cost.hash_build_row as f64,
                mem,
            );
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Aggregation and sort sinks.
// ---------------------------------------------------------------------------

/// Hash-aggregation sink: groups accumulate in push order (= volcano's
/// row order), so `into_values` iteration matches the volcano result
/// byte for byte.
/// Column-wise equivalent of [`key_sig_into`]: builds the group key for
/// physical row `phys` straight from the batch's column vectors, skipping
/// row materialization.
fn batch_key_sig_into(batch: &Batch, phys: usize, cols: &[usize], out: &mut Vec<KeyPart>) {
    out.clear();
    out.extend(cols.iter().map(|&c| match &batch.cols[c] {
        ColumnVector::Int(v) => KeyPart::I(v[phys]),
        ColumnVector::Float(v) => KeyPart::F(v[phys].to_bits()),
        ColumnVector::Str(v) => KeyPart::S(v[phys].clone()),
        ColumnVector::Mixed(v) => match &v[phys] {
            Value::Int(i) => KeyPart::I(*i),
            Value::Str(st) => KeyPart::S(st.clone()),
            Value::Float(f) => KeyPart::F(f.to_bits()),
            Value::Null => KeyPart::N,
        },
    }));
}

struct AggSink {
    group_by: Vec<usize>,
    aggs: Vec<AggSpec>,
    compiled: Vec<Box<dyn PhysicalExpr>>,
    groups: FxHashMap<Vec<KeyPart>, (Row, Vec<AggAcc>)>,
    inputs: Vec<u64>,
    out: Rc<RefCell<Vec<Row>>>,
    /// Reusable lookup key; an owned key vector is only built when a row
    /// opens a new group.
    key_scratch: Vec<KeyPart>,
}

impl AggSink {
    fn new(group_by: Vec<usize>, aggs: Vec<AggSpec>, out: Rc<RefCell<Vec<Row>>>) -> Self {
        let compiled = aggs.iter().map(|a| compile(&a.expr)).collect();
        AggSink {
            group_by,
            aggs,
            compiled,
            groups: FxHashMap::default(),
            inputs: Vec::new(),
            out,
            key_scratch: Vec::new(),
        }
    }
}

impl fmt::Debug for AggSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AggSink(group_by {:?}, {} aggs)",
            self.group_by,
            self.aggs.len()
        )
    }
}

impl PhysicalOperator for AggSink {
    fn push(&mut self, _partition: usize, batch: Batch) -> PollPush {
        let n = batch.num_rows();
        self.inputs.push(n as u64);
        if n == 0 {
            return PollPush::NeedsMore;
        }
        // Vectorized aggregate inputs; group keys gathered column-wise
        // through a reusable key buffer (no per-row key or row
        // materialization on the group-hit path).
        let agg_vals: Vec<_> = self.compiled.iter().map(|e| e.evaluate(&batch)).collect();
        for i in 0..n {
            let phys = batch.live_index(i);
            batch_key_sig_into(&batch, phys, &self.group_by, &mut self.key_scratch);
            if !self.groups.contains_key(&self.key_scratch) {
                self.groups.insert(
                    self.key_scratch.clone(),
                    (
                        self.key_scratch.iter().map(KeyPart::to_value).collect(),
                        self.aggs.iter().map(|a| AggAcc::new(a.func)).collect(),
                    ),
                );
            }
            let entry = self
                .groups
                .get_mut(&self.key_scratch)
                .expect("group ensured");
            for (acc, vals) in entry.1.iter_mut().zip(&agg_vals) {
                acc.update_col(vals, i);
            }
        }
        PollPush::NeedsMore
    }

    fn finalize(&mut self, fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        let total: u64 = self.inputs.iter().sum();
        let groups_modeled = fin.modeled(self.groups.len() as u64);
        let width = workspace_width(self.group_by.len() + self.aggs.len());
        let ht_bytes = (groups_modeled * (fin.db.cost.hash_bytes_per_row + width) as f64) as u64;
        let spill = fin.spill_share(ht_bytes);
        let region = fin.fresh_region();
        let agg_nodes: u64 = self.aggs.iter().map(|a| a.expr.node_count()).sum();
        let row_cost = (fin.db.cost.agg_row + agg_nodes * fin.db.cost.expr_node) as f64;
        let batch_region = fin.db.batch_region();
        let batch_fp = fin.db.cost.batch_footprint_bytes;
        for (k, &n) in self.inputs.iter().enumerate() {
            if n == 0 && !(total == 0 && k == 0) {
                continue;
            }
            let nm = fin.modeled(n);
            fin.add_instr(k, nm * row_cost);
            let mem = fin.mem_mut(k);
            mem.random(region, ht_bytes.max(4096), (nm * 0.6) as u64);
            mem.random(batch_region, batch_fp, ((nm as u64) * 3).max(1));
        }
        if spill > 0 {
            // Run writes overlap the pipeline; the merge-back pass is a
            // barrier stage.
            fin.extra_spill_write(spill);
            let spilled_groups = groups_modeled * (spill as f64 / ht_bytes.max(1) as f64);
            fin.post_spill_read(
                spill,
                spilled_groups * fin.db.cost.agg_row as f64,
                MemProfile::new(),
            );
        }
        let rows: Vec<Row> = std::mem::take(&mut self.groups)
            .into_values()
            .map(|(mut key_vals, accs)| {
                key_vals.extend(accs.into_iter().map(AggAcc::finish));
                key_vals
            })
            .collect();
        *self.out.borrow_mut() = rows;
        None
    }
}

/// Scalar (ungrouped) aggregation sink.
struct StreamAggSink {
    aggs: Vec<AggSpec>,
    compiled: Vec<Box<dyn PhysicalExpr>>,
    accs: Vec<AggAcc>,
    inputs: Vec<u64>,
    out: Rc<RefCell<Vec<Row>>>,
}

impl StreamAggSink {
    fn new(aggs: Vec<AggSpec>, out: Rc<RefCell<Vec<Row>>>) -> Self {
        let compiled = aggs.iter().map(|a| compile(&a.expr)).collect();
        let accs = aggs.iter().map(|a| AggAcc::new(a.func)).collect();
        StreamAggSink {
            aggs,
            compiled,
            accs,
            inputs: Vec::new(),
            out,
        }
    }
}

impl fmt::Debug for StreamAggSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StreamAggSink({} aggs)", self.aggs.len())
    }
}

impl PhysicalOperator for StreamAggSink {
    fn push(&mut self, _partition: usize, batch: Batch) -> PollPush {
        let n = batch.num_rows();
        self.inputs.push(n as u64);
        if n == 0 {
            return PollPush::NeedsMore;
        }
        let agg_vals: Vec<_> = self.compiled.iter().map(|e| e.evaluate(&batch)).collect();
        for i in 0..n {
            for (acc, vals) in self.accs.iter_mut().zip(&agg_vals) {
                acc.update_col(vals, i);
            }
        }
        PollPush::NeedsMore
    }

    fn finalize(&mut self, fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        let agg_nodes: u64 = self.aggs.iter().map(|a| a.expr.node_count()).sum();
        let row_cost =
            fin.db.cost.agg_row as f64 * 0.4 + (agg_nodes * fin.db.cost.expr_node) as f64;
        for (k, &n) in self.inputs.iter().enumerate() {
            if n > 0 {
                fin.add_instr(k, fin.modeled(n) * row_cost);
            }
        }
        let accs = std::mem::take(&mut self.accs);
        *self.out.borrow_mut() = vec![accs.into_iter().map(AggAcc::finish).collect()];
        None
    }
}

/// Sort sink: accumulates rows in push order, sorts stably at finalize
/// with the volcano comparator.
#[derive(Debug)]
struct SortSink {
    keys: Vec<(usize, bool)>,
    rows: Vec<Row>,
    inputs: Vec<u64>,
    out: Rc<RefCell<Vec<Row>>>,
}

impl PhysicalOperator for SortSink {
    fn push(&mut self, _partition: usize, batch: Batch) -> PollPush {
        let n = batch.num_rows();
        self.inputs.push(n as u64);
        if n > 0 {
            self.rows.extend(batch.to_rows());
        }
        PollPush::NeedsMore
    }

    fn finalize(&mut self, fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        use dbsens_storage::value::cmp_values;
        use std::cmp::Ordering;
        let total: u64 = self.inputs.iter().sum();
        let modeled = fin.modeled(total).max(2.0);
        let width = self.rows.first().map_or(8, |r| workspace_width(r.len()));
        let sort_bytes = (modeled * (fin.db.cost.sort_bytes_per_row + width) as f64) as u64;
        let spill = fin.spill_share(sort_bytes);
        let region = fin.fresh_region();
        let instr_total = modeled * modeled.log2() * fin.db.cost.sort_row_log as f64;
        for (k, &n) in self.inputs.iter().enumerate() {
            let f = if total == 0 {
                if k == 0 {
                    1.0
                } else {
                    continue;
                }
            } else if n == 0 {
                continue;
            } else {
                n as f64 / total as f64
            };
            fin.add_instr(k, instr_total * f);
            fin.mem_mut(k)
                .random(region, sort_bytes.max(4096), (modeled * f) as u64);
        }
        if spill > 0 {
            // External merge sort: run writes overlap run generation; the
            // merge pass is a barrier stage.
            fin.extra_spill_write(spill);
            let spilled_rows = modeled * (spill as f64 / sort_bytes.max(1) as f64);
            fin.post_spill_read(
                spill,
                spilled_rows * fin.db.cost.sort_row_log as f64,
                MemProfile::new(),
            );
        }
        let mut rows = std::mem::take(&mut self.rows);
        let keys = self.keys.clone();
        rows.sort_by(|a, b| {
            for &(c, desc) in &keys {
                let ord = cmp_values(&a[c], &b[c]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        *self.out.borrow_mut() = rows;
        None
    }
}

/// Terminal sink of the final pipeline: collects the query's result rows.
#[derive(Debug)]
struct CollectSink {
    rows: Vec<Row>,
}

impl PhysicalOperator for CollectSink {
    fn push(&mut self, _partition: usize, batch: Batch) -> PollPush {
        if batch.num_rows() > 0 {
            self.rows.extend(batch.to_rows());
        }
        PollPush::NeedsMore
    }

    fn finalize(&mut self, _fin: &mut FinalizeCtx<'_>) -> Option<Vec<Row>> {
        Some(std::mem::take(&mut self.rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, rows_digest};
    use crate::expr::CmpOp;
    use crate::optimizer::{optimize, PlanContext};
    use crate::plan::{avg, count, sum, JoinKind, Logical};
    use dbsens_storage::schema::{ColType, Schema};

    fn setup() -> (Database, TableId, TableId) {
        let mut db = Database::new(50.0, 1 << 30);
        let fact_schema = Schema::new(&[
            ("id", ColType::Int),
            ("fk", ColType::Int),
            ("qty", ColType::Int),
            ("price", ColType::Float),
        ]);
        let fact_rows: Vec<Row> = (0..400)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 20),
                    Value::Int(i % 7),
                    Value::Float(i as f64 * 1.5),
                ]
            })
            .collect();
        let fact = db.create_table("fact", fact_schema, fact_rows);
        let dim_schema = Schema::new(&[("id", ColType::Int), ("name", ColType::Str(8))]);
        let dim_rows: Vec<Row> = (0..20)
            .map(|i| vec![Value::Int(i), Value::Str(format!("n{i}"))])
            .collect();
        let dim = db.create_table("dim", dim_schema, dim_rows);
        (db, fact, dim)
    }

    fn ctx() -> PlanContext {
        PlanContext {
            maxdop: 4,
            grant_cap_bytes: 1 << 30,
            cost_threshold: 1e18,
            bufferpool_bytes: 1 << 30,
            db_bytes: 1 << 30,
        }
    }

    /// Runs `q` on both executors and asserts byte-identical rows.
    fn assert_parity(db: &Database, q: &Logical, c: &PlanContext) -> QueryExecution {
        let plan = optimize(db, q, c);
        let push = execute_push(db, &plan).expect("plan should be push-supported");
        let pull = execute(db, &plan);
        assert_eq!(
            rows_digest(&push.rows),
            rows_digest(&pull.rows),
            "push/pull row divergence: {} vs {} rows",
            push.rows.len(),
            pull.rows.len()
        );
        assert_eq!(push.rows, pull.rows);
        assert!(push.stages.is_empty());
        assert!(!push.pipelines.is_empty(), "no pipeline stages emitted");
        push
    }

    #[test]
    fn scan_filter_project_parity() {
        let (db, fact, _) = setup();
        let q = Logical::scan(
            fact,
            Some(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(10i64))),
            10.0,
        )
        .project(vec![Expr::Col(0), Expr::Col(2)]);
        let out = assert_parity(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 10);
        assert!(out.pipelines[0].total_items() > 0);
    }

    #[test]
    fn join_agg_sort_top_parity() {
        let (db, fact, dim) = setup();
        let q = Logical::scan(fact, None, 400.0)
            .join(
                Logical::scan(dim, None, 20.0),
                vec![1],
                vec![0],
                JoinKind::Inner,
                400.0,
            )
            .agg(vec![2], vec![count(), sum(0), avg(3)], 7.0)
            .sort(vec![(1, true)])
            .top(5);
        let out = assert_parity(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 5);
        // Build, probe+agg, sort, collect pipelines → at least 3 stages.
        assert!(out.pipelines.len() >= 3, "{} stages", out.pipelines.len());
    }

    #[test]
    fn semi_anti_outer_parity() {
        let (db, fact, dim) = setup();
        let dim_small = Logical::scan(
            dim,
            Some(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(5i64))),
            5.0,
        );
        for kind in [JoinKind::Semi, JoinKind::Anti, JoinKind::LeftOuter] {
            let q = Logical::scan(fact, None, 400.0).join(
                dim_small.clone(),
                vec![1],
                vec![0],
                kind,
                100.0,
            );
            assert_parity(&db, &q, &ctx());
        }
    }

    #[test]
    fn scalar_agg_parity() {
        let (db, fact, _) = setup();
        let q = Logical::scan(fact, None, 400.0).agg(vec![], vec![avg(2), count()], 1.0);
        let out = assert_parity(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn columnstore_scan_parity() {
        let (mut db, fact, _) = setup();
        db.create_columnstore(fact, 64);
        let q = Logical::scan_project(
            fact,
            Some(Expr::cmp(CmpOp::Ge, Expr::Col(0), Expr::lit(300i64))),
            vec![0, 3],
            100.0,
        );
        let out = assert_parity(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 100);
    }

    #[test]
    fn results_invariant_across_dop() {
        let (db, fact, dim) = setup();
        let q = Logical::scan(fact, None, 400.0)
            .join(
                Logical::scan(dim, None, 20.0),
                vec![1],
                vec![0],
                JoinKind::Inner,
                400.0,
            )
            .agg(vec![2], vec![count(), sum(0)], 7.0);
        let mut digests = Vec::new();
        for dop in [1usize, 4, 16] {
            let mut c = ctx();
            c.maxdop = dop;
            c.cost_threshold = 0.0; // parallel whenever dop allows
            let plan = optimize(&db, &q, &c);
            let out = execute_push(&db, &plan).expect("push-supported");
            digests.push(rows_digest(&out.rows));
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
    }

    #[test]
    fn parallel_pipeline_has_claimable_morsels() {
        let (db, fact, _) = setup();
        let q = Logical::scan(fact, None, 400.0);
        let mut c = ctx();
        c.cost_threshold = 0.0;
        let plan = optimize(&db, &q, &c);
        let out = execute_push(&db, &plan).expect("push-supported");
        assert_eq!(out.dop, 4);
        let first = &out.pipelines[0];
        assert_eq!(first.partitions, 4);
        // dop startup bursts + at least one scan morsel (the table is far
        // below MORSEL_ROWS, so the quarter-morsel floor caps it at one).
        assert!(first.morsels.len() > 4, "{}", first.morsels.len());
    }

    #[test]
    fn insufficient_grant_spills_on_push_path() {
        let (db, fact, dim) = setup();
        let q = Logical::scan(fact, None, 400.0).join(
            Logical::scan(dim, None, 20.0),
            vec![1],
            vec![1],
            JoinKind::Inner,
            400.0,
        );
        let mut c = ctx();
        c.grant_cap_bytes = 1;
        let plan = optimize(&db, &q, &c);
        let push = execute_push(&db, &plan).expect("push-supported");
        let pull = execute(&db, &plan);
        assert_eq!(push.rows, pull.rows);
        assert!(push.spilled_bytes > 0);
        let has_spill = push
            .pipelines
            .iter()
            .flat_map(|s| &s.morsels)
            .flat_map(|m| &m.items)
            .any(|i| matches!(i, TraceItem::SpillWrite { .. }));
        assert!(has_spill);
    }

    #[test]
    fn split_chunks_is_contiguous_and_balanced() {
        for (total, m) in [(1000usize, 100usize), (9, 3), (7, 16), (0, 4), (5, 1)] {
            let rows: Vec<Row> = (0..total as i64).map(|i| vec![Value::Int(i)]).collect();
            let chunks = split_chunks(rows, m);
            assert_eq!(chunks.len(), m, "always exactly m chunks");
            let flat: Vec<i64> = chunks.iter().flatten().map(|r| r[0].as_int()).collect();
            assert_eq!(flat, (0..total as i64).collect::<Vec<_>>(), "order kept");
            let (min, max) = chunks.iter().fold((usize::MAX, 0), |(lo, hi), c| {
                (lo.min(c.len()), hi.max(c.len()))
            });
            assert!(
                max - min <= 1,
                "unbalanced: min={min} max={max} ({total}/{m})"
            );
        }
    }

    #[test]
    fn unsupported_plans_fall_back() {
        let (db, _, dim) = setup();
        let node = PhysNode::IndexRange {
            table: dim,
            index: "pk".into(),
            lo: None,
            hi: None,
            filter: None,
            est_rows: 20.0,
        };
        let plan = PhysPlan {
            root: node,
            dop: 1,
            memory_grant: 0,
            desired_memory: 0,
            est_cost: 1.0,
        };
        assert!(execute_push(&db, &plan).is_none());
    }
}
