//! Database catalog: tables, indexes, columnstores, and the shared storage
//! services (buffer pool, WAL, lock manager, latches).
//!
//! A [`Database`] is shared among simulated tasks via `Rc<RefCell<_>>`;
//! the discrete-event kernel serializes all execution, so no finer locking
//! is needed.

use crate::cost::EngineCost;
use dbsens_storage::btree::{BTree, RowId};
use dbsens_storage::bufferpool::BufferPool;
use dbsens_storage::columnstore::ColumnStore;
use dbsens_storage::heap::HeapTable;
use dbsens_storage::lock::TxnId;
use dbsens_storage::lock::{LatchTable, LockManager};
use dbsens_storage::physical::{ColumnstoreLayout, IndexLayout, ModelSpace, TableLayout};
use dbsens_storage::schema::Schema;
use dbsens_storage::value::{Key, Row, Value};
use dbsens_storage::wal::{ClrAction, Lsn, Wal, WalRecord};

/// Identifier of a table within a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub usize);

/// A secondary B-tree index.
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name.
    pub name: String,
    /// Key column positions in the base table.
    pub key_cols: Vec<usize>,
    /// The logical tree.
    pub btree: BTree,
    /// Paper-scale physical layout.
    pub layout: IndexLayout,
}

impl Index {
    /// Extracts this index's key from a base-table row.
    pub fn key_of(&self, row: &Row) -> Key {
        Key::from_values(self.key_cols.iter().map(|&c| row[c].clone()).collect())
    }
}

/// A columnstore index over a table.
#[derive(Debug, Clone)]
pub struct ColumnStoreIndex {
    /// The logical store.
    pub store: ColumnStore,
    /// Paper-scale physical layout.
    pub layout: ColumnstoreLayout,
}

/// A table: logical heap plus paper-scale layout and secondary structures.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table id (used in lock keys).
    pub id: u32,
    /// Table name.
    pub name: String,
    /// Logical rows.
    pub heap: HeapTable,
    /// Paper-scale layout of the base heap/clustered index.
    pub layout: TableLayout,
    /// Secondary B-tree indexes.
    pub indexes: Vec<Index>,
    /// Optional (non-clustered) columnstore index.
    pub columnstore: Option<ColumnStoreIndex>,
}

impl Table {
    /// Finds an index by name.
    ///
    /// # Panics
    ///
    /// Panics if no such index exists (catalog lookups are static).
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, name: &str) -> &Index {
        self.indexes
            .iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("no index {name} on {}", self.name))
    }

    /// Index position by name.
    pub fn index_pos(&self, name: &str) -> usize {
        self.indexes
            .iter()
            .position(|i| i.name == name)
            .unwrap_or_else(|| panic!("no index {name} on {}", self.name))
    }
}

/// One undoable operation on a transaction's in-memory undo chain (the
/// active-transaction table keeps these so rollback and the recovery undo
/// pass can reverse losers without re-reading the log).
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// An insert; undone by removing the row.
    Insert {
        /// Table the row went into.
        table: TableId,
        /// Row id the insert produced.
        rid: RowId,
    },
    /// An update; undone by restoring the before image.
    Update {
        /// Table of the row.
        table: TableId,
        /// Row id.
        rid: RowId,
        /// Row image before the update.
        before: Row,
    },
    /// A delete; undone by reinserting the row at its original id.
    Delete {
        /// Table the row came from.
        table: TableId,
        /// Row id it occupied.
        rid: RowId,
        /// The deleted row.
        row: Row,
    },
}

/// The database: catalog plus shared storage services.
///
/// # Examples
///
/// ```
/// use dbsens_engine::db::Database;
/// use dbsens_storage::schema::{ColType, Schema};
/// use dbsens_storage::value::Value;
///
/// let mut db = Database::new(1000.0, 1 << 30);
/// let schema = Schema::new(&[("id", ColType::Int), ("v", ColType::Int)]);
/// let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int(i), Value::Int(i * 2)]).collect();
/// let t = db.create_table("demo", schema, rows);
/// db.create_index(t, "pk", &[0]);
/// assert_eq!(db.table(t).heap.len(), 100);
/// // Paper-scale footprint: 100 logical rows model 100k rows.
/// assert_eq!(db.table(t).layout.modeled_rows(), 100_000);
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    /// Modeled rows per logical row (uniform across tables so intermediate
    /// cardinalities scale consistently).
    pub row_scale: f64,
    tables: Vec<Table>,
    /// Modeled page/region allocator.
    pub space: ModelSpace,
    /// Page residency tracker.
    pub bufferpool: BufferPool,
    /// Write-ahead log.
    pub wal: Wal,
    /// Row/key lock manager.
    pub locks: LockManager,
    /// Short-term latch table.
    pub latches: LatchTable,
    /// Cost calibration.
    pub cost: EngineCost,
    next_txn: u64,
    dirty_pages: dbsens_hwsim::fx::FxHashSet<u64>,
    session_region: dbsens_hwsim::mem::Region,
    batch_region: dbsens_hwsim::mem::Region,
    /// Transactions whose owning task is stuck in fault recovery while
    /// holding locks (candidates for deadlock victimization).
    stalled_txns: dbsens_hwsim::fx::FxHashSet<dbsens_storage::lock::TxnId>,
    /// Transactions the lock monitor has chosen as deadlock victims; their
    /// owning task must abort instead of continuing.
    victim_txns: dbsens_hwsim::fx::FxHashSet<dbsens_storage::lock::TxnId>,
    /// Active-transaction table (crash-consistency mode only): per live
    /// transaction, the LSN-stamped undo chain of its data operations.
    att: std::collections::BTreeMap<TxnId, Vec<(Lsn, UndoOp)>>,
    /// Dirty page table (crash-consistency mode only): modeled page →
    /// recLSN, the LSN that first dirtied it since its last write-back.
    dirty_page_lsns: std::collections::BTreeMap<u64, u64>,
    /// Checkpoint snapshots (crash-consistency mode only): the database
    /// state at each checkpoint record, keyed by that record's LSN. Index 0
    /// is the initial state (LSN 0). Snapshots model the on-disk pages a
    /// durable checkpoint guarantees; recovery redoes forward from the
    /// newest snapshot whose checkpoint record survives in the durable log.
    snapshots: Vec<(u64, Box<Database>)>,
    /// Reusable buffer for snapshotting index key columns in
    /// [`Database::update_row`].
    keycol_scratch: Vec<Value>,
}

impl Database {
    /// Creates an empty database with the given logical-to-modeled row
    /// scale and buffer pool capacity in bytes.
    pub fn new(row_scale: f64, bufferpool_bytes: u64) -> Self {
        let mut space = ModelSpace::new();
        let session_region = space.alloc_region();
        let batch_region = space.alloc_region();
        Database {
            row_scale,
            tables: Vec::new(),
            space,
            bufferpool: BufferPool::new(bufferpool_bytes),
            wal: Wal::new(),
            locks: LockManager::new(),
            latches: LatchTable::new(),
            cost: EngineCost::default(),
            next_txn: 0,
            dirty_pages: dbsens_hwsim::fx::fx_set(),
            session_region,
            batch_region,
            stalled_txns: dbsens_hwsim::fx::fx_set(),
            victim_txns: dbsens_hwsim::fx::fx_set(),
            att: std::collections::BTreeMap::new(),
            dirty_page_lsns: std::collections::BTreeMap::new(),
            snapshots: Vec::new(),
            keycol_scratch: Vec::new(),
        }
    }

    /// Turns on crash-consistency mode: the WAL captures typed logical
    /// records, DML goes through the `*_logged` variants, checkpoints become
    /// fuzzy ARIES checkpoints, and the initial state is snapshotted as the
    /// recovery base. Must be called before any logged work.
    pub fn enable_crash_consistency(&mut self) {
        self.wal.enable_capture();
        if self.snapshots.is_empty() {
            self.snapshots
                .push((0, Box::new(self.clone_without_snapshots())));
        }
    }

    /// Whether crash-consistency (logical logging) mode is on.
    pub fn crash_consistency(&self) -> bool {
        self.wal.capture_enabled()
    }

    /// A deep copy of the database with the snapshot list left empty
    /// (snapshot-of-snapshots would compound memory for nothing).
    fn clone_without_snapshots(&self) -> Database {
        let mut c = self.clone();
        c.snapshots = Vec::new();
        c
    }

    /// Marks `txn` as stalled in fault recovery (e.g. retrying a failed
    /// commit-log write while holding its locks).
    pub fn mark_stalled(&mut self, txn: dbsens_storage::lock::TxnId) {
        self.stalled_txns.insert(txn);
    }

    /// Clears `txn`'s stalled mark (recovery succeeded or the txn ended).
    pub fn clear_stalled(&mut self, txn: dbsens_storage::lock::TxnId) {
        self.stalled_txns.remove(&txn);
    }

    /// Currently stalled transactions, in id order.
    pub fn stalled_txns(&self) -> Vec<dbsens_storage::lock::TxnId> {
        let mut v: Vec<_> = self.stalled_txns.iter().copied().collect();
        v.sort();
        v
    }

    /// Marks `txn` as a deadlock victim; its owning task observes this via
    /// [`Database::take_victim`] and aborts.
    pub fn mark_victim(&mut self, txn: dbsens_storage::lock::TxnId) {
        self.victim_txns.insert(txn);
    }

    /// Consumes a victim mark for `txn`, returning `true` if it was set.
    pub fn take_victim(&mut self, txn: dbsens_storage::lock::TxnId) -> bool {
        self.victim_txns.remove(&txn)
    }

    /// Cache region of shared session state / plan cache structures.
    pub fn session_region(&self) -> dbsens_hwsim::mem::Region {
        self.session_region
    }

    /// Cache region of columnstore batch buffers and dictionaries.
    pub fn batch_region(&self) -> dbsens_hwsim::mem::Region {
        self.batch_region
    }

    /// Pre-loads the buffer pool the way a freshly loaded (or long-running)
    /// server would be warm: every table's data pages, B-tree leaves, and
    /// columnstore segments are touched in catalog order, then small
    /// structures are re-referenced so the clock policy favours keeping
    /// them when the database exceeds memory. The paper measures warmed
    /// systems (databases are loaded before each run).
    pub fn warm_bufferpool(&mut self) {
        let mut runs: Vec<(u64, u64)> = Vec::new();
        let mut small_runs: Vec<(u64, u64)> = Vec::new();
        for t in &self.tables {
            let (start, pages) = t.layout.scan_run();
            runs.push((start, pages));
            if pages * dbsens_storage::bufferpool::PAGE_BYTES < (1 << 30) {
                small_runs.push((start, pages));
            }
            for idx in &t.indexes {
                let (s2, p2) = idx.layout.leaf_scan_run(0.0, 1.0);
                runs.push((s2, p2));
                small_runs.push((s2, p2));
            }
            if let Some(cs) = &t.columnstore {
                for c in 0..t.heap.schema().len() {
                    let (s3, p3) = cs.layout.column_scan_run(c, 1.0);
                    runs.push((s3, p3));
                }
            }
        }
        for (start, pages) in runs {
            self.bufferpool.access(start, pages, false);
        }
        // Re-reference hot/small structures so they survive.
        for (start, pages) in small_runs {
            self.bufferpool.access(start, pages, false);
        }
    }

    /// Records a modeled page as dirtied since the last checkpoint. In
    /// crash-consistency mode the page also enters the dirty page table
    /// with the next LSN as its recLSN (the first record that could have
    /// dirtied it is the one about to be written).
    pub fn mark_dirty(&mut self, page: u64) {
        self.dirty_pages.insert(page);
        if self.crash_consistency() {
            let rec_lsn = self.wal.next_lsn().0;
            self.dirty_page_lsns.entry(page).or_insert(rec_lsn);
        }
    }

    /// Takes the set of distinct dirty pages for the checkpoint writer.
    pub fn take_dirty_pages(&mut self) -> usize {
        let n = self.dirty_pages.len();
        self.dirty_pages.clear();
        n
    }

    /// Creates a table from initial logical rows; its modeled size is
    /// `rows.len() * row_scale`.
    pub fn create_table(&mut self, name: &str, schema: Schema, rows: Vec<Row>) -> TableId {
        let modeled_rows = ((rows.len() as f64) * self.row_scale).ceil() as u64;
        let row_bytes = schema.avg_row_bytes();
        let layout = TableLayout::new(&mut self.space, modeled_rows.max(1), row_bytes);
        let mut heap = HeapTable::new(schema);
        for row in rows {
            heap.insert(row);
        }
        let id = self.tables.len();
        self.tables.push(Table {
            id: id as u32,
            name: name.to_owned(),
            heap,
            layout,
            indexes: Vec::new(),
            columnstore: None,
        });
        TableId(id)
    }

    /// Builds a B-tree index over the given key columns.
    pub fn create_index(&mut self, table: TableId, name: &str, key_cols: &[usize]) {
        let t = &self.tables[table.0];
        let key_bytes: u64 = key_cols
            .iter()
            .map(|&c| t.heap.schema().columns()[c].ty.avg_bytes())
            .sum();
        let modeled_entries = t.layout.modeled_rows();
        let layout = IndexLayout::new(&mut self.space, modeled_entries, key_bytes.max(4));
        let mut btree = BTree::new();
        for (rid, row) in t.heap.iter() {
            let key = Key::from_values(key_cols.iter().map(|&c| row[c].clone()).collect());
            btree.insert(key, rid);
        }
        self.tables[table.0].indexes.push(Index {
            name: name.to_owned(),
            key_cols: key_cols.to_vec(),
            btree,
            layout,
        });
    }

    /// Builds an updateable non-clustered columnstore index over the whole
    /// table (the HTAP configuration) or a clustered columnstore (the DW
    /// configuration — same model, the base heap is then unused by
    /// queries).
    pub fn create_columnstore(&mut self, table: TableId, rowgroup_rows: usize) {
        let t = &self.tables[table.0];
        let rows: Vec<Row> = t.heap.iter().map(|(_, r)| r.clone()).collect();
        let store = ColumnStore::build(t.heap.schema().clone(), &rows, rowgroup_rows);
        let layout = ColumnstoreLayout::from_logical(&mut self.space, &store, self.row_scale);
        self.tables[table.0].columnstore = Some(ColumnStoreIndex { store, layout });
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Mutable table by id.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.0]
    }

    /// Table id by name.
    ///
    /// # Panics
    ///
    /// Panics if no such table exists.
    pub fn table_id(&self, name: &str) -> TableId {
        TableId(
            self.tables
                .iter()
                .position(|t| t.name == name)
                .unwrap_or_else(|| panic!("no table named {name}")),
        )
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Allocates a fresh transaction id.
    pub fn begin_txn(&mut self) -> dbsens_storage::lock::TxnId {
        self.next_txn += 1;
        dbsens_storage::lock::TxnId(self.next_txn)
    }

    /// Inserts a row, maintaining all indexes and the columnstore delta.
    pub fn insert_row(&mut self, table: TableId, row: Row) -> RowId {
        let t = &mut self.tables[table.0];
        let rid = t.heap.insert(row.clone());
        for idx in &mut t.indexes {
            let key = Key::from_values(idx.key_cols.iter().map(|&c| row[c].clone()).collect());
            idx.btree.insert(key, rid);
        }
        if let Some(cs) = &mut t.columnstore {
            cs.store.insert(rid, row);
        }
        rid
    }

    /// Deletes a row, maintaining all indexes and the columnstore.
    /// Returns the old row if it existed.
    pub fn delete_row(&mut self, table: TableId, rid: RowId) -> Option<Row> {
        let capture = self.crash_consistency();
        let t = &mut self.tables[table.0];
        // In crash-consistency mode the slot stays reserved (ghost record):
        // an undo must be able to reinsert the row at its original id, so
        // the id must not be reused by a concurrent insert.
        let row = if capture {
            t.heap.delete_keep_slot(rid)?
        } else {
            t.heap.delete(rid)?
        };
        for idx in &mut t.indexes {
            let key = Key::from_values(idx.key_cols.iter().map(|&c| row[c].clone()).collect());
            idx.btree.remove(&key, rid);
        }
        if let Some(cs) = &mut t.columnstore {
            cs.store.delete(rid);
        }
        Some(row)
    }

    /// Updates a row in place via `mutate`, maintaining indexes whose keys
    /// change and the columnstore.
    ///
    /// The common case — a mutation that leaves every index key column
    /// untouched — must not allocate: only the key-column values are
    /// snapshotted (into a recycled scratch buffer), and full `Key`s are
    /// materialized only for an index whose columns actually changed.
    pub fn update_row(
        &mut self,
        table: TableId,
        rid: RowId,
        mutate: impl FnOnce(&mut Row),
    ) -> bool {
        let mut snap = std::mem::take(&mut self.keycol_scratch);
        snap.clear();
        let t = &mut self.tables[table.0];
        let Some(row) = t.heap.get_mut(rid) else {
            self.keycol_scratch = snap;
            return false;
        };
        for idx in &t.indexes {
            for &c in &idx.key_cols {
                snap.push(row[c].clone());
            }
        }
        mutate(row);
        let mut off = 0;
        for idx in &mut t.indexes {
            let k = idx.key_cols.len();
            let before = &snap[off..off + k];
            let changed = idx
                .key_cols
                .iter()
                .zip(before)
                .any(|(&c, old)| row[c] != *old);
            if changed {
                let old_key = Key::from_values(before.to_vec());
                let new_key =
                    Key::from_values(idx.key_cols.iter().map(|&c| row[c].clone()).collect());
                idx.btree.remove(&old_key, rid);
                idx.btree.insert(new_key, rid);
            }
            off += k;
        }
        if let Some(cs) = &mut t.columnstore {
            let new = row.clone();
            cs.store.update(rid, new);
        }
        self.keycol_scratch = snap;
        true
    }

    /// Total modeled bytes of primary data plus indexes (columnstore
    /// tables count their compressed segments instead of the unused heap),
    /// used by the optimizer's buffer-residency heuristic.
    pub fn primary_data_bytes(&self) -> u64 {
        self.tables
            .iter()
            .map(|t| {
                let data = match &t.columnstore {
                    Some(cs) => cs.layout.data_bytes(),
                    None => t.layout.data_bytes(),
                };
                data + t
                    .indexes
                    .iter()
                    .map(|i| i.layout.index_bytes())
                    .sum::<u64>()
            })
            .sum()
    }

    /// Modeled (paper-scale) row position of a logical row id, used for
    /// lock keys and page ids so contention scales with the modeled
    /// database size.
    pub fn modeled_row(&self, table: TableId, rid: RowId) -> u64 {
        let t = &self.tables[table.0];
        let modeled = (rid.0 as f64 * self.row_scale) as u64;
        modeled.min(t.layout.modeled_rows().saturating_sub(1))
    }

    // --- crash-consistency mode: logged DML, rollback, checkpoints -------

    /// Logs `Begin` for a transaction (crash-consistency mode).
    pub fn begin_txn_logged(&mut self, txn: TxnId) {
        self.wal.append_record(&WalRecord::Begin { txn: txn.0 }, 0);
        self.att.insert(txn, Vec::new());
    }

    /// Inserts a row under `txn`, writing an `Insert` record with the full
    /// row image and threading the undo chain.
    pub fn insert_row_logged(&mut self, txn: TxnId, table: TableId, row: Row) -> RowId {
        let rid = self.insert_row(table, row.clone());
        let bytes = self.cost.log_bytes_per_row;
        let lsn = self.wal.append_record(
            &WalRecord::Insert {
                txn: txn.0,
                table: table.0 as u32,
                rid: rid.0,
                row,
            },
            bytes,
        );
        self.att
            .entry(txn)
            .or_default()
            .push((lsn, UndoOp::Insert { table, rid }));
        rid
    }

    /// Updates a row under `txn`, writing an `Update` record with before
    /// and after images.
    pub fn update_row_logged(
        &mut self,
        txn: TxnId,
        table: TableId,
        rid: RowId,
        mutate: impl FnOnce(&mut Row),
    ) -> bool {
        let Some(before) = self.tables[table.0].heap.get(rid).cloned() else {
            return false;
        };
        self.update_row(table, rid, mutate);
        let after = self.tables[table.0]
            .heap
            .get(rid)
            .cloned()
            .expect("row vanished");
        let bytes = self.cost.log_bytes_per_row;
        let lsn = self.wal.append_record(
            &WalRecord::Update {
                txn: txn.0,
                table: table.0 as u32,
                rid: rid.0,
                before: before.clone(),
                after,
            },
            bytes,
        );
        self.att
            .entry(txn)
            .or_default()
            .push((lsn, UndoOp::Update { table, rid, before }));
        true
    }

    /// Deletes a row under `txn`, writing a `Delete` record with the old
    /// row image.
    pub fn delete_row_logged(&mut self, txn: TxnId, table: TableId, rid: RowId) -> Option<Row> {
        let row = self.delete_row(table, rid)?;
        let bytes = self.cost.log_bytes_per_row;
        let lsn = self.wal.append_record(
            &WalRecord::Delete {
                txn: txn.0,
                table: table.0 as u32,
                rid: rid.0,
                row: row.clone(),
            },
            bytes,
        );
        self.att.entry(txn).or_default().push((
            lsn,
            UndoOp::Delete {
                table,
                rid,
                row: row.clone(),
            },
        ));
        Some(row)
    }

    /// Logs `Commit` and retires the transaction from the ATT. The commit
    /// is durable once the enclosing group-commit flush completes.
    pub fn commit_txn_logged(&mut self, txn: TxnId) {
        self.wal.append_record(&WalRecord::Commit { txn: txn.0 }, 0);
        self.att.remove(&txn);
    }

    /// Force-logs a two-phase-commit `Prepare` vote: the YES vote may only
    /// leave the node once this returns. The transaction stays in the ATT
    /// with its undo chain — a commit decision retires it with
    /// [`Database::commit_txn_logged`], an abort decision rolls it back
    /// with [`Database::rollback_txn`].
    pub fn prepare_txn_logged(&mut self, txn: TxnId, coordinator: u32) {
        self.wal.append_record(
            &WalRecord::Prepare {
                txn: txn.0,
                coordinator,
            },
            0,
        );
        self.wal.force_durable();
    }

    /// Force-logs the coordinator's commit decision for a distributed
    /// transaction; COMMIT messages may only be sent once this returns.
    pub fn log_coord_commit(&mut self, txn: u64, participants: Vec<u32>) {
        self.wal
            .append_record(&WalRecord::CoordCommit { txn, participants }, 0);
        self.wal.force_durable();
    }

    /// Lazily logs the coordinator's forget record once every participant
    /// acknowledged the outcome; never forced.
    pub fn log_coord_end(&mut self, txn: u64) {
        self.wal.append_record(&WalRecord::CoordEnd { txn }, 0);
    }

    /// Rolls back a live transaction: reverses its undo chain newest-first,
    /// writing a CLR per reversed operation, then logs `Abort`. Mirrors the
    /// recovery undo pass so an abort is indistinguishable from a loser
    /// undone at restart.
    pub fn rollback_txn(&mut self, txn: TxnId) {
        // A transaction past its commit point (Commit record already
        // logged) is no longer in the ATT and must not be rolled back.
        let Some(chain) = self.att.remove(&txn) else {
            return;
        };
        for (lsn, op) in chain.into_iter().rev() {
            self.apply_undo(txn.0, lsn.0, &op);
        }
        self.wal.append_record(&WalRecord::Abort { txn: txn.0 }, 0);
    }

    /// Reverses one operation and writes its CLR. Shared by live rollback
    /// and recovery's undo-losers pass.
    pub fn apply_undo(&mut self, txn: u64, undo_of: u64, op: &UndoOp) {
        let bytes = self.cost.log_bytes_per_row;
        let (table, rid, action) = match op {
            UndoOp::Insert { table, rid } => {
                self.delete_row(*table, *rid);
                (*table, *rid, ClrAction::Remove)
            }
            UndoOp::Update { table, rid, before } => {
                let image = before.clone();
                self.update_row(*table, *rid, |r| *r = image);
                (
                    *table,
                    *rid,
                    ClrAction::SetTo {
                        row: before.clone(),
                    },
                )
            }
            UndoOp::Delete { table, rid, row } => {
                self.restore_row(*table, *rid, row.clone());
                (*table, *rid, ClrAction::Reinsert { row: row.clone() })
            }
        };
        self.wal.append_record(
            &WalRecord::Clr {
                txn,
                undo_of,
                table: table.0 as u32,
                rid: rid.0,
                action,
            },
            bytes,
        );
    }

    /// Reinserts a row at a specific id (undo of a delete / redo of a
    /// reinsert CLR), maintaining indexes and the columnstore.
    pub fn restore_row(&mut self, table: TableId, rid: RowId, row: Row) -> bool {
        let t = &mut self.tables[table.0];
        if !t.heap.insert_at(rid, row.clone()) {
            return false;
        }
        for idx in &mut t.indexes {
            let key = Key::from_values(idx.key_cols.iter().map(|&c| row[c].clone()).collect());
            idx.btree.insert(key, rid);
        }
        if let Some(cs) = &mut t.columnstore {
            cs.store.insert(rid, row);
        }
        true
    }

    /// Writes a fuzzy ARIES checkpoint: a `Checkpoint` record carrying the
    /// ATT and dirty page table, plus a state snapshot keyed by its LSN.
    /// Dirty pages whose recLSN is already durable are written back (their
    /// count is returned for the checkpoint writer's I/O demand); pages
    /// dirtied by not-yet-durable records stay in the DPT — the WAL rule
    /// forbids flushing them ahead of their log.
    pub fn log_checkpoint(&mut self) -> u64 {
        let active_txns: Vec<u64> = self.att.keys().map(|t| t.0).collect();
        let dirty_pages: Vec<(u64, u64)> =
            self.dirty_page_lsns.iter().map(|(&p, &l)| (p, l)).collect();
        let lsn = self.wal.append_record(
            &WalRecord::Checkpoint {
                active_txns,
                dirty_pages,
            },
            0,
        );
        let kept = std::mem::take(&mut self.snapshots);
        let snap = Box::new(self.clone_without_snapshots());
        self.snapshots = kept;
        self.snapshots.push((lsn.0, snap));
        // Keep the initial snapshot plus the last few checkpoints; older
        // intermediates can never win the recovery-base search.
        while self.snapshots.len() > 5 {
            self.snapshots.remove(1);
        }
        let durable = self.wal.durable_lsn().0;
        let flushable: Vec<u64> = self
            .dirty_page_lsns
            .iter()
            .filter(|&(_, &rec_lsn)| rec_lsn <= durable)
            .map(|(&p, _)| p)
            .collect();
        for p in &flushable {
            self.dirty_page_lsns.remove(p);
            self.dirty_pages.remove(p);
        }
        flushable.len() as u64
    }

    /// Live transactions in the ATT (crash-consistency mode).
    pub fn active_logged_txns(&self) -> Vec<TxnId> {
        self.att.keys().copied().collect()
    }

    /// Takes the checkpoint snapshots out of the database (used when
    /// rendering a crash image — the snapshots model already-persisted
    /// pages, so they survive the crash alongside the durable log).
    pub fn take_snapshots(&mut self) -> Vec<(u64, Box<Database>)> {
        std::mem::take(&mut self.snapshots)
    }

    /// Reinstalls checkpoint snapshots (recovery hands them back so the
    /// recovered database can crash and recover again).
    pub fn set_snapshots(&mut self, snapshots: Vec<(u64, Box<Database>)>) {
        self.snapshots = snapshots;
    }

    /// Resets all volatile transactional state after a crash: locks,
    /// latches, stall/victim bookkeeping, the ATT, and the dirty page
    /// table. Recovery rebuilds what the log says; nothing volatile
    /// survives a power loss.
    pub fn clear_recovery_state(&mut self) {
        self.locks = LockManager::new();
        self.latches = LatchTable::new();
        self.stalled_txns.clear();
        self.victim_txns.clear();
        self.att.clear();
        self.dirty_pages.clear();
        self.dirty_page_lsns.clear();
    }

    /// Closes a fully-undone loser with an `Abort` record (recovery's
    /// counterpart of the tail of [`Database::rollback_txn`]).
    pub fn finish_abort(&mut self, txn: u64) {
        self.att.remove(&TxnId(txn));
        self.wal.append_record(&WalRecord::Abort { txn }, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsens_storage::schema::ColType;
    use dbsens_storage::value::Value;

    fn setup() -> (Database, TableId) {
        let mut db = Database::new(100.0, 1 << 30);
        let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Int)]);
        let rows: Vec<Row> = (0..50)
            .map(|i| vec![Value::Int(i), Value::Int(i % 5)])
            .collect();
        let t = db.create_table("t", schema, rows);
        db.create_index(t, "pk", &[0]);
        db.create_index(t, "by_grp", &[1]);
        (db, t)
    }

    #[test]
    fn catalog_lookups() {
        let (db, t) = setup();
        assert_eq!(db.table_id("t"), t);
        assert_eq!(db.table(t).index("pk").key_cols, vec![0]);
        assert_eq!(db.table(t).index_pos("by_grp"), 1);
        assert_eq!(db.table(t).layout.modeled_rows(), 5000);
    }

    #[test]
    #[should_panic(expected = "no table named")]
    fn missing_table_panics() {
        let (db, _) = setup();
        db.table_id("nope");
    }

    #[test]
    fn insert_maintains_indexes() {
        let (mut db, t) = setup();
        let rid = db.insert_row(t, vec![Value::Int(100), Value::Int(3)]);
        let found: Vec<_> = db.table(t).index("pk").btree.get(&Key::int(100)).collect();
        assert_eq!(found, vec![rid]);
        // Secondary index sees it too.
        assert!(db.table(t).index("by_grp").btree.get(&Key::int(3)).count() >= 11);
    }

    #[test]
    fn delete_maintains_indexes() {
        let (mut db, t) = setup();
        let rid = db
            .table(t)
            .index("pk")
            .btree
            .get(&Key::int(7))
            .next()
            .unwrap();
        let old = db.delete_row(t, rid).unwrap();
        assert_eq!(old[0].as_int(), 7);
        assert!(db
            .table(t)
            .index("pk")
            .btree
            .get(&Key::int(7))
            .next()
            .is_none());
        assert!(db.delete_row(t, rid).is_none());
    }

    #[test]
    fn update_rekeys_only_changed_indexes() {
        let (mut db, t) = setup();
        let rid = db
            .table(t)
            .index("pk")
            .btree
            .get(&Key::int(7))
            .next()
            .unwrap();
        assert!(db.update_row(t, rid, |r| r[1] = Value::Int(99)));
        assert!(db
            .table(t)
            .index("by_grp")
            .btree
            .get(&Key::int(99))
            .any(|r| r == rid));
        assert!(db
            .table(t)
            .index("pk")
            .btree
            .get(&Key::int(7))
            .any(|r| r == rid));
    }

    #[test]
    fn columnstore_maintenance_on_dml() {
        let (mut db, t) = setup();
        db.create_columnstore(t, 16);
        db.insert_row(t, vec![Value::Int(500), Value::Int(1)]);
        let cs = &db.table(t).columnstore.as_ref().unwrap().store;
        assert_eq!(cs.delta_rows(), 1);
        assert_eq!(cs.total_rows(), 51);
    }

    #[test]
    fn modeled_row_scales_and_clamps() {
        let (db, t) = setup();
        assert_eq!(db.modeled_row(t, RowId(10)), 1000);
        assert_eq!(db.modeled_row(t, RowId(10_000)), 4999);
    }

    #[test]
    fn txn_ids_are_unique() {
        let (mut db, _) = setup();
        let a = db.begin_txn();
        let b = db.begin_txn();
        assert_ne!(a, b);
    }
}
