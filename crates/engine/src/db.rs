//! Database catalog: tables, indexes, columnstores, and the shared storage
//! services (buffer pool, WAL, lock manager, latches).
//!
//! A [`Database`] is shared among simulated tasks via `Rc<RefCell<_>>`;
//! the discrete-event kernel serializes all execution, so no finer locking
//! is needed.

use crate::cost::EngineCost;
use dbsens_storage::btree::{BTree, RowId};
use dbsens_storage::bufferpool::BufferPool;
use dbsens_storage::columnstore::ColumnStore;
use dbsens_storage::heap::HeapTable;
use dbsens_storage::lock::{LatchTable, LockManager};
use dbsens_storage::physical::{ColumnstoreLayout, IndexLayout, ModelSpace, TableLayout};
use dbsens_storage::schema::Schema;
use dbsens_storage::value::{Key, Row};
use dbsens_storage::wal::Wal;

/// Identifier of a table within a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub usize);

/// A secondary B-tree index.
#[derive(Debug)]
pub struct Index {
    /// Index name.
    pub name: String,
    /// Key column positions in the base table.
    pub key_cols: Vec<usize>,
    /// The logical tree.
    pub btree: BTree,
    /// Paper-scale physical layout.
    pub layout: IndexLayout,
}

impl Index {
    /// Extracts this index's key from a base-table row.
    pub fn key_of(&self, row: &Row) -> Key {
        Key::from_values(self.key_cols.iter().map(|&c| row[c].clone()).collect())
    }
}

/// A columnstore index over a table.
#[derive(Debug)]
pub struct ColumnStoreIndex {
    /// The logical store.
    pub store: ColumnStore,
    /// Paper-scale physical layout.
    pub layout: ColumnstoreLayout,
}

/// A table: logical heap plus paper-scale layout and secondary structures.
#[derive(Debug)]
pub struct Table {
    /// Table id (used in lock keys).
    pub id: u32,
    /// Table name.
    pub name: String,
    /// Logical rows.
    pub heap: HeapTable,
    /// Paper-scale layout of the base heap/clustered index.
    pub layout: TableLayout,
    /// Secondary B-tree indexes.
    pub indexes: Vec<Index>,
    /// Optional (non-clustered) columnstore index.
    pub columnstore: Option<ColumnStoreIndex>,
}

impl Table {
    /// Finds an index by name.
    ///
    /// # Panics
    ///
    /// Panics if no such index exists (catalog lookups are static).
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, name: &str) -> &Index {
        self.indexes
            .iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("no index {name} on {}", self.name))
    }

    /// Index position by name.
    pub fn index_pos(&self, name: &str) -> usize {
        self.indexes
            .iter()
            .position(|i| i.name == name)
            .unwrap_or_else(|| panic!("no index {name} on {}", self.name))
    }
}

/// The database: catalog plus shared storage services.
///
/// # Examples
///
/// ```
/// use dbsens_engine::db::Database;
/// use dbsens_storage::schema::{ColType, Schema};
/// use dbsens_storage::value::Value;
///
/// let mut db = Database::new(1000.0, 1 << 30);
/// let schema = Schema::new(&[("id", ColType::Int), ("v", ColType::Int)]);
/// let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int(i), Value::Int(i * 2)]).collect();
/// let t = db.create_table("demo", schema, rows);
/// db.create_index(t, "pk", &[0]);
/// assert_eq!(db.table(t).heap.len(), 100);
/// // Paper-scale footprint: 100 logical rows model 100k rows.
/// assert_eq!(db.table(t).layout.modeled_rows(), 100_000);
/// ```
#[derive(Debug)]
pub struct Database {
    /// Modeled rows per logical row (uniform across tables so intermediate
    /// cardinalities scale consistently).
    pub row_scale: f64,
    tables: Vec<Table>,
    /// Modeled page/region allocator.
    pub space: ModelSpace,
    /// Page residency tracker.
    pub bufferpool: BufferPool,
    /// Write-ahead log.
    pub wal: Wal,
    /// Row/key lock manager.
    pub locks: LockManager,
    /// Short-term latch table.
    pub latches: LatchTable,
    /// Cost calibration.
    pub cost: EngineCost,
    next_txn: u64,
    dirty_pages: std::collections::HashSet<u64>,
    session_region: dbsens_hwsim::mem::Region,
    batch_region: dbsens_hwsim::mem::Region,
    /// Transactions whose owning task is stuck in fault recovery while
    /// holding locks (candidates for deadlock victimization).
    stalled_txns: std::collections::HashSet<dbsens_storage::lock::TxnId>,
    /// Transactions the lock monitor has chosen as deadlock victims; their
    /// owning task must abort instead of continuing.
    victim_txns: std::collections::HashSet<dbsens_storage::lock::TxnId>,
}

impl Database {
    /// Creates an empty database with the given logical-to-modeled row
    /// scale and buffer pool capacity in bytes.
    pub fn new(row_scale: f64, bufferpool_bytes: u64) -> Self {
        let mut space = ModelSpace::new();
        let session_region = space.alloc_region();
        let batch_region = space.alloc_region();
        Database {
            row_scale,
            tables: Vec::new(),
            space,
            bufferpool: BufferPool::new(bufferpool_bytes),
            wal: Wal::new(),
            locks: LockManager::new(),
            latches: LatchTable::new(),
            cost: EngineCost::default(),
            next_txn: 0,
            dirty_pages: std::collections::HashSet::new(),
            session_region,
            batch_region,
            stalled_txns: std::collections::HashSet::new(),
            victim_txns: std::collections::HashSet::new(),
        }
    }

    /// Marks `txn` as stalled in fault recovery (e.g. retrying a failed
    /// commit-log write while holding its locks).
    pub fn mark_stalled(&mut self, txn: dbsens_storage::lock::TxnId) {
        self.stalled_txns.insert(txn);
    }

    /// Clears `txn`'s stalled mark (recovery succeeded or the txn ended).
    pub fn clear_stalled(&mut self, txn: dbsens_storage::lock::TxnId) {
        self.stalled_txns.remove(&txn);
    }

    /// Currently stalled transactions, in id order.
    pub fn stalled_txns(&self) -> Vec<dbsens_storage::lock::TxnId> {
        let mut v: Vec<_> = self.stalled_txns.iter().copied().collect();
        v.sort();
        v
    }

    /// Marks `txn` as a deadlock victim; its owning task observes this via
    /// [`Database::take_victim`] and aborts.
    pub fn mark_victim(&mut self, txn: dbsens_storage::lock::TxnId) {
        self.victim_txns.insert(txn);
    }

    /// Consumes a victim mark for `txn`, returning `true` if it was set.
    pub fn take_victim(&mut self, txn: dbsens_storage::lock::TxnId) -> bool {
        self.victim_txns.remove(&txn)
    }

    /// Cache region of shared session state / plan cache structures.
    pub fn session_region(&self) -> dbsens_hwsim::mem::Region {
        self.session_region
    }

    /// Cache region of columnstore batch buffers and dictionaries.
    pub fn batch_region(&self) -> dbsens_hwsim::mem::Region {
        self.batch_region
    }

    /// Pre-loads the buffer pool the way a freshly loaded (or long-running)
    /// server would be warm: every table's data pages, B-tree leaves, and
    /// columnstore segments are touched in catalog order, then small
    /// structures are re-referenced so the clock policy favours keeping
    /// them when the database exceeds memory. The paper measures warmed
    /// systems (databases are loaded before each run).
    pub fn warm_bufferpool(&mut self) {
        let mut runs: Vec<(u64, u64)> = Vec::new();
        let mut small_runs: Vec<(u64, u64)> = Vec::new();
        for t in &self.tables {
            let (start, pages) = t.layout.scan_run();
            runs.push((start, pages));
            if pages * dbsens_storage::bufferpool::PAGE_BYTES < (1 << 30) {
                small_runs.push((start, pages));
            }
            for idx in &t.indexes {
                let (s2, p2) = idx.layout.leaf_scan_run(0.0, 1.0);
                runs.push((s2, p2));
                small_runs.push((s2, p2));
            }
            if let Some(cs) = &t.columnstore {
                for c in 0..t.heap.schema().len() {
                    let (s3, p3) = cs.layout.column_scan_run(c, 1.0);
                    runs.push((s3, p3));
                }
            }
        }
        for (start, pages) in runs {
            self.bufferpool.access(start, pages, false);
        }
        // Re-reference hot/small structures so they survive.
        for (start, pages) in small_runs {
            self.bufferpool.access(start, pages, false);
        }
    }

    /// Records a modeled page as dirtied since the last checkpoint.
    pub fn mark_dirty(&mut self, page: u64) {
        self.dirty_pages.insert(page);
    }

    /// Takes the set of distinct dirty pages for the checkpoint writer.
    pub fn take_dirty_pages(&mut self) -> usize {
        let n = self.dirty_pages.len();
        self.dirty_pages.clear();
        n
    }

    /// Creates a table from initial logical rows; its modeled size is
    /// `rows.len() * row_scale`.
    pub fn create_table(&mut self, name: &str, schema: Schema, rows: Vec<Row>) -> TableId {
        let modeled_rows = ((rows.len() as f64) * self.row_scale).ceil() as u64;
        let row_bytes = schema.avg_row_bytes();
        let layout = TableLayout::new(&mut self.space, modeled_rows.max(1), row_bytes);
        let mut heap = HeapTable::new(schema);
        for row in rows {
            heap.insert(row);
        }
        let id = self.tables.len();
        self.tables.push(Table {
            id: id as u32,
            name: name.to_owned(),
            heap,
            layout,
            indexes: Vec::new(),
            columnstore: None,
        });
        TableId(id)
    }

    /// Builds a B-tree index over the given key columns.
    pub fn create_index(&mut self, table: TableId, name: &str, key_cols: &[usize]) {
        let t = &self.tables[table.0];
        let key_bytes: u64 =
            key_cols.iter().map(|&c| t.heap.schema().columns()[c].ty.avg_bytes()).sum();
        let modeled_entries = t.layout.modeled_rows();
        let layout = IndexLayout::new(&mut self.space, modeled_entries, key_bytes.max(4));
        let mut btree = BTree::new();
        for (rid, row) in t.heap.iter() {
            let key = Key::from_values(key_cols.iter().map(|&c| row[c].clone()).collect());
            btree.insert(key, rid);
        }
        self.tables[table.0].indexes.push(Index {
            name: name.to_owned(),
            key_cols: key_cols.to_vec(),
            btree,
            layout,
        });
    }

    /// Builds an updateable non-clustered columnstore index over the whole
    /// table (the HTAP configuration) or a clustered columnstore (the DW
    /// configuration — same model, the base heap is then unused by
    /// queries).
    pub fn create_columnstore(&mut self, table: TableId, rowgroup_rows: usize) {
        let t = &self.tables[table.0];
        let rows: Vec<Row> = t.heap.iter().map(|(_, r)| r.clone()).collect();
        let store = ColumnStore::build(t.heap.schema().clone(), &rows, rowgroup_rows);
        let layout = ColumnstoreLayout::from_logical(&mut self.space, &store, self.row_scale);
        self.tables[table.0].columnstore = Some(ColumnStoreIndex { store, layout });
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Mutable table by id.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.0]
    }

    /// Table id by name.
    ///
    /// # Panics
    ///
    /// Panics if no such table exists.
    pub fn table_id(&self, name: &str) -> TableId {
        TableId(
            self.tables
                .iter()
                .position(|t| t.name == name)
                .unwrap_or_else(|| panic!("no table named {name}")),
        )
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Allocates a fresh transaction id.
    pub fn begin_txn(&mut self) -> dbsens_storage::lock::TxnId {
        self.next_txn += 1;
        dbsens_storage::lock::TxnId(self.next_txn)
    }

    /// Inserts a row, maintaining all indexes and the columnstore delta.
    pub fn insert_row(&mut self, table: TableId, row: Row) -> RowId {
        let t = &mut self.tables[table.0];
        let rid = t.heap.insert(row.clone());
        for idx in &mut t.indexes {
            let key = Key::from_values(idx.key_cols.iter().map(|&c| row[c].clone()).collect());
            idx.btree.insert(key, rid);
        }
        if let Some(cs) = &mut t.columnstore {
            cs.store.insert(rid, row);
        }
        rid
    }

    /// Deletes a row, maintaining all indexes and the columnstore.
    /// Returns the old row if it existed.
    pub fn delete_row(&mut self, table: TableId, rid: RowId) -> Option<Row> {
        let t = &mut self.tables[table.0];
        let row = t.heap.delete(rid)?;
        for idx in &mut t.indexes {
            let key = Key::from_values(idx.key_cols.iter().map(|&c| row[c].clone()).collect());
            idx.btree.remove(&key, rid);
        }
        if let Some(cs) = &mut t.columnstore {
            cs.store.delete(rid);
        }
        Some(row)
    }

    /// Updates a row in place via `mutate`, maintaining indexes whose keys
    /// change and the columnstore.
    pub fn update_row(&mut self, table: TableId, rid: RowId, mutate: impl FnOnce(&mut Row)) -> bool {
        let t = &mut self.tables[table.0];
        let Some(row) = t.heap.get_mut(rid) else { return false };
        let old = row.clone();
        mutate(row);
        let new = row.clone();
        for idx in &mut t.indexes {
            let old_key = Key::from_values(idx.key_cols.iter().map(|&c| old[c].clone()).collect());
            let new_key = Key::from_values(idx.key_cols.iter().map(|&c| new[c].clone()).collect());
            if old_key != new_key {
                idx.btree.remove(&old_key, rid);
                idx.btree.insert(new_key, rid);
            }
        }
        if let Some(cs) = &mut t.columnstore {
            cs.store.update(rid, new);
        }
        true
    }

    /// Total modeled bytes of primary data plus indexes (columnstore
    /// tables count their compressed segments instead of the unused heap),
    /// used by the optimizer's buffer-residency heuristic.
    pub fn primary_data_bytes(&self) -> u64 {
        self.tables
            .iter()
            .map(|t| {
                let data = match &t.columnstore {
                    Some(cs) => cs.layout.data_bytes(),
                    None => t.layout.data_bytes(),
                };
                data + t.indexes.iter().map(|i| i.layout.index_bytes()).sum::<u64>()
            })
            .sum()
    }

    /// Modeled (paper-scale) row position of a logical row id, used for
    /// lock keys and page ids so contention scales with the modeled
    /// database size.
    pub fn modeled_row(&self, table: TableId, rid: RowId) -> u64 {
        let t = &self.tables[table.0];
        let modeled = (rid.0 as f64 * self.row_scale) as u64;
        modeled.min(t.layout.modeled_rows().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsens_storage::schema::ColType;
    use dbsens_storage::value::Value;

    fn setup() -> (Database, TableId) {
        let mut db = Database::new(100.0, 1 << 30);
        let schema = Schema::new(&[("id", ColType::Int), ("grp", ColType::Int)]);
        let rows: Vec<Row> = (0..50).map(|i| vec![Value::Int(i), Value::Int(i % 5)]).collect();
        let t = db.create_table("t", schema, rows);
        db.create_index(t, "pk", &[0]);
        db.create_index(t, "by_grp", &[1]);
        (db, t)
    }

    #[test]
    fn catalog_lookups() {
        let (db, t) = setup();
        assert_eq!(db.table_id("t"), t);
        assert_eq!(db.table(t).index("pk").key_cols, vec![0]);
        assert_eq!(db.table(t).index_pos("by_grp"), 1);
        assert_eq!(db.table(t).layout.modeled_rows(), 5000);
    }

    #[test]
    #[should_panic(expected = "no table named")]
    fn missing_table_panics() {
        let (db, _) = setup();
        db.table_id("nope");
    }

    #[test]
    fn insert_maintains_indexes() {
        let (mut db, t) = setup();
        let rid = db.insert_row(t, vec![Value::Int(100), Value::Int(3)]);
        let found: Vec<_> = db.table(t).index("pk").btree.get(&Key::int(100)).collect();
        assert_eq!(found, vec![rid]);
        // Secondary index sees it too.
        assert!(db.table(t).index("by_grp").btree.get(&Key::int(3)).count() >= 11);
    }

    #[test]
    fn delete_maintains_indexes() {
        let (mut db, t) = setup();
        let rid = db.table(t).index("pk").btree.get(&Key::int(7)).next().unwrap();
        let old = db.delete_row(t, rid).unwrap();
        assert_eq!(old[0].as_int(), 7);
        assert!(db.table(t).index("pk").btree.get(&Key::int(7)).next().is_none());
        assert!(db.delete_row(t, rid).is_none());
    }

    #[test]
    fn update_rekeys_only_changed_indexes() {
        let (mut db, t) = setup();
        let rid = db.table(t).index("pk").btree.get(&Key::int(7)).next().unwrap();
        assert!(db.update_row(t, rid, |r| r[1] = Value::Int(99)));
        assert!(db.table(t).index("by_grp").btree.get(&Key::int(99)).any(|r| r == rid));
        assert!(db.table(t).index("pk").btree.get(&Key::int(7)).any(|r| r == rid));
    }

    #[test]
    fn columnstore_maintenance_on_dml() {
        let (mut db, t) = setup();
        db.create_columnstore(t, 16);
        db.insert_row(t, vec![Value::Int(500), Value::Int(1)]);
        let cs = &db.table(t).columnstore.as_ref().unwrap().store;
        assert_eq!(cs.delta_rows(), 1);
        assert_eq!(cs.total_rows(), 51);
    }

    #[test]
    fn modeled_row_scales_and_clamps() {
        let (db, t) = setup();
        assert_eq!(db.modeled_row(t, RowId(10)), 1000);
        assert_eq!(db.modeled_row(t, RowId(10_000)), 4999);
    }

    #[test]
    fn txn_ids_are_unique() {
        let (mut db, _) = setup();
        let a = db.begin_txn();
        let b = db.begin_txn();
        assert_ne!(a, b);
    }
}
