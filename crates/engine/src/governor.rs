//! Resource governor: the knobs the paper turns.
//!
//! Mirrors SQL Server's resource governor plus the server memory layout the
//! paper describes in §8: about 80% of server memory goes to SQL Server, a
//! portion is set aside for shared structures (the buffer pool), and the
//! rest is query workspace partitioned by per-query grants (default cap
//! 25%).

use crate::db::Database;
use crate::optimizer::PlanContext;
use serde::{Deserialize, Serialize};

/// Which executor runs analytical query plans.
///
/// The morsel-driven path decomposes physical plans into push-based
/// pipelines whose fixed-size morsels are claimed by worker partitions
/// (see [`crate::pushexec`]); the volcano path walks the plan tree
/// pull-style and models parallelism with barrier costs (see
/// [`crate::exec::execute`]). Plans the push path cannot run (nested-loop
/// or index-range sources) fall back to volcano automatically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Push-based morsel-driven parallel pipelines (the default).
    #[default]
    Morsel,
    /// Legacy pull-based tree walk with modeled parallelism barriers.
    Volcano,
}

/// Resource governor settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Governor {
    /// Maximum degree of parallelism for any query.
    pub maxdop: usize,
    /// Per-query memory grant cap as a fraction of the query workspace
    /// (the paper's default is 25%; Figure 8 sweeps 15%/5%/2%).
    pub grant_fraction: f64,
    /// Total query workspace bytes.
    pub workspace_bytes: u64,
    /// Estimated serial cost (instructions) above which parallel plans are
    /// considered (SQL Server's "cost threshold for parallelism").
    pub cost_threshold: f64,
    /// Blocking-I/O retry attempts before a worker abandons the I/O
    /// (meaningful only under fault injection).
    pub io_retry_attempts: u32,
    /// Transaction abort/retry attempts before a client gives up on a
    /// transaction (meaningful only under fault injection).
    pub txn_retry_attempts: u32,
    /// Per-query deadline in seconds; `0` disables deadline enforcement.
    pub query_deadline_secs: f64,
    /// Whether graceful-degradation machinery (I/O retries, transaction
    /// abort/retry, deadline cancellation, the lock monitor) is wired into
    /// the workload tasks. Off by default so healthy runs carry zero
    /// recovery overhead; enabled by fault-injection experiments.
    #[serde(default)]
    pub fault_recovery: bool,
    /// Which executor runs analytical plans (morsel-driven push pipelines
    /// by default; volcano kept as an explicit opt-in for comparison).
    #[serde(default)]
    pub exec_mode: ExecMode,
}

/// The paper's server memory: 64 GB.
pub const SERVER_MEMORY: u64 = 64 << 30;

impl Governor {
    /// Default configuration on the paper's 64 GB testbed: SQL Server gets
    /// ~80% of memory, ~28% of which is query workspace (so that the 25%
    /// default grant is ~9.2 GB, matching §8); the rest is buffer pool.
    pub fn paper_default(maxdop: usize) -> Self {
        Governor {
            maxdop,
            grant_fraction: 0.25,
            workspace_bytes: (SERVER_MEMORY as f64 * 0.80 * 0.72) as u64,
            cost_threshold: 9.0e9,
            io_retry_attempts: 4,
            txn_retry_attempts: 5,
            query_deadline_secs: 0.0,
            fault_recovery: false,
            exec_mode: ExecMode::default(),
        }
    }

    /// Service-mode configuration: like [`Governor::paper_default`] but
    /// with deadline enforcement and the graceful-degradation machinery
    /// always armed. Long-running service paths must never execute a
    /// query without a watchdog, so this constructor refuses a disabled
    /// deadline instead of defaulting to one.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_secs` is not strictly positive.
    pub fn for_service(maxdop: usize, deadline_secs: f64) -> Self {
        assert!(
            deadline_secs > 0.0,
            "service governors require a positive per-query deadline"
        );
        let mut g = Governor::paper_default(maxdop);
        g.fault_recovery = true;
        g.query_deadline_secs = deadline_secs;
        g
    }

    /// Buffer pool bytes under this layout (SQL Server memory minus the
    /// workspace).
    pub fn bufferpool_bytes() -> u64 {
        (SERVER_MEMORY as f64 * 0.80 * 0.72) as u64
    }

    /// Per-query grant cap in bytes.
    pub fn grant_cap(&self) -> u64 {
        (self.workspace_bytes as f64 * self.grant_fraction.clamp(0.0, 1.0)) as u64
    }

    /// Builds the optimizer context for this governor over a database.
    pub fn plan_context(&self, db: &Database) -> PlanContext {
        PlanContext {
            maxdop: self.maxdop.max(1),
            grant_cap_bytes: self.grant_cap(),
            cost_threshold: self.cost_threshold,
            bufferpool_bytes: db.bufferpool.capacity_bytes(),
            db_bytes: db.primary_data_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grant_cap_matches_paper() {
        let g = Governor::paper_default(32);
        // 25% of the workspace should be ~9.2 GB, as §8 reports.
        let cap_gb = g.grant_cap() as f64 / (1u64 << 30) as f64;
        assert!((cap_gb - 9.2).abs() < 0.3, "cap = {cap_gb} GB");
    }

    #[test]
    fn service_governor_always_has_a_watchdog() {
        let g = Governor::for_service(8, 30.0);
        assert!(g.fault_recovery, "service paths must arm degradation");
        assert_eq!(g.query_deadline_secs, 30.0);
        assert_eq!(g.maxdop, 8);
    }

    #[test]
    #[should_panic(expected = "positive per-query deadline")]
    fn service_governor_rejects_disabled_deadline() {
        let _ = Governor::for_service(8, 0.0);
    }

    #[test]
    fn grant_fraction_sweep() {
        let mut g = Governor::paper_default(32);
        let full = g.grant_cap();
        g.grant_fraction = 0.05;
        assert_eq!(g.grant_cap(), full / 5);
    }
}
