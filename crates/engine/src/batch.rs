//! Columnar batches for the push-based executor.
//!
//! A [`Batch`] is a fixed-size morsel of rows transposed into typed
//! [`ColumnVector`]s plus an optional selection mask. Sources
//! ([`crate::pushexec`]'s scan stage) emit batches; operators consume and
//! produce them through the [`crate::pushexec::PhysicalOperator`] trait;
//! [`crate::vexpr::PhysicalExpr`] evaluates expressions column-at-a-time
//! over them. Columns whose values share one type get a dense typed vector
//! (`Int`/`Float`/`Str`); mixed or nullable columns fall back to
//! [`ColumnVector::Mixed`], preserving the row engine's exact `Value`
//! semantics.

use dbsens_storage::value::{Row, Value};

/// One column of a batch, stored as a typed dense vector when the column
/// is uniformly typed and as boxed values otherwise.
#[derive(Debug, Clone)]
pub enum ColumnVector {
    /// All values are `Value::Int`.
    Int(Vec<i64>),
    /// All values are `Value::Float`.
    Float(Vec<f64>),
    /// All values are `Value::Str`.
    Str(Vec<String>),
    /// Mixed types or NULLs present.
    Mixed(Vec<Value>),
}

impl ColumnVector {
    /// Number of entries (including unselected ones).
    pub fn len(&self) -> usize {
        match self {
            ColumnVector::Int(v) => v.len(),
            ColumnVector::Float(v) => v.len(),
            ColumnVector::Str(v) => v.len(),
            ColumnVector::Mixed(v) => v.len(),
        }
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `i` as an owned [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnVector::Int(v) => Value::Int(v[i]),
            ColumnVector::Float(v) => Value::Float(v[i]),
            ColumnVector::Str(v) => Value::Str(v[i].clone()),
            ColumnVector::Mixed(v) => v[i].clone(),
        }
    }

    /// Builds a vector from owned values, choosing a dense typed layout
    /// when every value shares one non-null type.
    pub fn from_values(vals: Vec<Value>) -> Self {
        enum T {
            Int,
            Float,
            Str,
        }
        let mut ty: Option<T> = None;
        let mut uniform = true;
        for v in &vals {
            let t = match v {
                Value::Int(_) => T::Int,
                Value::Float(_) => T::Float,
                Value::Str(_) => T::Str,
                Value::Null => {
                    uniform = false;
                    break;
                }
            };
            match (&ty, &t) {
                (None, _) => ty = Some(t),
                (Some(T::Int), T::Int) | (Some(T::Float), T::Float) | (Some(T::Str), T::Str) => {}
                _ => {
                    uniform = false;
                    break;
                }
            }
        }
        if !uniform || vals.is_empty() {
            return ColumnVector::Mixed(vals);
        }
        match ty.expect("non-empty uniform column has a type") {
            T::Int => ColumnVector::Int(
                vals.into_iter()
                    .map(|v| match v {
                        Value::Int(i) => i,
                        _ => unreachable!("uniform Int column"),
                    })
                    .collect(),
            ),
            T::Float => ColumnVector::Float(
                vals.into_iter()
                    .map(|v| match v {
                        Value::Float(f) => f,
                        _ => unreachable!("uniform Float column"),
                    })
                    .collect(),
            ),
            T::Str => ColumnVector::Str(
                vals.into_iter()
                    .map(|v| match v {
                        Value::Str(s) => s,
                        _ => unreachable!("uniform Str column"),
                    })
                    .collect(),
            ),
        }
    }
}

/// A morsel of rows in columnar form: one [`ColumnVector`] per column plus
/// an optional selection mask listing the live row indices in order.
///
/// When `sel` is `None` every row is live. Filters narrow batches by
/// replacing the mask rather than compacting the columns, so upstream
/// vectors are shared untouched until an operator materializes rows.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// Columns, all of equal length.
    pub cols: Vec<ColumnVector>,
    /// Live row indices in increasing order; `None` means all rows.
    pub sel: Option<Vec<u32>>,
    len: usize,
}

impl Batch {
    /// An empty batch with no columns.
    pub fn empty() -> Self {
        Batch::default()
    }

    /// Transposes owned rows into a columnar batch. All rows must share
    /// the arity of the first.
    pub fn from_rows(rows: Vec<Row>) -> Self {
        let len = rows.len();
        let arity = rows.first().map_or(0, Row::len);
        let mut cols_vals: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(len)).collect();
        for row in rows {
            debug_assert_eq!(row.len(), arity, "ragged row in batch");
            for (c, v) in row.into_iter().enumerate() {
                cols_vals[c].push(v);
            }
        }
        Batch {
            cols: cols_vals
                .into_iter()
                .map(ColumnVector::from_values)
                .collect(),
            sel: None,
            len,
        }
    }

    /// Number of live rows (the selection mask length, or the column
    /// length when no mask is set).
    pub fn num_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.len,
        }
    }

    /// Physical row count before selection.
    pub fn capacity_rows(&self) -> usize {
        self.len
    }

    /// The physical index of the `i`-th live row.
    pub fn live_index(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// Materializes the `i`-th live row as owned values.
    pub fn row(&self, i: usize) -> Row {
        let phys = self.live_index(i);
        self.cols.iter().map(|c| c.get(phys)).collect()
    }

    /// Materializes all live rows in order.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.num_rows()).map(|i| self.row(i)).collect()
    }

    /// Restricts the batch to the live rows whose *live* positions are in
    /// `keep` (increasing), composing with any existing mask.
    pub fn select(&mut self, keep: Vec<u32>) {
        let composed = match &self.sel {
            Some(old) => keep.into_iter().map(|i| old[i as usize]).collect(),
            None => keep,
        };
        self.sel = Some(composed);
    }

    /// A batch containing only the named columns (by physical index),
    /// sharing the selection mask.
    pub fn project(&self, cols: &[usize]) -> Batch {
        Batch {
            cols: cols.iter().map(|&c| self.cols[c].clone()).collect(),
            sel: self.sel.clone(),
            len: self.len,
        }
    }

    /// Replaces the columns with `cols` (all pre-selected to live rows:
    /// the new batch has no mask and `cols[0].len()` rows).
    pub fn from_columns(cols: Vec<ColumnVector>) -> Batch {
        let len = cols.first().map_or(0, ColumnVector::len);
        Batch {
            cols,
            sel: None,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn transpose_round_trips() {
        let rows = vec![
            vec![v(1), Value::Str("a".into()), Value::Float(0.5)],
            vec![v(2), Value::Str("b".into()), Value::Float(1.5)],
        ];
        let b = Batch::from_rows(rows.clone());
        assert_eq!(b.num_rows(), 2);
        assert!(matches!(b.cols[0], ColumnVector::Int(_)));
        assert!(matches!(b.cols[1], ColumnVector::Str(_)));
        assert!(matches!(b.cols[2], ColumnVector::Float(_)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn nulls_fall_back_to_mixed() {
        let rows = vec![vec![v(1)], vec![Value::Null]];
        let b = Batch::from_rows(rows.clone());
        assert!(matches!(b.cols[0], ColumnVector::Mixed(_)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn selection_composes() {
        let rows: Vec<Row> = (0..6).map(|i| vec![v(i)]).collect();
        let mut b = Batch::from_rows(rows);
        b.select(vec![1, 3, 5]); // live = 1,3,5
        assert_eq!(b.num_rows(), 3);
        b.select(vec![0, 2]); // of those, keep first and last
        assert_eq!(b.to_rows(), vec![vec![v(1)], vec![v(5)]]);
    }

    #[test]
    fn projection_keeps_mask() {
        let rows: Vec<Row> = (0..4).map(|i| vec![v(i), v(i * 10)]).collect();
        let mut b = Batch::from_rows(rows);
        b.select(vec![0, 2]);
        let p = b.project(&[1]);
        assert_eq!(p.to_rows(), vec![vec![v(0)], vec![v(20)]]);
    }
}
