//! Simulated tasks for analytical queries: trace replay workers and the
//! query-stream driver.

use crate::db::Database;
use crate::exec::{
    execute, rows_digest, DemandTrace, MorselStage, QueryExecution, Stage, TraceItem,
};
use crate::governor::{ExecMode, Governor};
use crate::grant::GrantManager;
use crate::metrics::RunMetrics;
use crate::optimizer::optimize;
use crate::plan::Logical;
use crate::pushexec::execute_push;
use dbsens_hwsim::mem::MemProfile;
use dbsens_hwsim::task::{Demand, SimTask, Step, TaskCtx, TaskId, WaitClass};
use dbsens_hwsim::time::{SimDuration, SimTime};
use dbsens_storage::bufferpool::PAGE_BYTES;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Capped exponential backoff before retry attempt `attempt` (1-based):
/// `base << (attempt-1)`, saturating at `cap`.
pub fn retry_backoff(attempt: u32, base: SimDuration, cap: SimDuration) -> SimDuration {
    let shift = attempt.saturating_sub(1).min(20);
    let ns = base.as_nanos().saturating_mul(1u64 << shift);
    SimDuration::from_nanos(ns.min(cap.as_nanos()))
}

/// A worker replaying one demand trace; wakes its parent when finished.
///
/// With [`TraceTask::with_fault_recovery`], blocking device I/O that comes
/// back with an injected transient error is reissued under capped
/// exponential backoff; once the retry budget is spent the item is
/// abandoned (the scan proceeds with what it has) rather than wedging the
/// query.
pub struct TraceTask {
    db: Rc<RefCell<Database>>,
    items: Vec<TraceItem>,
    idx: usize,
    pending: VecDeque<Demand>,
    parent: TaskId,
    remaining: Rc<Cell<usize>>,
    notified: bool,
    /// Shared morsel queue (push-executor stages); workers claim the next
    /// morsel when their current one is drained. `None` for pre-split
    /// volcano traces.
    queue: Option<Rc<RefCell<VecDeque<DemandTrace>>>>,
    /// Worker partition id within the pipeline (morsel mode only).
    partition: Option<u32>,
    /// Degradation counters; `None` outside fault injection.
    metrics: Option<Rc<RefCell<RunMetrics>>>,
    /// Retry budget per blocking I/O (0 disables recovery entirely).
    io_retry_attempts: u32,
    /// The blocking demand most recently issued, kept for reissue.
    last_blocking: Option<Demand>,
    /// Retries already spent on the current blocking I/O.
    io_attempt: u32,
    /// The next blocking emission is a reissue; don't reset `io_attempt`.
    retrying: bool,
}

impl fmt::Debug for TraceTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceTask")
            .field("items", &self.items.len())
            .field("idx", &self.idx)
            .field("parent", &self.parent)
            .finish()
    }
}

impl TraceTask {
    /// Creates a worker for `items`; when done it decrements `remaining`
    /// and wakes `parent`.
    pub fn new(
        db: Rc<RefCell<Database>>,
        items: Vec<TraceItem>,
        parent: TaskId,
        remaining: Rc<Cell<usize>>,
    ) -> Self {
        TraceTask {
            db,
            items,
            idx: 0,
            pending: VecDeque::new(),
            parent,
            remaining,
            notified: false,
            queue: None,
            partition: None,
            metrics: None,
            io_retry_attempts: 0,
            last_blocking: None,
            io_attempt: 0,
            retrying: false,
        }
    }

    /// Creates a morsel worker for one pipeline stage: it repeatedly
    /// claims the next morsel from the shared `queue` and replays it, so
    /// partitions load-balance dynamically instead of replaying a
    /// pre-split trace. `partition` identifies the worker for
    /// per-partition accounting (fault attribution, busy time).
    pub fn morsel_worker(
        db: Rc<RefCell<Database>>,
        queue: Rc<RefCell<VecDeque<DemandTrace>>>,
        partition: u32,
        parent: TaskId,
        remaining: Rc<Cell<usize>>,
    ) -> Self {
        let mut t = TraceTask::new(db, Vec::new(), parent, remaining);
        t.queue = Some(queue);
        t.partition = Some(partition);
        t
    }

    /// Enables transient-I/O-error recovery: up to `attempts` reissues per
    /// blocking read/write, counted into `metrics`.
    pub fn with_fault_recovery(mut self, metrics: Rc<RefCell<RunMetrics>>, attempts: u32) -> Self {
        self.metrics = Some(metrics);
        self.io_retry_attempts = attempts;
        self
    }

    /// Emits a demand, remembering blocking device I/O so an injected
    /// failure can reissue it. No-op bookkeeping when recovery is off.
    fn emit(&mut self, d: Demand) -> Step {
        if self.io_retry_attempts > 0 {
            match d {
                Demand::DeviceRead { .. } | Demand::DeviceWrite { .. } => {
                    if self.retrying {
                        self.retrying = false;
                    } else {
                        self.io_attempt = 0;
                    }
                    self.last_blocking = Some(d.clone());
                }
                _ => self.last_blocking = None,
            }
        }
        Step::Demand(d)
    }
}

/// First retry delay for a failed blocking I/O.
const IO_RETRY_BASE: SimDuration = SimDuration::from_micros(500);
/// Retry delay ceiling.
const IO_RETRY_CAP: SimDuration = SimDuration::from_millis(100);

/// Read-ahead depth: a worker lets the device run up to this far behind
/// before it throttles (SQL Server issues deep sequential read-ahead).
const READAHEAD_DEPTH: dbsens_hwsim::time::SimDuration =
    dbsens_hwsim::time::SimDuration::from_millis(40);

impl SimTask for TraceTask {
    fn poll(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        if ctx.io_failed() {
            if let Some(d) = self.last_blocking.take() {
                self.io_attempt += 1;
                if self.io_attempt <= self.io_retry_attempts {
                    if let Some(m) = &self.metrics {
                        m.borrow_mut().record_retry();
                    }
                    self.retrying = true;
                    self.pending.push_front(d);
                    return Step::Demand(Demand::Sleep {
                        dur: retry_backoff(self.io_attempt, IO_RETRY_BASE, IO_RETRY_CAP),
                        class: WaitClass::Io,
                    });
                }
                // Budget spent: abandon this I/O and move on.
                if let Some(m) = &self.metrics {
                    m.borrow_mut().record_gave_up();
                }
                self.io_attempt = 0;
            }
        }
        if let Some(d) = self.pending.pop_front() {
            // Throttle sleeps depend on the backlog at issue time.
            if let Demand::Sleep {
                class: WaitClass::PageIoLatch,
                ..
            } = d
            {
                let backlog = ctx.ssd_read_backlog();
                if backlog > READAHEAD_DEPTH {
                    return Step::Demand(Demand::Sleep {
                        dur: backlog.saturating_sub(READAHEAD_DEPTH),
                        class: WaitClass::PageIoLatch,
                    });
                }
                // Backlog already drained; skip the throttle.
                return Step::Demand(Demand::Yield);
            }
            return self.emit(d);
        }
        loop {
            while self.idx < self.items.len() {
                // Move the item out rather than cloning it: the cursor only
                // ever advances, so the drained slot is never revisited, and
                // taking it spares a MemProfile clone per compute item.
                let item = std::mem::replace(
                    &mut self.items[self.idx],
                    TraceItem::Compute {
                        instructions: 0,
                        mem: MemProfile::new(),
                    },
                );
                self.idx += 1;
                match self.step_item(item) {
                    Some(step) => return step,
                    None => continue,
                }
            }
            // Current morsel drained: claim the next one (morsel mode).
            let next = self.queue.as_ref().and_then(|q| q.borrow_mut().pop_front());
            match next {
                Some(morsel) => {
                    self.items = morsel.items;
                    self.idx = 0;
                }
                None => break,
            }
        }
        if !self.notified {
            self.notified = true;
            self.remaining.set(self.remaining.get().saturating_sub(1));
            ctx.wake(self.parent);
        }
        Step::Done
    }

    fn label(&self) -> &str {
        "query-worker"
    }

    fn partition(&self) -> Option<u32> {
        self.partition
    }
}

impl TraceTask {
    /// Replays one trace item; returns the demand to emit, or `None` when
    /// the item resolved entirely in the bufferpool.
    fn step_item(&mut self, item: TraceItem) -> Option<Step> {
        match item {
            TraceItem::Compute { instructions, mem } => {
                Some(self.emit(Demand::Compute { instructions, mem }))
            }
            TraceItem::PageRun {
                start,
                pages,
                write,
            } => {
                let out = self.db.borrow_mut().bufferpool.access(start, pages, write);
                if out.evicted_dirty_pages > 0 {
                    self.pending.push_back(Demand::DeviceWriteAsync {
                        bytes: out.evicted_dirty_pages * PAGE_BYTES,
                    });
                }
                if out.miss_pages > 0 {
                    // Sequential read-ahead: issue the read without
                    // blocking, then throttle only if the device falls
                    // too far behind (overlaps I/O with compute, the
                    // source of Figure 5's concave response).
                    self.pending.push_back(Demand::DeviceReadPrefetch {
                        bytes: out.miss_pages * PAGE_BYTES,
                    });
                    self.pending.push_back(Demand::Sleep {
                        dur: dbsens_hwsim::time::SimDuration::ZERO,
                        class: WaitClass::PageIoLatch,
                    });
                }
                self.pending.pop_front().map(|d| self.emit(d))
            }
            TraceItem::RandomPages { start, span, count } => {
                let out = self
                    .db
                    .borrow_mut()
                    .bufferpool
                    .access_random(start, span, count, false);
                if out.evicted_dirty_pages > 0 {
                    self.pending.push_back(Demand::DeviceWriteAsync {
                        bytes: out.evicted_dirty_pages * PAGE_BYTES,
                    });
                }
                if out.miss_pages > 0 {
                    self.pending.push_back(Demand::DeviceRead {
                        bytes: out.miss_pages * PAGE_BYTES,
                        class: WaitClass::PageIoLatch,
                    });
                }
                self.pending.pop_front().map(|d| self.emit(d))
            }
            TraceItem::SpillWrite { bytes } => Some(self.emit(Demand::DeviceWrite {
                bytes,
                class: WaitClass::Io,
            })),
            TraceItem::SpillRead { bytes } => Some(self.emit(Demand::DeviceRead {
                bytes,
                class: WaitClass::Io,
            })),
        }
    }
}

/// Background checkpoint writer: periodically writes all pages dirtied
/// since the last round, generating the data-update write traffic that
/// makes transactional workloads sensitive to write-bandwidth limits
/// (paper §6) even when the database fits in memory.
pub struct CheckpointTask {
    db: Rc<RefCell<Database>>,
    /// Pages still to write in the current round.
    backlog_pages: u64,
    /// Pacing sleep between chunks (spreads the round over its interval so
    /// commit-critical log writes are not stuck behind one huge write).
    chunk_gap: dbsens_hwsim::time::SimDuration,
    wrote_chunk: bool,
}

/// Pages per paced checkpoint write (1 MB).
const CHECKPOINT_CHUNK_PAGES: u64 = 128;

impl fmt::Debug for CheckpointTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointTask")
            .field("backlog_pages", &self.backlog_pages)
            .finish()
    }
}

impl CheckpointTask {
    /// Creates the checkpoint writer for a database.
    pub fn new(db: Rc<RefCell<Database>>) -> Self {
        CheckpointTask {
            db,
            backlog_pages: 0,
            chunk_gap: dbsens_hwsim::time::SimDuration::ZERO,
            wrote_chunk: false,
        }
    }
}

impl SimTask for CheckpointTask {
    fn poll(&mut self, _ctx: &mut TaskCtx<'_>) -> Step {
        use dbsens_hwsim::time::SimDuration;
        if self.wrote_chunk {
            // Pace between chunks.
            self.wrote_chunk = false;
            return Step::Demand(Demand::Sleep {
                dur: self.chunk_gap,
                class: WaitClass::Think,
            });
        }
        if self.backlog_pages > 0 {
            let pages = self.backlog_pages.min(CHECKPOINT_CHUNK_PAGES);
            self.backlog_pages -= pages;
            self.wrote_chunk = true;
            return Step::Demand(Demand::DeviceWriteAsync {
                bytes: pages * PAGE_BYTES,
            });
        }
        // Start a new round. In crash-consistency mode this writes a fuzzy
        // ARIES checkpoint record and only flushes pages the WAL rule
        // allows; otherwise it is a plain dirty-page sweep.
        let (pages, interval) = {
            let mut db = self.db.borrow_mut();
            let pages = if db.crash_consistency() {
                db.log_checkpoint()
            } else {
                db.take_dirty_pages() as u64
            };
            (pages, db.cost.checkpoint_interval_secs.max(1))
        };
        if pages == 0 {
            return Step::Demand(Demand::Sleep {
                dur: SimDuration::from_secs(interval),
                class: WaitClass::Think,
            });
        }
        self.backlog_pages = pages;
        let chunks = pages.div_ceil(CHECKPOINT_CHUNK_PAGES).max(1);
        // Spread the round over ~80% of the interval.
        self.chunk_gap = SimDuration::from_secs_f64(interval as f64 * 0.8 / chunks as f64);
        Step::Demand(Demand::Yield)
    }

    fn label(&self) -> &str {
        "checkpoint"
    }
}

#[derive(Debug)]
struct RunningQuery {
    query_idx: usize,
    name: String,
    /// Pre-split worker traces (volcano executor). Empty on the push path.
    stages: Vec<Stage>,
    /// Morsel-queue stages (push executor). Empty on the volcano path.
    pipelines: Vec<MorselStage>,
    stage: usize,
    remaining: Rc<Cell<usize>>,
    grant: u64,
    started: SimTime,
}

#[derive(Debug)]
enum StreamState {
    Next(usize),
    WaitGrant(RunningQuery),
    Run(RunningQuery),
    Finished,
}

/// Drives a sequence of queries: optimize, execute logically, acquire the
/// memory grant, replay the staged demand trace with `dop` workers per
/// stage, record metrics, repeat.
pub struct QueryStreamTask {
    db: Rc<RefCell<Database>>,
    grants: Rc<RefCell<GrantManager>>,
    metrics: Rc<RefCell<RunMetrics>>,
    governor: Governor,
    queries: Vec<(String, Logical)>,
    repeat: bool,
    state: StreamState,
    label: String,
    /// Spawn workers with I/O-error recovery (fault injection only).
    fault_recovery: bool,
}

impl fmt::Debug for QueryStreamTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryStreamTask")
            .field("label", &self.label)
            .field("queries", &self.queries.len())
            .field("repeat", &self.repeat)
            .field("state", &self.state)
            .finish()
    }
}

impl QueryStreamTask {
    /// Creates a stream over `queries`. With `repeat`, the stream loops
    /// until the simulation ends; otherwise it finishes after one pass.
    pub fn new(
        db: Rc<RefCell<Database>>,
        grants: Rc<RefCell<GrantManager>>,
        metrics: Rc<RefCell<RunMetrics>>,
        governor: Governor,
        queries: Vec<(String, Logical)>,
        repeat: bool,
        label: impl Into<String>,
    ) -> Self {
        QueryStreamTask {
            db,
            grants,
            metrics,
            governor,
            queries,
            repeat,
            state: StreamState::Next(0),
            label: label.into(),
            fault_recovery: false,
        }
    }

    /// Enables graceful degradation under fault injection: workers retry
    /// failed I/O (per the governor's `io_retry_attempts`) and queries are
    /// cancelled at the governor's deadline instead of running away.
    pub fn with_fault_recovery(mut self) -> Self {
        self.fault_recovery = true;
        self
    }

    /// Prepares query `i`: optimize + logical execution + grant request.
    fn prepare(&mut self, i: usize, ctx: &mut TaskCtx<'_>) -> Step {
        let (name, logical) = &self.queries[i];
        let exec: QueryExecution = {
            let db = self.db.borrow();
            let pctx = self.governor.plan_context(&db);
            let plan = optimize(&db, logical, &pctx);
            match self.governor.exec_mode {
                // Push path; plans it does not cover (nested-loop joins,
                // index seeks) fall back to the volcano walker.
                ExecMode::Morsel => execute_push(&db, &plan).unwrap_or_else(|| execute(&db, &plan)),
                ExecMode::Volcano => execute(&db, &plan),
            }
        };
        self.metrics
            .borrow_mut()
            .record_query_result(name, rows_digest(&exec.rows));
        let running = RunningQuery {
            query_idx: i,
            name: name.clone(),
            stages: exec.stages,
            pipelines: exec.pipelines,
            stage: 0,
            remaining: Rc::new(Cell::new(0)),
            grant: exec.grant,
            started: ctx.now(),
        };
        let granted = self
            .grants
            .borrow_mut()
            .try_acquire(ctx.self_id(), running.grant);
        if granted {
            self.start_stage(running, ctx)
        } else {
            self.state = StreamState::WaitGrant(running);
            Step::Demand(Demand::Block {
                class: WaitClass::MemoryGrant,
            })
        }
    }

    /// Spawns workers for the current stage (skipping empty ones) or
    /// finishes the query.
    fn start_stage(&mut self, mut running: RunningQuery, ctx: &mut TaskCtx<'_>) -> Step {
        // Deadline enforcement (fault injection only): a query that blows
        // its budget is cancelled at the next stage boundary — workers have
        // already joined there, so the grant can be released safely.
        let total_stages = running.stages.len().max(running.pipelines.len());
        let deadline = self.governor.query_deadline_secs;
        if self.fault_recovery
            && deadline > 0.0
            && ctx.now().saturating_since(running.started) > SimDuration::from_secs_f64(deadline)
            && running.stage < total_stages
        {
            let woken = self.grants.borrow_mut().release(running.grant);
            for t in woken {
                ctx.wake(t);
            }
            self.metrics.borrow_mut().record_deadline_miss();
            self.state = StreamState::Next(running.query_idx + 1);
            return Step::Demand(Demand::Yield);
        }
        while running.stage < total_stages {
            if !running.pipelines.is_empty() {
                // Push-executor stage: spawn one worker per partition; they
                // claim morsels dynamically from a shared queue. The stage
                // runs exactly once per query execution, so its morsels are
                // moved into the queue rather than cloned (each morsel owns
                // per-item MemProfiles the clone would duplicate).
                let stage = &mut running.pipelines[running.stage];
                if stage.morsels.is_empty() {
                    running.stage += 1;
                    continue;
                }
                let n_morsels = stage.morsels.len();
                let queue: Rc<RefCell<VecDeque<DemandTrace>>> =
                    Rc::new(RefCell::new(std::mem::take(&mut stage.morsels).into()));
                let n = stage.partitions.min(n_morsels).max(1);
                running.remaining = Rc::new(Cell::new(n));
                for p in 0..n {
                    let mut worker = TraceTask::morsel_worker(
                        Rc::clone(&self.db),
                        Rc::clone(&queue),
                        p as u32,
                        ctx.self_id(),
                        Rc::clone(&running.remaining),
                    );
                    if self.fault_recovery {
                        worker = worker.with_fault_recovery(
                            Rc::clone(&self.metrics),
                            self.governor.io_retry_attempts,
                        );
                    }
                    ctx.spawn(Box::new(worker));
                }
                self.state = StreamState::Run(running);
                return Step::Demand(Demand::Block {
                    class: WaitClass::Parallelism,
                });
            }
            // Volcano stage: like the morsel path, each stage runs once,
            // so its worker traces are moved out instead of cloned.
            let mut workers = std::mem::take(&mut running.stages[running.stage].workers);
            workers.retain(|w| !w.items.is_empty());
            if workers.is_empty() {
                running.stage += 1;
                continue;
            }
            running.remaining = Rc::new(Cell::new(workers.len()));
            for w in workers {
                let mut worker = TraceTask::new(
                    Rc::clone(&self.db),
                    w.items,
                    ctx.self_id(),
                    Rc::clone(&running.remaining),
                );
                if self.fault_recovery {
                    worker = worker.with_fault_recovery(
                        Rc::clone(&self.metrics),
                        self.governor.io_retry_attempts,
                    );
                }
                ctx.spawn(Box::new(worker));
            }
            self.state = StreamState::Run(running);
            return Step::Demand(Demand::Block {
                class: WaitClass::Parallelism,
            });
        }
        // All stages done: release the grant, record, move on.
        let woken = self.grants.borrow_mut().release(running.grant);
        for t in woken {
            ctx.wake(t);
        }
        self.metrics.borrow_mut().record_query(
            &running.name,
            running.started,
            ctx.now().saturating_since(running.started),
        );
        self.state = StreamState::Next(running.query_idx + 1);
        Step::Demand(Demand::Yield)
    }
}

impl SimTask for QueryStreamTask {
    fn poll(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        match std::mem::replace(&mut self.state, StreamState::Finished) {
            StreamState::Next(i) => {
                if self.queries.is_empty() {
                    return Step::Done;
                }
                let i = if i >= self.queries.len() {
                    if !self.repeat {
                        return Step::Done;
                    }
                    0
                } else {
                    i
                };
                self.prepare(i, ctx)
            }
            StreamState::WaitGrant(running) => {
                // Woken: the grant is now held.
                self.start_stage(running, ctx)
            }
            StreamState::Run(running) => {
                if running.remaining.get() > 0 {
                    self.state = StreamState::Run(running);
                    return Step::Demand(Demand::Block {
                        class: WaitClass::Parallelism,
                    });
                }
                let mut r = running;
                r.stage += 1;
                self.start_stage(r, ctx)
            }
            StreamState::Finished => Step::Done,
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Watchdog that breaks lock convoys behind fault-stalled transactions.
///
/// Under fault injection a commit flush can fail repeatedly, leaving its
/// transaction holding row locks while it backs off — every waiter behind
/// it stalls too. This task periodically treats stalled holders that are
/// blocking waiters as deadlock victims: their locks are released (waking
/// the queue) and the victim aborts and retries when it next runs. Spawned
/// only when faults are enabled.
pub struct LockMonitorTask {
    db: Rc<RefCell<Database>>,
    interval: SimDuration,
}

impl fmt::Debug for LockMonitorTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockMonitorTask")
            .field("interval", &self.interval)
            .finish()
    }
}

impl LockMonitorTask {
    /// Creates the monitor; `interval` is the scan period (SQL Server's
    /// deadlock monitor runs at a comparable cadence).
    pub fn new(db: Rc<RefCell<Database>>, interval: SimDuration) -> Self {
        LockMonitorTask { db, interval }
    }
}

impl SimTask for LockMonitorTask {
    fn poll(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let victims = {
            let db = self.db.borrow();
            db.locks.stalled_victims(&db.stalled_txns())
        };
        for v in victims {
            let woken = {
                let mut db = self.db.borrow_mut();
                db.mark_victim(v);
                db.clear_stalled(v);
                db.locks.release_all(v)
            };
            for t in woken {
                ctx.wake(t);
            }
        }
        Step::Demand(Demand::Sleep {
            dur: self.interval,
            class: WaitClass::Think,
        })
    }

    fn label(&self) -> &str {
        "lock-monitor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsens_hwsim::kernel::{Kernel, SimConfig};
    use dbsens_hwsim::time::{SimDuration, SimTime};
    use dbsens_storage::schema::{ColType, Schema};
    use dbsens_storage::value::Value;

    #[test]
    fn checkpoint_writes_dirty_pages_and_paces_them() {
        let mut db = Database::new(100.0, 1 << 30);
        let schema = Schema::new(&[("id", ColType::Int)]);
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let _t = db.create_table("t", schema, rows);
        // Dirty 1000 distinct pages.
        for p in 0..1000 {
            db.mark_dirty(p);
        }
        let db = Rc::new(RefCell::new(db));
        let mut kernel = Kernel::new(SimConfig::paper_default(3));
        kernel.spawn(Box::new(CheckpointTask::new(Rc::clone(&db))));
        // One interval later the round should be written out.
        let interval = db.borrow().cost.checkpoint_interval_secs;
        kernel.run_until(SimTime::ZERO + SimDuration::from_secs(interval * 2));
        let written = kernel.counters().ssd_write_bytes;
        assert_eq!(written, 1000 * PAGE_BYTES, "all dirty pages written once");
        // Pacing: the writes were issued as multiple chunks, not one blob.
        assert!(
            kernel.counters().ssd_write_ios > 4,
            "ios={}",
            kernel.counters().ssd_write_ios
        );
        // Dirty set was consumed.
        assert_eq!(db.borrow_mut().take_dirty_pages(), 0);
    }

    #[test]
    fn checkpoint_idles_on_clean_database() {
        let db = Rc::new(RefCell::new(Database::new(100.0, 1 << 30)));
        let mut kernel = Kernel::new(SimConfig::paper_default(4));
        kernel.spawn(Box::new(CheckpointTask::new(Rc::clone(&db))));
        kernel.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        assert_eq!(kernel.counters().ssd_write_bytes, 0);
    }
}
