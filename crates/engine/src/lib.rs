//! # dbsens-engine
//!
//! A mini relational engine over [`dbsens_storage`], driving the
//! [`dbsens_hwsim`] hardware simulator: expressions, logical and physical
//! plans, a cost-based optimizer that adapts to MAXDOP and memory grants
//! (reproducing the plan changes in the paper's Figure 7), a two-layer
//! executor that computes real results while emitting paper-scale demand
//! traces, memory grants with spills (Figure 8), and an OLTP transaction
//! interpreter with 2PL locking and latch/wait accounting (Table 3).
//!
//! ## Example
//!
//! ```
//! use dbsens_engine::db::Database;
//! use dbsens_engine::optimizer::{optimize, PlanContext};
//! use dbsens_engine::plan::Logical;
//! use dbsens_storage::schema::{ColType, Schema};
//! use dbsens_storage::value::Value;
//!
//! let mut db = Database::new(100.0, 1 << 30);
//! let schema = Schema::new(&[("id", ColType::Int)]);
//! let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i)]).collect();
//! let t = db.create_table("t", schema, rows);
//! let ctx = PlanContext {
//!     maxdop: 4,
//!     grant_cap_bytes: 1 << 30,
//!     cost_threshold: 1e9,
//!     bufferpool_bytes: 1 << 30,
//!     db_bytes: 1 << 30,
//! };
//! let plan = optimize(&db, &Logical::scan(t, None, 10.0), &ctx);
//! println!("{plan}");
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cost;
pub mod db;
pub mod exec;
pub mod expr;
pub mod governor;
pub mod grant;
pub mod metrics;
pub mod optimizer;
pub mod physplan;
pub mod plan;
pub mod pushexec;
pub mod recovery;
pub mod tasks;
pub mod twopc;
pub mod txn;
pub mod vexpr;

pub use batch::{Batch, ColumnVector};
pub use db::{Database, TableId};
pub use exec::{execute, rows_digest, MorselStage, QueryExecution};
pub use expr::{CmpOp, Expr};
pub use governor::{ExecMode, Governor};
pub use grant::GrantManager;
pub use metrics::RunMetrics;
pub use optimizer::{optimize, PlanContext};
pub use physplan::{PhysNode, PhysPlan};
pub use plan::{JoinKind, Logical};
pub use pushexec::{execute_push, PhysicalOperator, PollPush};
pub use recovery::{recover, resolve_indoubt, CrashImage, InDoubt, RecoveryReport};
pub use tasks::{CheckpointTask, QueryStreamTask, TraceTask};
pub use twopc::{CoordAction, Coordinator, PartAction, Participant};
pub use txn::{LockSpec, MutOp, Mutation, TxOp, TxnClientTask, TxnGenerator, TxnProgram};
pub use vexpr::PhysicalExpr;
