//! Vectorized expression evaluation over columnar batches.
//!
//! [`PhysicalExpr`] is the compiled, batch-at-a-time counterpart of the
//! row-at-a-time [`Expr::eval`]: [`compile`] lowers an expression tree
//! into physical nodes whose [`PhysicalExpr::evaluate`] produces one
//! [`ColumnVector`] of results for the *live* rows of a [`Batch`].
//!
//! Semantics are kept bit-identical to the row engine by reusing its
//! scalar kernels (`numeric`, `truthy`, [`cmp_values`]) elementwise; a
//! typed fast path covers the common integer-comparison case. The row
//! engine short-circuits `AND`/`OR` while this module evaluates both
//! sides; expression evaluation is side-effect-free, so results agree.

use crate::batch::{Batch, ColumnVector};
use crate::expr::{numeric, numeric_of, truthy, CmpOp, Expr};
use dbsens_storage::value::{cmp_values, Value};
use std::cmp::Ordering;
use std::fmt;

/// A compiled expression evaluated column-at-a-time over a batch.
pub trait PhysicalExpr: fmt::Debug {
    /// Evaluates the expression for every live row of `batch`, returning
    /// a dense vector of `batch.num_rows()` results in live-row order.
    fn evaluate(&self, batch: &Batch) -> ColumnVector;
}

/// Compiles an expression tree into a physical evaluator.
pub fn compile(e: &Expr) -> Box<dyn PhysicalExpr> {
    match e {
        Expr::Col(i) => Box::new(ColumnRef { col: *i }),
        Expr::Lit(v) => Box::new(Literal { value: v.clone() }),
        Expr::Add(a, b) => bin(BinKind::Add, a, b),
        Expr::Sub(a, b) => bin(BinKind::Sub, a, b),
        Expr::Mul(a, b) => bin(BinKind::Mul, a, b),
        Expr::Div(a, b) => bin(BinKind::Div, a, b),
        Expr::IntDiv(a, b) => bin(BinKind::IntDiv, a, b),
        Expr::Cmp(op, a, b) => bin(BinKind::Cmp(*op), a, b),
        Expr::And(a, b) => bin(BinKind::And, a, b),
        Expr::Or(a, b) => bin(BinKind::Or, a, b),
        Expr::Not(a) => Box::new(UnaryExpr {
            kind: UnKind::Not,
            input: compile(a),
        }),
        Expr::IsNull(a) => Box::new(UnaryExpr {
            kind: UnKind::IsNull,
            input: compile(a),
        }),
        Expr::StartsWith(a, p) => Box::new(UnaryExpr {
            kind: UnKind::StartsWith(p.clone()),
            input: compile(a),
        }),
        Expr::Contains(a, p) => Box::new(UnaryExpr {
            kind: UnKind::Contains(p.clone()),
            input: compile(a),
        }),
        Expr::InList(a, list) => Box::new(UnaryExpr {
            kind: UnKind::InList(list.clone()),
            input: compile(a),
        }),
        Expr::Between(a, lo, hi) => Box::new(UnaryExpr {
            kind: UnKind::Between(lo.clone(), hi.clone()),
            input: compile(a),
        }),
    }
}

/// Evaluates a compiled predicate over a batch, returning the live-row
/// positions (not physical indices) where it holds.
pub fn filter_mask(pred: &dyn PhysicalExpr, batch: &Batch) -> Vec<u32> {
    match pred.evaluate(batch) {
        // Boolean results are Int(0/1); the typed path avoids boxing.
        ColumnVector::Int(v) => (0..v.len() as u32)
            .filter(|&i| v[i as usize] != 0)
            .collect(),
        other => (0..other.len() as u32)
            .filter(|&i| truthy(&other.get(i as usize)))
            .collect(),
    }
}

fn bin(kind: BinKind, a: &Expr, b: &Expr) -> Box<dyn PhysicalExpr> {
    Box::new(BinaryExpr {
        kind,
        left: compile(a),
        right: compile(b),
    })
}

/// Column reference: gathers the live rows of one input column.
#[derive(Debug)]
struct ColumnRef {
    col: usize,
}

impl PhysicalExpr for ColumnRef {
    fn evaluate(&self, batch: &Batch) -> ColumnVector {
        let col = &batch.cols[self.col];
        match &batch.sel {
            // No mask: the column is already the dense live view.
            None => col.clone(),
            Some(sel) => match col {
                ColumnVector::Int(v) => {
                    ColumnVector::Int(sel.iter().map(|&i| v[i as usize]).collect())
                }
                ColumnVector::Float(v) => {
                    ColumnVector::Float(sel.iter().map(|&i| v[i as usize]).collect())
                }
                ColumnVector::Str(v) => {
                    ColumnVector::Str(sel.iter().map(|&i| v[i as usize].clone()).collect())
                }
                ColumnVector::Mixed(v) => {
                    ColumnVector::Mixed(sel.iter().map(|&i| v[i as usize].clone()).collect())
                }
            },
        }
    }
}

/// Literal broadcast to the batch length.
#[derive(Debug)]
struct Literal {
    value: Value,
}

impl PhysicalExpr for Literal {
    fn evaluate(&self, batch: &Batch) -> ColumnVector {
        let n = batch.num_rows();
        match &self.value {
            Value::Int(i) => ColumnVector::Int(vec![*i; n]),
            Value::Float(f) => ColumnVector::Float(vec![*f; n]),
            Value::Str(s) => ColumnVector::Str(vec![s.clone(); n]),
            Value::Null => ColumnVector::Mixed(vec![Value::Null; n]),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    IntDiv,
    Cmp(CmpOp),
    And,
    Or,
}

#[derive(Debug)]
struct BinaryExpr {
    kind: BinKind,
    left: Box<dyn PhysicalExpr>,
    right: Box<dyn PhysicalExpr>,
}

impl PhysicalExpr for BinaryExpr {
    fn evaluate(&self, batch: &Batch) -> ColumnVector {
        let l = self.left.evaluate(batch);
        let r = self.right.evaluate(batch);
        // Typed fast paths on uniformly-integer operands; `cmp_values`
        // compares Int pairs as integers, so these are exact.
        match (&self.kind, &l, &r) {
            (BinKind::Cmp(op), ColumnVector::Int(a), ColumnVector::Int(b)) => {
                return ColumnVector::Int(
                    a.iter()
                        .zip(b)
                        .map(|(x, y)| op.test(x.cmp(y)) as i64)
                        .collect(),
                );
            }
            (BinKind::And, ColumnVector::Int(a), ColumnVector::Int(b)) => {
                return ColumnVector::Int(
                    a.iter()
                        .zip(b)
                        .map(|(x, y)| (*x != 0 && *y != 0) as i64)
                        .collect(),
                );
            }
            (BinKind::Or, ColumnVector::Int(a), ColumnVector::Int(b)) => {
                return ColumnVector::Int(
                    a.iter()
                        .zip(b)
                        .map(|(x, y)| (*x != 0 || *y != 0) as i64)
                        .collect(),
                );
            }
            _ => {}
        }
        let n = l.len();
        let vals = (0..n)
            .map(|i| {
                let (x, y) = (l.get(i), r.get(i));
                match self.kind {
                    BinKind::Add => numeric(x, y, |a, b| a + b),
                    BinKind::Sub => numeric(x, y, |a, b| a - b),
                    BinKind::Mul => numeric(x, y, |a, b| a * b),
                    BinKind::Div => match (numeric_of(&x), numeric_of(&y)) {
                        (Some(a), Some(b)) if b != 0.0 => Value::Float(a / b),
                        _ => Value::Null,
                    },
                    BinKind::IntDiv => match (numeric_of(&x), numeric_of(&y)) {
                        (Some(a), Some(b)) if b != 0.0 => Value::Int((a / b).floor() as i64),
                        _ => Value::Null,
                    },
                    BinKind::Cmp(op) => {
                        if x.is_null() || y.is_null() {
                            Value::Int(0)
                        } else {
                            Value::Int(op.test(cmp_values(&x, &y)) as i64)
                        }
                    }
                    BinKind::And => Value::Int((truthy(&x) && truthy(&y)) as i64),
                    BinKind::Or => Value::Int((truthy(&x) || truthy(&y)) as i64),
                }
            })
            .collect();
        ColumnVector::from_values(vals)
    }
}

#[derive(Debug)]
enum UnKind {
    Not,
    IsNull,
    StartsWith(String),
    Contains(String),
    InList(Vec<Value>),
    Between(Value, Value),
}

#[derive(Debug)]
struct UnaryExpr {
    kind: UnKind,
    input: Box<dyn PhysicalExpr>,
}

impl PhysicalExpr for UnaryExpr {
    fn evaluate(&self, batch: &Batch) -> ColumnVector {
        let v = self.input.evaluate(batch);
        // String predicates on a typed Str vector skip per-value boxing.
        if let (UnKind::StartsWith(p), ColumnVector::Str(s)) = (&self.kind, &v) {
            return ColumnVector::Int(s.iter().map(|x| x.starts_with(p.as_str()) as i64).collect());
        }
        if let (UnKind::Contains(p), ColumnVector::Str(s)) = (&self.kind, &v) {
            return ColumnVector::Int(s.iter().map(|x| x.contains(p.as_str()) as i64).collect());
        }
        let out = (0..v.len())
            .map(|i| {
                let x = v.get(i);
                match &self.kind {
                    UnKind::Not => (!truthy(&x)) as i64,
                    UnKind::IsNull => x.is_null() as i64,
                    UnKind::StartsWith(p) => match x {
                        Value::Str(s) => s.starts_with(p.as_str()) as i64,
                        _ => 0,
                    },
                    UnKind::Contains(p) => match x {
                        Value::Str(s) => s.contains(p.as_str()) as i64,
                        _ => 0,
                    },
                    UnKind::InList(list) => {
                        list.iter().any(|l| cmp_values(l, &x) == Ordering::Equal) as i64
                    }
                    UnKind::Between(lo, hi) => {
                        if x.is_null() {
                            0
                        } else {
                            (cmp_values(&x, lo) != Ordering::Less
                                && cmp_values(&x, hi) != Ordering::Greater)
                                as i64
                        }
                    }
                }
            })
            .collect();
        ColumnVector::Int(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsens_storage::value::Row;

    /// Every compiled expression must agree with the row engine on every
    /// row — the invariant that makes push/volcano results interchangeable.
    fn assert_parity(e: &Expr, rows: &[Row]) {
        let batch = Batch::from_rows(rows.to_vec());
        let compiled = compile(e);
        let got = compiled.evaluate(&batch);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(got.get(i), e.eval(row), "row {i} of {e}");
        }
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(4), Value::Float(2.5), Value::Str("alpha".into())],
            vec![Value::Int(-3), Value::Float(0.0), Value::Str("beta".into())],
            vec![Value::Int(0), Value::Null, Value::Str("".into())],
            vec![Value::Int(7), Value::Float(-1.5), Value::Str("alps".into())],
        ]
    }

    #[test]
    fn arithmetic_and_comparison_parity() {
        let rows = sample_rows();
        assert_parity(&Expr::Col(0).add(Expr::lit(2i64)), &rows);
        assert_parity(&Expr::Col(0).mul(Expr::Col(1)), &rows);
        assert_parity(&Expr::Col(1).div(Expr::Col(0)), &rows);
        assert_parity(
            &Expr::IntDiv(Box::new(Expr::Col(0)), Box::new(Expr::lit(2i64))),
            &rows,
        );
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_parity(&Expr::cmp(op, Expr::Col(0), Expr::lit(1i64)), &rows);
            assert_parity(&Expr::cmp(op, Expr::Col(1), Expr::lit(0.5f64)), &rows);
        }
    }

    #[test]
    fn boolean_and_string_parity() {
        let rows = sample_rows();
        let gt = Expr::cmp(CmpOp::Gt, Expr::Col(0), Expr::lit(0i64));
        let lt = Expr::cmp(CmpOp::Lt, Expr::Col(1), Expr::lit(2.0f64));
        assert_parity(&gt.clone().and(lt.clone()), &rows);
        assert_parity(&gt.clone().or(lt), &rows);
        assert_parity(&Expr::Not(Box::new(gt)), &rows);
        assert_parity(&Expr::IsNull(Box::new(Expr::Col(1))), &rows);
        assert_parity(
            &Expr::StartsWith(Box::new(Expr::Col(2)), "alp".into()),
            &rows,
        );
        assert_parity(&Expr::Contains(Box::new(Expr::Col(2)), "et".into()), &rows);
        assert_parity(
            &Expr::InList(Box::new(Expr::Col(0)), vec![Value::Int(4), Value::Int(0)]),
            &rows,
        );
        assert_parity(
            &Expr::Between(Box::new(Expr::Col(0)), Value::Int(0), Value::Int(5)),
            &rows,
        );
    }

    #[test]
    fn masked_batches_evaluate_live_rows_only() {
        let rows = sample_rows();
        let mut batch = Batch::from_rows(rows.clone());
        batch.select(vec![1, 3]);
        let e = Expr::Col(0).add(Expr::lit(1i64));
        let got = compile(&e).evaluate(&batch);
        assert_eq!(got.len(), 2);
        assert_eq!(got.get(0), e.eval(&rows[1]));
        assert_eq!(got.get(1), e.eval(&rows[3]));
    }

    #[test]
    fn filter_mask_matches_row_predicate() {
        let rows = sample_rows();
        let batch = Batch::from_rows(rows.clone());
        let pred = Expr::cmp(CmpOp::Gt, Expr::Col(0), Expr::lit(0i64));
        let mask = filter_mask(compile(&pred).as_ref(), &batch);
        let expect: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| pred.matches(r))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(mask, expect);
    }
}
