//! Cost-based optimizer.
//!
//! Lowers logical plans to physical plans, making the decisions the paper
//! shows the DBMS making in response to resource knobs:
//!
//! * **serial vs. parallel plan** — estimated serial cost below the
//!   cost-threshold-for-parallelism yields a serial plan regardless of
//!   MAXDOP (why TPC-H Q2/6/14/15/20 are DOP-insensitive at small scale
//!   factors, §7);
//! * **join algorithm** — hash join vs. index nested-loops, where the
//!   relative cost depends on DOP because random inner-side I/O overlaps
//!   across parallel workers (why Q20's plan flips between Figure 7a and
//!   7b);
//! * **memory grant** — per-operator workspace estimates, inflated by DOP
//!   (why Q20 uses ~45% less memory at MAXDOP=1, §8), capped by the
//!   resource governor's per-query grant.

use crate::db::Database;
use crate::expr::{CmpOp, Expr};
use crate::physplan::{PhysNode, PhysPlan};
use crate::plan::{JoinKind, Logical, LogicalNode};
use dbsens_storage::value::Value;

/// Optimizer inputs: the resource-governor knobs that shape plan choice.
#[derive(Debug, Clone)]
pub struct PlanContext {
    /// Maximum degree of parallelism (1 disables parallel plans).
    pub maxdop: usize,
    /// Per-query memory grant cap in bytes (paper scale).
    pub grant_cap_bytes: u64,
    /// Estimated serial cost (instructions) above which a parallel plan is
    /// produced.
    pub cost_threshold: f64,
    /// Buffer pool bytes, used to estimate whether inner-index pages of a
    /// nested-loops join are memory-resident.
    pub bufferpool_bytes: u64,
    /// Total modeled database bytes competing for the buffer pool; the
    /// resident fraction of any structure is approximated as
    /// `bufferpool / db_bytes`.
    pub db_bytes: u64,
}

impl PlanContext {
    /// Instruction-equivalent penalty for one random page miss during a
    /// nested-loops inner seek (device latency expressed in CPU work).
    const IO_EQUIV_INSTR: f64 = 130_000.0;

    /// Fraction of an arbitrary structure resident in the buffer pool.
    pub fn resident_fraction(&self) -> f64 {
        if self.db_bytes == 0 {
            1.0
        } else {
            (self.bufferpool_bytes as f64 / self.db_bytes as f64).min(1.0)
        }
    }

    /// DOP-dependent memory inflation: parallel operators keep per-worker
    /// buffers.
    pub fn dop_memory_factor(dop: usize) -> f64 {
        1.0 + 0.025 * dop as f64
    }
}

/// Optimizes a logical plan under the given context.
///
/// # Examples
///
/// ```
/// use dbsens_engine::db::Database;
/// use dbsens_engine::optimizer::{optimize, PlanContext};
/// use dbsens_engine::plan::Logical;
/// use dbsens_storage::schema::{ColType, Schema};
/// use dbsens_storage::value::Value;
///
/// let mut db = Database::new(1000.0, 1 << 30);
/// let schema = Schema::new(&[("id", ColType::Int)]);
/// let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int(i)]).collect();
/// let t = db.create_table("t", schema, rows);
/// let ctx = PlanContext {
///     maxdop: 8,
///     grant_cap_bytes: 1 << 30,
///     cost_threshold: 1e9,
///     bufferpool_bytes: 1 << 30,
///     db_bytes: 1 << 30,
/// };
/// let plan = optimize(&db, &Logical::scan(t, None, 100.0), &ctx);
/// assert_eq!(plan.dop, 1); // tiny query: serial plan
/// ```
pub fn optimize(db: &Database, q: &Logical, ctx: &PlanContext) -> PhysPlan {
    // Pass 1: lower under serial assumptions and estimate cost.
    let serial_root = lower(db, q, ctx, 1);
    let serial_cost = est_cost(db, &serial_root, ctx, 1);
    let dop = if serial_cost > ctx.cost_threshold {
        ctx.maxdop.max(1)
    } else {
        1
    };
    // Pass 2: re-lower with the chosen DOP (join algorithm choices may
    // change).
    let root = if dop == 1 {
        serial_root
    } else {
        lower(db, q, ctx, dop)
    };
    let desired = (root.workspace_bytes() as f64 * PlanContext::dop_memory_factor(dop)) as u64;
    let memory_grant = desired.min(ctx.grant_cap_bytes);
    PhysPlan {
        root,
        dop,
        memory_grant,
        desired_memory: desired,
        est_cost: serial_cost,
    }
}

/// Columns SQL Server would actually carry into a hash/sort workspace
/// after projection pushdown; intermediate rows keep only needed columns.
pub(crate) fn workspace_width(arity: usize) -> u64 {
    (arity.min(8) as u64) * 8
}

/// Output arity (column count) of a logical node.
pub fn arity(db: &Database, q: &Logical) -> usize {
    match &q.node {
        LogicalNode::Scan { table, project, .. } => match project {
            Some(p) => p.len(),
            None => db.table(*table).heap.schema().len(),
        },
        LogicalNode::IndexRange { table, .. } => db.table(*table).heap.schema().len(),
        LogicalNode::Join {
            left, right, kind, ..
        } => match kind {
            JoinKind::Semi | JoinKind::Anti => arity(db, left),
            _ => arity(db, left) + arity(db, right),
        },
        LogicalNode::Agg { group_by, aggs, .. } => group_by.len() + aggs.len(),
        LogicalNode::Sort { input, .. }
        | LogicalNode::Top { input, .. }
        | LogicalNode::Filter { input, .. } => arity(db, input),
        LogicalNode::Project { exprs, .. } => exprs.len(),
    }
}

fn lower(db: &Database, q: &Logical, ctx: &PlanContext, dop: usize) -> PhysNode {
    let cost = &db.cost;
    match &q.node {
        LogicalNode::Scan {
            table,
            filter,
            project,
        } => {
            if db.table(*table).columnstore.is_some() {
                let elim = filter.as_ref().and_then(extract_range);
                PhysNode::ColumnstoreScan {
                    table: *table,
                    filter: filter.clone(),
                    elim,
                    project: project.clone(),
                    est_rows: q.est_rows,
                }
            } else {
                PhysNode::SeqScan {
                    table: *table,
                    filter: filter.clone(),
                    project: project.clone(),
                    est_rows: q.est_rows,
                }
            }
        }
        LogicalNode::IndexRange {
            table,
            index,
            lo,
            hi,
            filter,
        } => PhysNode::IndexRange {
            table: *table,
            index: index.clone(),
            lo: lo.clone(),
            hi: hi.clone(),
            filter: filter.clone(),
            est_rows: q.est_rows,
        },
        LogicalNode::Filter { input, pred } => PhysNode::Filter {
            input: Box::new(lower(db, input, ctx, dop)),
            pred: pred.clone(),
        },
        LogicalNode::Project { input, exprs } => PhysNode::Project {
            input: Box::new(lower(db, input, ctx, dop)),
            exprs: exprs.clone(),
        },
        LogicalNode::Top { input, n } => PhysNode::Top {
            input: Box::new(lower(db, input, ctx, dop)),
            n: *n,
        },
        LogicalNode::Sort { input, keys } => {
            let in_rows_modeled = input.est_rows * db.row_scale;
            let width = workspace_width(arity(db, input));
            let sort_bytes = (in_rows_modeled * (cost.sort_bytes_per_row + width) as f64) as u64;
            PhysNode::Sort {
                input: Box::new(lower(db, input, ctx, dop)),
                keys: keys.clone(),
                sort_bytes,
            }
        }
        LogicalNode::Agg {
            input,
            group_by,
            aggs,
        } => {
            if group_by.is_empty() {
                PhysNode::StreamAgg {
                    input: Box::new(lower(db, input, ctx, dop)),
                    aggs: aggs.clone(),
                }
            } else {
                let groups_modeled = q.est_rows * db.row_scale;
                let width = workspace_width(group_by.len() + aggs.len());
                let ht_bytes = (groups_modeled * (cost.hash_bytes_per_row + width) as f64) as u64;
                PhysNode::HashAgg {
                    input: Box::new(lower(db, input, ctx, dop)),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                    est_groups: q.est_rows,
                    ht_bytes,
                }
            }
        }
        LogicalNode::Join {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => lower_join(db, q, left, right, left_keys, right_keys, *kind, ctx, dop),
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_join(
    db: &Database,
    q: &Logical,
    left: &Logical,
    right: &Logical,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
    ctx: &PlanContext,
    dop: usize,
) -> PhysNode {
    let cost = &db.cost;
    let left_modeled = left.est_rows * db.row_scale;
    let right_modeled = right.est_rows * db.row_scale;

    // Index nested-loops candidate: the right (inner) side is a plain scan
    // of a table with a B-tree index exactly on the join keys.
    let nl_candidate = match &right.node {
        LogicalNode::Scan {
            table,
            filter,
            project: None,
        } => {
            let t = db.table(*table);
            t.indexes
                .iter()
                .find(|idx| idx.key_cols == right_keys)
                .map(|idx| {
                    (
                        *table,
                        idx.name.clone(),
                        filter.clone(),
                        idx.layout.levels(),
                    )
                })
        }
        _ => None,
    };

    // Hash join cost (paper-scale instructions).
    let build_width = workspace_width(arity(db, right));
    let build_bytes = (right_modeled * (cost.hash_bytes_per_row + build_width) as f64) as u64;
    let mut cost_hash =
        right_modeled * cost.hash_build_row as f64 + left_modeled * cost.hash_probe_row as f64;
    if dop > 1 {
        // Parallel hash joins repartition both inputs across workers.
        cost_hash += (left_modeled + right_modeled) * cost.exchange_row as f64;
    }
    if build_bytes > ctx.grant_cap_bytes {
        // Build side won't fit in the grant: spill both sides once.
        cost_hash += (build_bytes as f64) * 0.12;
    }

    if let Some((inner_table, inner_index, inner_filter, levels)) = nl_candidate {
        // Residency heuristic: the pool is shared by the whole database,
        // so random inner seeks miss with probability ~ the non-resident
        // fraction of the database.
        let miss_prob = (1.0 - ctx.resident_fraction()).max(0.01);
        // Random I/O overlaps across parallel workers, so its effective
        // cost shrinks with DOP; a serial plan eats the full latency.
        let overlap = dop.min(16) as f64;
        let cost_nl = left_modeled * (levels as f64 * cost.btree_level as f64)
            + left_modeled * miss_prob * PlanContext::IO_EQUIV_INSTR / overlap;
        if cost_nl < cost_hash {
            let outer_arity = arity(db, left);
            let filter = inner_filter.map(|f| f.shift_cols(outer_arity));
            return PhysNode::NlJoin {
                outer: Box::new(lower(db, left, ctx, dop)),
                inner_table,
                inner_index,
                outer_keys: left_keys.to_vec(),
                kind,
                filter,
                est_rows: q.est_rows,
            };
        }
    }

    // Hash join; for inner joins put the smaller input on the build side.
    let swapped = kind == JoinKind::Inner && left.est_rows < right.est_rows;
    let (probe, build, probe_keys, build_keys) = if swapped {
        (right, left, right_keys, left_keys)
    } else {
        (left, right, left_keys, right_keys)
    };
    let build_width = workspace_width(arity(db, build));
    let build_bytes =
        ((build.est_rows * db.row_scale) * (cost.hash_bytes_per_row + build_width) as f64) as u64;
    PhysNode::HashJoin {
        probe: Box::new(lower(db, probe, ctx, dop)),
        build: Box::new(lower(db, build, ctx, dop)),
        probe_keys: probe_keys.to_vec(),
        build_keys: build_keys.to_vec(),
        kind,
        swapped,
        est_rows: q.est_rows,
        build_bytes,
    }
}

/// Estimated execution cost in paper-scale instructions (serial).
pub fn est_cost(db: &Database, n: &PhysNode, ctx: &PlanContext, dop: usize) -> f64 {
    let cost = &db.cost;
    let scale = db.row_scale;
    let own = match n {
        PhysNode::SeqScan {
            table,
            filter,
            est_rows,
            ..
        } => {
            let rows = db.table(*table).layout.modeled_rows() as f64;
            let expr_nodes = filter.as_ref().map_or(0, Expr::node_count);
            rows * (cost.scan_row + expr_nodes * cost.expr_node) as f64 + est_rows * 0.0
        }
        PhysNode::ColumnstoreScan {
            table,
            filter,
            project,
            ..
        } => {
            let t = db.table(*table);
            let rows = t.layout.modeled_rows() as f64;
            let cols = project.as_ref().map_or(t.heap.schema().len(), Vec::len) as u64;
            let expr_nodes = filter.as_ref().map_or(0, Expr::node_count);
            rows * (cols * cost.columnstore_row_per_col + expr_nodes * cost.expr_node) as f64
        }
        PhysNode::IndexRange {
            table,
            index,
            est_rows,
            ..
        } => {
            let levels = db.table(*table).index(index).layout.levels() as f64;
            levels * cost.btree_level as f64 + est_rows * scale * cost.scan_row as f64
        }
        PhysNode::HashJoin {
            probe,
            build,
            build_bytes,
            ..
        } => {
            let mut c = build.est_rows() * scale * cost.hash_build_row as f64
                + probe.est_rows() * scale * cost.hash_probe_row as f64;
            if *build_bytes > ctx.grant_cap_bytes {
                c += *build_bytes as f64 * 0.12;
            }
            if dop > 1 {
                c += (probe.est_rows() + build.est_rows()) * scale * cost.exchange_row as f64;
            }
            c
        }
        PhysNode::NlJoin {
            outer,
            inner_table,
            inner_index,
            ..
        } => {
            let levels = db.table(*inner_table).index(inner_index).layout.levels() as f64;
            outer.est_rows() * scale * levels * cost.btree_level as f64
        }
        PhysNode::HashAgg { input, aggs, .. } => {
            let agg_nodes: u64 = aggs.iter().map(|a| a.expr.node_count()).sum();
            input.est_rows() * scale * (cost.agg_row + agg_nodes * cost.expr_node) as f64
        }
        PhysNode::StreamAgg { input, aggs } => {
            let agg_nodes: u64 = aggs.iter().map(|a| a.expr.node_count()).sum();
            input.est_rows()
                * scale
                * (cost.agg_row as f64 * 0.4 + (agg_nodes * cost.expr_node) as f64)
        }
        PhysNode::Sort { input, .. } => {
            let rows = (input.est_rows() * scale).max(2.0);
            rows * rows.log2() * cost.sort_row_log as f64
        }
        PhysNode::Top { .. } => 0.0,
        PhysNode::Project { input, exprs } => {
            let nodes: u64 = exprs.iter().map(Expr::node_count).sum();
            input.est_rows() * scale * (nodes * cost.expr_node) as f64
        }
        PhysNode::Filter { input, pred } => {
            input.est_rows() * scale * (pred.node_count() * cost.expr_node) as f64
        }
    };
    own + n
        .children()
        .iter()
        .map(|c| est_cost(db, c, ctx, dop))
        .sum::<f64>()
}

/// Extracts a `(column, lo, hi)` range from simple predicates for segment
/// elimination.
pub fn extract_range(e: &Expr) -> Option<(usize, Option<Value>, Option<Value>)> {
    match e {
        Expr::Between(col, lo, hi) => match **col {
            Expr::Col(c) => Some((c, Some(lo.clone()), Some(hi.clone()))),
            _ => None,
        },
        Expr::Cmp(op, a, b) => match (&**a, &**b) {
            (Expr::Col(c), Expr::Lit(v)) => match op {
                CmpOp::Ge | CmpOp::Gt => Some((*c, Some(v.clone()), None)),
                CmpOp::Le | CmpOp::Lt => Some((*c, None, Some(v.clone()))),
                CmpOp::Eq => Some((*c, Some(v.clone()), Some(v.clone()))),
                CmpOp::Ne => None,
            },
            _ => None,
        },
        Expr::And(a, b) => {
            // Merge bounds when both sides constrain the same column;
            // otherwise keep the first usable side.
            match (extract_range(a), extract_range(b)) {
                (Some((ca, lo_a, hi_a)), Some((cb, lo_b, hi_b))) if ca == cb => {
                    Some((ca, lo_a.or(lo_b), hi_a.or(hi_b)))
                }
                (Some(r), _) | (_, Some(r)) => Some(r),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TableId;
    use dbsens_storage::schema::{ColType, Schema};

    fn db_with_tables(row_scale: f64) -> (Database, TableId, TableId) {
        let mut db = Database::new(row_scale, 1 << 30);
        let schema = Schema::new(&[
            ("id", ColType::Int),
            ("fk", ColType::Int),
            ("v", ColType::Float),
        ]);
        let rows: Vec<Vec<Value>> = (0..2000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 100), Value::Float(i as f64)])
            .collect();
        let big = db.create_table("big", schema.clone(), rows);
        let dim_rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i % 5), Value::Float(0.0)])
            .collect();
        let dim = db.create_table("dim", schema, dim_rows);
        db.create_index(dim, "pk", &[0]);
        (db, big, dim)
    }

    fn ctx() -> PlanContext {
        PlanContext {
            maxdop: 16,
            grant_cap_bytes: 1 << 30,
            cost_threshold: 1e9,
            bufferpool_bytes: 4 << 30,
            db_bytes: 1 << 30,
        }
    }

    #[test]
    fn cheap_queries_get_serial_plans() {
        let (db, big, _) = db_with_tables(10.0);
        let plan = optimize(&db, &Logical::scan(big, None, 2000.0), &ctx());
        assert_eq!(plan.dop, 1);
    }

    #[test]
    fn expensive_queries_go_parallel() {
        let (db, big, _) = db_with_tables(1_000_000.0);
        let plan = optimize(&db, &Logical::scan(big, None, 2000.0), &ctx());
        assert_eq!(plan.dop, 16);
    }

    #[test]
    fn maxdop_one_forces_serial() {
        let (db, big, _) = db_with_tables(1_000_000.0);
        let mut c = ctx();
        c.maxdop = 1;
        let plan = optimize(&db, &Logical::scan(big, None, 2000.0), &c);
        assert_eq!(plan.dop, 1);
    }

    #[test]
    fn join_with_indexed_inner_can_choose_nested_loops() {
        let (db, big, dim) = db_with_tables(1_000_000.0);
        // Small outer (filtered big) joining into indexed dim: NL wins at
        // high DOP.
        let q = Logical::scan(big, None, 2000.0)
            .filter(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(10i64)), 0.005)
            .join(
                Logical::scan(dim, None, 100.0),
                vec![1],
                vec![0],
                JoinKind::Inner,
                10.0,
            );
        let plan = optimize(&db, &q, &ctx());
        assert!(
            plan.count_ops("Nested Loops (index)") == 1 || plan.count_ops("Hash Join") == 1,
            "join lowered"
        );
    }

    #[test]
    fn grant_is_capped_by_governor() {
        let (db, big, dim) = db_with_tables(1_000_000.0);
        let q = Logical::scan(big, None, 2000.0).join(
            Logical::scan(dim, None, 100.0),
            vec![1],
            vec![1], // no index on fk: forces hash join
            JoinKind::Inner,
            2000.0,
        );
        let mut c = ctx();
        c.grant_cap_bytes = 1 << 20;
        let plan = optimize(&db, &q, &c);
        assert!(plan.memory_grant <= 1 << 20);
        assert!(plan.desired_memory > plan.memory_grant);
    }

    #[test]
    fn parallel_plans_want_more_memory() {
        let (db, big, dim) = db_with_tables(1_000_000.0);
        let q = Logical::scan(big, None, 2000.0).join(
            Logical::scan(dim, None, 100.0),
            vec![1],
            vec![1],
            JoinKind::Inner,
            2000.0,
        );
        let parallel = optimize(&db, &q, &ctx());
        let mut c = ctx();
        c.maxdop = 1;
        let serial = optimize(&db, &q, &c);
        assert!(parallel.dop > 1 && serial.dop == 1);
        assert!(parallel.desired_memory > serial.desired_memory);
    }

    #[test]
    fn extract_range_handles_common_shapes() {
        use Expr::*;
        let between = Between(Box::new(Col(3)), Value::Int(1), Value::Int(9));
        assert_eq!(
            extract_range(&between),
            Some((3, Some(Value::Int(1)), Some(Value::Int(9))))
        );
        let ge = Expr::cmp(CmpOp::Ge, Col(2), Expr::lit(5i64));
        assert_eq!(extract_range(&ge), Some((2, Some(Value::Int(5)), None)));
        let and = Expr::cmp(CmpOp::Ge, Col(2), Expr::lit(5i64)).and(Expr::cmp(
            CmpOp::Lt,
            Col(2),
            Expr::lit(9i64),
        ));
        assert_eq!(
            extract_range(&and),
            Some((2, Some(Value::Int(5)), Some(Value::Int(9))))
        );
        assert_eq!(extract_range(&Expr::lit(1i64)), None);
    }

    #[test]
    fn columnstore_scan_used_when_index_present() {
        let (mut db, big, _) = db_with_tables(1000.0);
        db.create_columnstore(big, 256);
        let plan = optimize(&db, &Logical::scan(big, None, 2000.0), &ctx());
        assert_eq!(plan.count_ops("Columnstore Scan"), 1);
        assert_eq!(plan.count_ops("Table Scan"), 0);
    }
}
