//! Scalar expressions over rows.

use dbsens_storage::value::{cmp_values, Row, Value};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    pub(crate) fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A scalar expression evaluated against a row.
///
/// # Examples
///
/// ```
/// use dbsens_engine::expr::{CmpOp, Expr};
/// use dbsens_storage::value::Value;
///
/// // col0 * 2 > 10
/// let e = Expr::cmp(
///     CmpOp::Gt,
///     Expr::Col(0).mul(Expr::lit(2i64)),
///     Expr::lit(10i64),
/// );
/// assert_eq!(e.eval(&vec![Value::Int(6)]), Value::Int(1));
/// assert_eq!(e.eval(&vec![Value::Int(4)]), Value::Int(0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by position.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Arithmetic.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division (float semantics; division by zero yields NULL).
    Div(Box<Expr>, Box<Expr>),
    /// Comparison producing `Int(1)`/`Int(0)`; NULL operands yield `Int(0)`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND over boolean ints.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR over boolean ints.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// String prefix match (`LIKE 'foo%'`).
    StartsWith(Box<Expr>, String),
    /// String containment (`LIKE '%foo%'`).
    Contains(Box<Expr>, String),
    /// Membership in a literal list.
    InList(Box<Expr>, Vec<Value>),
    /// `lo <= e AND e <= hi` convenience.
    Between(Box<Expr>, Value, Value),
    /// SQL `IS NULL`, producing `Int(1)`/`Int(0)`.
    IsNull(Box<Expr>),
    /// Integer division (floor), used e.g. to extract years from day
    /// numbers.
    IntDiv(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Comparison shorthand.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// `self + rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Evaluates against a row.
    pub fn eval(&self, row: &Row) -> Value {
        match self {
            Expr::Col(i) => row[*i].clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Add(a, b) => numeric(a.eval(row), b.eval(row), |x, y| x + y),
            Expr::Sub(a, b) => numeric(a.eval(row), b.eval(row), |x, y| x - y),
            Expr::Mul(a, b) => numeric(a.eval(row), b.eval(row), |x, y| x * y),
            Expr::Div(a, b) => {
                let (x, y) = (a.eval(row), b.eval(row));
                match (numeric_of(&x), numeric_of(&y)) {
                    (Some(x), Some(y)) if y != 0.0 => Value::Float(x / y),
                    _ => Value::Null,
                }
            }
            Expr::Cmp(op, a, b) => {
                let (x, y) = (a.eval(row), b.eval(row));
                if x.is_null() || y.is_null() {
                    return Value::Int(0);
                }
                Value::Int(op.test(cmp_values(&x, &y)) as i64)
            }
            Expr::And(a, b) => Value::Int((truthy(&a.eval(row)) && truthy(&b.eval(row))) as i64),
            Expr::Or(a, b) => Value::Int((truthy(&a.eval(row)) || truthy(&b.eval(row))) as i64),
            Expr::Not(a) => Value::Int(!truthy(&a.eval(row)) as i64),
            Expr::StartsWith(a, p) => match a.eval(row) {
                Value::Str(s) => Value::Int(s.starts_with(p.as_str()) as i64),
                _ => Value::Int(0),
            },
            Expr::Contains(a, p) => match a.eval(row) {
                Value::Str(s) => Value::Int(s.contains(p.as_str()) as i64),
                _ => Value::Int(0),
            },
            Expr::InList(a, list) => {
                let v = a.eval(row);
                Value::Int(list.iter().any(|l| cmp_values(l, &v) == Ordering::Equal) as i64)
            }
            Expr::Between(a, lo, hi) => {
                let v = a.eval(row);
                if v.is_null() {
                    return Value::Int(0);
                }
                Value::Int(
                    (cmp_values(&v, lo) != Ordering::Less
                        && cmp_values(&v, hi) != Ordering::Greater) as i64,
                )
            }
            Expr::IsNull(a) => Value::Int(a.eval(row).is_null() as i64),
            Expr::IntDiv(a, b) => {
                let (x, y) = (a.eval(row), b.eval(row));
                match (numeric_of(&x), numeric_of(&y)) {
                    (Some(x), Some(y)) if y != 0.0 => Value::Int((x / y).floor() as i64),
                    _ => Value::Null,
                }
            }
        }
    }

    /// Evaluates as a boolean predicate.
    pub fn matches(&self, row: &Row) -> bool {
        truthy(&self.eval(row))
    }

    /// Rewrites column references by adding `offset` (used when an
    /// expression over one input is re-anchored onto a concatenated
    /// `outer ++ inner` row).
    pub fn shift_cols(&self, offset: usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(i + offset),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.shift_cols(offset)),
                Box::new(b.shift_cols(offset)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(a.shift_cols(offset)),
                Box::new(b.shift_cols(offset)),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(a.shift_cols(offset)),
                Box::new(b.shift_cols(offset)),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(a.shift_cols(offset)),
                Box::new(b.shift_cols(offset)),
            ),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.shift_cols(offset)),
                Box::new(b.shift_cols(offset)),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.shift_cols(offset)),
                Box::new(b.shift_cols(offset)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.shift_cols(offset)),
                Box::new(b.shift_cols(offset)),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.shift_cols(offset))),
            Expr::StartsWith(a, p) => Expr::StartsWith(Box::new(a.shift_cols(offset)), p.clone()),
            Expr::Contains(a, p) => Expr::Contains(Box::new(a.shift_cols(offset)), p.clone()),
            Expr::InList(a, l) => Expr::InList(Box::new(a.shift_cols(offset)), l.clone()),
            Expr::Between(a, lo, hi) => {
                Expr::Between(Box::new(a.shift_cols(offset)), lo.clone(), hi.clone())
            }
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.shift_cols(offset))),
            Expr::IntDiv(a, b) => Expr::IntDiv(
                Box::new(a.shift_cols(offset)),
                Box::new(b.shift_cols(offset)),
            ),
        }
    }

    /// Number of nodes, a proxy for per-row evaluation cost.
    pub fn node_count(&self) -> u64 {
        match self {
            Expr::Col(_) | Expr::Lit(_) => 1,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => 1 + a.node_count() + b.node_count(),
            Expr::Not(a)
            | Expr::StartsWith(a, _)
            | Expr::Contains(a, _)
            | Expr::Between(a, _, _)
            | Expr::IsNull(a) => 1 + a.node_count(),
            Expr::IntDiv(a, b) => 1 + a.node_count() + b.node_count(),
            Expr::InList(a, list) => 1 + a.node_count() + list.len() as u64,
        }
    }
}

/// SQL boolean coercion used by filter predicates on both executor paths.
pub(crate) fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Null => false,
        Value::Str(s) => !s.is_empty(),
    }
}

/// Numeric view of a value; strings and NULLs have none (SQL arithmetic
/// over them yields NULL here rather than an error).
pub(crate) fn numeric_of(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Str(_) | Value::Null => None,
    }
}

/// Shared binary numeric-arithmetic kernel (both executor paths must agree
/// on Int-stays-integral-when-exact semantics).
pub(crate) fn numeric(a: Value, b: Value, f: impl Fn(f64, f64) -> f64) -> Value {
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => {
            let r = f(*x as f64, *y as f64);
            // Integer arithmetic stays integral when exact.
            if r.fract() == 0.0 && r.abs() < 9e15 {
                Value::Int(r as i64)
            } else {
                Value::Float(r)
            }
        }
        _ => match (numeric_of(&a), numeric_of(&b)) {
            (Some(x), Some(y)) => Value::Float(f(x, y)),
            _ => Value::Null,
        },
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "c{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Cmp(op, a, b) => {
                let s = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {s} {b})")
            }
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "NOT {a}"),
            Expr::StartsWith(a, p) => write!(f, "({a} LIKE '{p}%')"),
            Expr::Contains(a, p) => write!(f, "({a} LIKE '%{p}%')"),
            Expr::InList(a, l) => write!(f, "({a} IN [{} values])", l.len()),
            Expr::Between(a, lo, hi) => write!(f, "({a} BETWEEN {lo} AND {hi})"),
            Expr::IsNull(a) => write!(f, "({a} IS NULL)"),
            Expr::IntDiv(a, b) => write!(f, "({a} DIV {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![
            Value::Int(5),
            Value::Float(2.5),
            Value::Str("BRAZIL".into()),
            Value::Null,
        ]
    }

    #[test]
    fn arithmetic() {
        let r = row();
        assert_eq!(Expr::Col(0).add(Expr::lit(3i64)).eval(&r), Value::Int(8));
        assert_eq!(
            Expr::Col(1).mul(Expr::lit(2i64)).eval(&r),
            Value::Float(5.0)
        );
        assert_eq!(
            Expr::Col(0).div(Expr::lit(2i64)).eval(&r),
            Value::Float(2.5)
        );
        assert_eq!(Expr::Col(0).div(Expr::lit(0i64)).eval(&r), Value::Null);
        assert_eq!(Expr::Col(3).add(Expr::lit(1i64)).eval(&r), Value::Null);
        // Arithmetic over strings yields NULL, never a panic.
        assert_eq!(Expr::Col(2).add(Expr::lit(1i64)).eval(&r), Value::Null);
        assert_eq!(Expr::Col(2).div(Expr::Col(2)).eval(&r), Value::Null);
    }

    #[test]
    fn comparisons_and_null_semantics() {
        let r = row();
        assert!(Expr::cmp(CmpOp::Ge, Expr::Col(0), Expr::lit(5i64)).matches(&r));
        assert!(!Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(5i64)).matches(&r));
        // NULL comparisons are false.
        assert!(!Expr::cmp(CmpOp::Eq, Expr::Col(3), Expr::Col(3)).matches(&r));
    }

    #[test]
    fn boolean_combinators() {
        let r = row();
        let t = Expr::cmp(CmpOp::Eq, Expr::Col(0), Expr::lit(5i64));
        let f = Expr::cmp(CmpOp::Eq, Expr::Col(0), Expr::lit(6i64));
        assert!(t.clone().and(t.clone()).matches(&r));
        assert!(!t.clone().and(f.clone()).matches(&r));
        assert!(t.clone().or(f.clone()).matches(&r));
        assert!(Expr::Not(Box::new(f)).matches(&r));
    }

    #[test]
    fn string_predicates() {
        let r = row();
        assert!(Expr::StartsWith(Box::new(Expr::Col(2)), "BRA".into()).matches(&r));
        assert!(!Expr::StartsWith(Box::new(Expr::Col(2)), "ARG".into()).matches(&r));
        assert!(Expr::Contains(Box::new(Expr::Col(2)), "AZI".into()).matches(&r));
    }

    #[test]
    fn in_list_and_between() {
        let r = row();
        assert!(
            Expr::InList(Box::new(Expr::Col(0)), vec![Value::Int(1), Value::Int(5)]).matches(&r)
        );
        assert!(Expr::Between(Box::new(Expr::Col(0)), Value::Int(1), Value::Int(5)).matches(&r));
        assert!(!Expr::Between(Box::new(Expr::Col(0)), Value::Int(6), Value::Int(9)).matches(&r));
    }

    #[test]
    fn is_null_and_int_div() {
        let r = row();
        assert_eq!(Expr::IsNull(Box::new(Expr::Col(3))).eval(&r), Value::Int(1));
        assert_eq!(Expr::IsNull(Box::new(Expr::Col(0))).eval(&r), Value::Int(0));
        let div = Expr::IntDiv(Box::new(Expr::lit(730i64)), Box::new(Expr::lit(365i64)));
        assert_eq!(div.eval(&r), Value::Int(2));
        let div0 = Expr::IntDiv(Box::new(Expr::lit(7i64)), Box::new(Expr::lit(0i64)));
        assert_eq!(div0.eval(&r), Value::Null);
    }

    #[test]
    fn node_count_and_display() {
        let e = Expr::cmp(
            CmpOp::Gt,
            Expr::Col(0).mul(Expr::lit(2i64)),
            Expr::lit(10i64),
        );
        assert_eq!(e.node_count(), 5);
        assert_eq!(e.to_string(), "((c0 * 2) > 10)");
    }
}
