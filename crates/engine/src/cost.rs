//! Engine cost calibration: instructions per modeled row per operation.
//!
//! Like `dbsens_hwsim::calib`, every constant that shapes execution timing
//! lives in this one table. Counts are per *modeled* row (paper scale), so
//! simulated instruction totals match what the full-size database would
//! retire.

use serde::{Deserialize, Serialize};

/// Per-operation instruction costs and related execution constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCost {
    /// Instructions to scan one row from a heap page (row-store).
    pub scan_row: u64,
    /// Instructions per expression node per row for filters/projections.
    pub expr_node: u64,
    /// Instructions to process one row through columnstore batch-mode
    /// decompression (per column); far below row-store cost thanks to
    /// vectorized execution.
    pub columnstore_row_per_col: u64,
    /// Instructions to insert one row into a hash table.
    pub hash_build_row: u64,
    /// Instructions to probe a hash table once.
    pub hash_probe_row: u64,
    /// Instructions per B-tree level traversed in a seek.
    pub btree_level: u64,
    /// Instructions to update one aggregate accumulator.
    pub agg_row: u64,
    /// Instructions per row per log2(n) for sorting.
    pub sort_row_log: u64,
    /// Instructions per row to pass through an exchange (repartitioning)
    /// operator when running in parallel.
    pub exchange_row: u64,
    /// Instructions of fixed startup cost per parallel worker.
    pub parallel_startup: u64,
    /// Instructions per row for DML record construction and index
    /// maintenance (per index touched).
    pub dml_row: u64,
    /// Bytes of workspace per row for a hash table (drives memory grants).
    pub hash_bytes_per_row: u64,
    /// Bytes of workspace per row for a sort run.
    pub sort_bytes_per_row: u64,
    /// Log record bytes for a row modification.
    pub log_bytes_per_row: u64,
    /// Page latch hold time in nanoseconds for a row modification.
    pub page_latch_ns: u64,
    /// Internal (log buffer / allocation) latch hold time in nanoseconds.
    pub internal_latch_ns: u64,
    /// Maximum modeled rows covered by a single trace item (granularity of
    /// the demand stream fed to the hardware simulator).
    pub trace_chunk_rows: u64,
    /// Fixed instructions per OLTP statement (protocol handling, parsing,
    /// plan-cache lookup, execution setup).
    pub stmt_overhead: u64,
    /// Fixed instructions per transaction (session bookkeeping, commit
    /// processing, lock release).
    pub txn_overhead: u64,
    /// Seconds between checkpoint rounds of the background writer.
    pub checkpoint_interval_secs: u64,
    /// Footprint of shared session state / plan cache / metadata touched
    /// by every statement (drives the OLTP LLC knee, Table 4).
    pub session_footprint_bytes: u64,
    /// LLC-level accesses into the session footprint per statement.
    pub session_accesses_per_stmt: u64,
    /// Footprint of columnstore batch buffers and dictionaries reused
    /// during scans (drives the analytical LLC knee and the Figure 2
    /// cache-speedup curve).
    pub batch_footprint_bytes: u64,
    /// LLC-level accesses into the batch footprint per scanned row.
    pub batch_accesses_per_row: u64,
}

impl Default for EngineCost {
    fn default() -> Self {
        EngineCost {
            scan_row: 50,
            expr_node: 4,
            columnstore_row_per_col: 7,
            hash_build_row: 45,
            hash_probe_row: 30,
            btree_level: 120,
            agg_row: 25,
            sort_row_log: 12,
            exchange_row: 14,
            parallel_startup: 250_000,
            dml_row: 400,
            hash_bytes_per_row: 36,
            sort_bytes_per_row: 24,
            log_bytes_per_row: 220,
            page_latch_ns: 6_000,
            internal_latch_ns: 2_000,
            trace_chunk_rows: 1_000_000,
            stmt_overhead: 500_000,
            txn_overhead: 1_000_000,
            checkpoint_interval_secs: 5,
            session_footprint_bytes: 5 << 20,
            session_accesses_per_stmt: 7_000,
            batch_footprint_bytes: 9 << 20,
            batch_accesses_per_row: 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineCost::default();
        // Columnstore batch mode must be much cheaper than row mode.
        assert!(c.columnstore_row_per_col * 5 < c.scan_row * 5);
        assert!(c.columnstore_row_per_col < c.scan_row);
        // A B-tree probe dominates a hash probe.
        assert!(c.btree_level > c.hash_probe_row);
        assert!(c.trace_chunk_rows >= 1000);
    }
}
