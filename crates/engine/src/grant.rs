//! Query memory grant manager (SQL Server's RESOURCE_SEMAPHORE).
//!
//! Queries reserve their memory grant before execution; when the workspace
//! pool is exhausted, requests queue FIFO and the requesting task blocks.
//! Releases grant queued requests in order, which is what couples memory
//! capacity to achievable concurrency (paper §8).

use dbsens_hwsim::task::TaskId;
use std::collections::VecDeque;

/// The grant manager.
///
/// # Examples
///
/// ```
/// use dbsens_engine::grant::GrantManager;
/// use dbsens_hwsim::task::TaskId;
///
/// let mut gm = GrantManager::new(1000);
/// assert!(gm.try_acquire(TaskId(1), 600));
/// assert!(!gm.try_acquire(TaskId(2), 600)); // queued
/// let woken = gm.release(600);
/// assert_eq!(woken, vec![TaskId(2)]); // task 2 now holds 600
/// ```
#[derive(Debug)]
pub struct GrantManager {
    total: u64,
    available: u64,
    queue: VecDeque<(TaskId, u64)>,
    peak_queue: usize,
    grants: u64,
    grant_waits: u64,
}

impl GrantManager {
    /// Creates a manager over `total` bytes of query workspace.
    pub fn new(total: u64) -> Self {
        GrantManager {
            total,
            available: total,
            queue: VecDeque::new(),
            peak_queue: 0,
            grants: 0,
            grant_waits: 0,
        }
    }

    /// Total workspace bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Currently available bytes.
    pub fn available(&self) -> u64 {
        self.available
    }

    /// Requests `bytes` for `task`. Returns `true` if granted immediately;
    /// otherwise the request is queued and the task must block until woken
    /// (at which point the grant is already held).
    ///
    /// Requests larger than the total are clamped to the total (they would
    /// otherwise never be grantable).
    pub fn try_acquire(&mut self, task: TaskId, bytes: u64) -> bool {
        let bytes = bytes.min(self.total);
        if self.queue.is_empty() && bytes <= self.available {
            self.available -= bytes;
            self.grants += 1;
            true
        } else {
            self.queue.push_back((task, bytes));
            self.peak_queue = self.peak_queue.max(self.queue.len());
            self.grant_waits += 1;
            false
        }
    }

    /// Returns `bytes` to the pool and grants queued requests that now
    /// fit, FIFO. Returns the tasks to wake; each woken task already holds
    /// its grant.
    pub fn release(&mut self, bytes: u64) -> Vec<TaskId> {
        self.available = (self.available + bytes.min(self.total)).min(self.total);
        let mut woken = Vec::new();
        while let Some(&(task, want)) = self.queue.front() {
            if want > self.available {
                break;
            }
            self.available -= want;
            self.grants += 1;
            self.queue.pop_front();
            woken.push(task);
        }
        woken
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Number of requests that had to wait.
    pub fn grant_waits(&self) -> u64 {
        self.grant_waits
    }

    /// Longest queue observed.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_exhausted_then_queues() {
        let mut gm = GrantManager::new(100);
        assert!(gm.try_acquire(TaskId(1), 40));
        assert!(gm.try_acquire(TaskId(2), 40));
        assert!(!gm.try_acquire(TaskId(3), 40));
        assert_eq!(gm.available(), 20);
        assert_eq!(gm.grant_waits(), 1);
    }

    #[test]
    fn release_wakes_fifo_while_fitting() {
        let mut gm = GrantManager::new(100);
        assert!(gm.try_acquire(TaskId(1), 100));
        assert!(!gm.try_acquire(TaskId(2), 60));
        assert!(!gm.try_acquire(TaskId(3), 30));
        // Releasing 100 grants both queued requests in order.
        assert_eq!(gm.release(100), vec![TaskId(2), TaskId(3)]);
        assert_eq!(gm.available(), 10);
    }

    #[test]
    fn fifo_prevents_small_request_overtaking() {
        let mut gm = GrantManager::new(100);
        assert!(gm.try_acquire(TaskId(1), 90));
        assert!(!gm.try_acquire(TaskId(2), 50));
        // A small request behind a queued large one must also queue.
        assert!(!gm.try_acquire(TaskId(3), 5));
        assert_eq!(gm.release(90), vec![TaskId(2), TaskId(3)]);
    }

    #[test]
    fn oversized_requests_clamped() {
        let mut gm = GrantManager::new(100);
        assert!(gm.try_acquire(TaskId(1), 1_000_000));
        assert_eq!(gm.available(), 0);
        gm.release(1_000_000);
        assert_eq!(gm.available(), 100);
    }
}
