//! Physical query plans.
//!
//! The optimizer lowers a [`crate::plan::Logical`] tree into a physical
//! operator tree with concrete algorithm choices (hash vs. index
//! nested-loops join, row-store vs. columnstore scan), per-plan degree of
//! parallelism, and a memory-grant estimate. The `Display` implementation
//! renders the tree the way the paper's Figure 7 shows plans, with parallel
//! operators marked.

use crate::db::TableId;
use crate::expr::Expr;
use crate::plan::{AggSpec, JoinKind};
use dbsens_storage::value::{Key, Value};
use std::fmt;

/// A physical operator tree.
#[derive(Debug, Clone)]
pub enum PhysNode {
    /// Row-store sequential scan.
    SeqScan {
        /// Source table.
        table: TableId,
        /// Residual filter.
        filter: Option<Expr>,
        /// Output columns (`None` = all).
        project: Option<Vec<usize>>,
        /// Estimated output rows (logical scale).
        est_rows: f64,
    },
    /// Columnstore (batch-mode) scan with optional segment elimination.
    ColumnstoreScan {
        /// Source table (must have a columnstore index).
        table: TableId,
        /// Residual filter.
        filter: Option<Expr>,
        /// Segment-elimination bound: `(column, lo, hi)`.
        elim: Option<(usize, Option<Value>, Option<Value>)>,
        /// Output columns (`None` = all).
        project: Option<Vec<usize>>,
        /// Estimated output rows (logical scale).
        est_rows: f64,
    },
    /// B-tree range access.
    IndexRange {
        /// Source table.
        table: TableId,
        /// Index name.
        index: String,
        /// Lower bound (inclusive).
        lo: Option<Key>,
        /// Upper bound (exclusive).
        hi: Option<Key>,
        /// Residual filter.
        filter: Option<Expr>,
        /// Estimated output rows (logical scale).
        est_rows: f64,
    },
    /// Hash join: build on the right child, probe with the left.
    HashJoin {
        /// Probe input.
        probe: Box<PhysNode>,
        /// Build input.
        build: Box<PhysNode>,
        /// Probe-side key columns.
        probe_keys: Vec<usize>,
        /// Build-side key columns.
        build_keys: Vec<usize>,
        /// Join kind (left = probe side).
        kind: JoinKind,
        /// `true` when the optimizer put the logical *left* input on the
        /// build side; the executor then restores the `left ++ right`
        /// output column order.
        swapped: bool,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated build-side hash table bytes at paper scale (drives
        /// the memory grant).
        build_bytes: u64,
    },
    /// Index nested-loops join: for each outer row, seek the inner index.
    NlJoin {
        /// Outer input.
        outer: Box<PhysNode>,
        /// Inner table.
        inner_table: TableId,
        /// Inner index name.
        inner_index: String,
        /// Outer-side key columns.
        outer_keys: Vec<usize>,
        /// Join kind (left = outer side).
        kind: JoinKind,
        /// Residual filter over `outer ++ inner` rows.
        filter: Option<Expr>,
        /// Estimated output rows.
        est_rows: f64,
    },
    /// Hash aggregation.
    HashAgg {
        /// Input.
        input: Box<PhysNode>,
        /// Group-by columns.
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
        /// Estimated groups.
        est_groups: f64,
        /// Estimated hash table bytes at paper scale.
        ht_bytes: u64,
    },
    /// Scalar (ungrouped) streaming aggregation.
    StreamAgg {
        /// Input.
        input: Box<PhysNode>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Full sort.
    Sort {
        /// Input.
        input: Box<PhysNode>,
        /// Sort keys `(column, descending)`.
        keys: Vec<(usize, bool)>,
        /// Estimated sort workspace bytes at paper scale.
        sort_bytes: u64,
    },
    /// First `n` rows.
    Top {
        /// Input.
        input: Box<PhysNode>,
        /// Row limit.
        n: usize,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<PhysNode>,
        /// Output expressions.
        exprs: Vec<Expr>,
    },
    /// Filter.
    Filter {
        /// Input.
        input: Box<PhysNode>,
        /// Predicate.
        pred: Expr,
    },
}

impl PhysNode {
    /// Estimated output rows (logical scale).
    pub fn est_rows(&self) -> f64 {
        match self {
            PhysNode::SeqScan { est_rows, .. }
            | PhysNode::ColumnstoreScan { est_rows, .. }
            | PhysNode::IndexRange { est_rows, .. }
            | PhysNode::HashJoin { est_rows, .. }
            | PhysNode::NlJoin { est_rows, .. } => *est_rows,
            PhysNode::HashAgg { est_groups, .. } => *est_groups,
            PhysNode::StreamAgg { .. } => 1.0,
            PhysNode::Sort { input, .. }
            | PhysNode::Project { input, .. }
            | PhysNode::Filter { input, .. } => input.est_rows(),
            PhysNode::Top { input, n } => (*n as f64).min(input.est_rows()),
        }
    }

    /// Sum of memory-consuming operator workspaces (paper scale), before
    /// DOP inflation.
    pub fn workspace_bytes(&self) -> u64 {
        let own = match self {
            PhysNode::HashJoin { build_bytes, .. } => *build_bytes,
            PhysNode::HashAgg { ht_bytes, .. } => *ht_bytes,
            PhysNode::Sort { sort_bytes, .. } => *sort_bytes,
            _ => 0,
        };
        own + self
            .children()
            .iter()
            .map(|c| c.workspace_bytes())
            .sum::<u64>()
    }

    /// Child operators.
    pub fn children(&self) -> Vec<&PhysNode> {
        match self {
            PhysNode::SeqScan { .. }
            | PhysNode::ColumnstoreScan { .. }
            | PhysNode::IndexRange { .. } => vec![],
            PhysNode::HashJoin { probe, build, .. } => vec![probe.as_ref(), build.as_ref()],
            PhysNode::NlJoin { outer, .. } => vec![outer.as_ref()],
            PhysNode::HashAgg { input, .. }
            | PhysNode::StreamAgg { input, .. }
            | PhysNode::Sort { input, .. }
            | PhysNode::Top { input, .. }
            | PhysNode::Project { input, .. }
            | PhysNode::Filter { input, .. } => vec![input.as_ref()],
        }
    }

    /// Operator name for rendering.
    pub fn op_name(&self) -> &'static str {
        match self {
            PhysNode::SeqScan { .. } => "Table Scan",
            PhysNode::ColumnstoreScan { .. } => "Columnstore Scan",
            PhysNode::IndexRange { .. } => "Index Seek",
            PhysNode::HashJoin { .. } => "Hash Join",
            PhysNode::NlJoin { .. } => "Nested Loops (index)",
            PhysNode::HashAgg { .. } => "Hash Aggregate",
            PhysNode::StreamAgg { .. } => "Stream Aggregate",
            PhysNode::Sort { .. } => "Sort",
            PhysNode::Top { .. } => "Top",
            PhysNode::Project { .. } => "Compute Scalar",
            PhysNode::Filter { .. } => "Filter",
        }
    }

    /// Collects `(depth, name, detail)` rows for rendering.
    fn render_into(&self, depth: usize, out: &mut Vec<(usize, String)>) {
        let detail = match self {
            PhysNode::SeqScan {
                table, est_rows, ..
            }
            | PhysNode::ColumnstoreScan {
                table, est_rows, ..
            } => {
                format!("t{} (~{:.0} rows)", table.0, est_rows)
            }
            PhysNode::IndexRange {
                table,
                index,
                est_rows,
                ..
            } => {
                format!("t{}.{} (~{:.0} rows)", table.0, index, est_rows)
            }
            PhysNode::HashJoin { est_rows, .. } => format!("(~{est_rows:.0} rows)"),
            PhysNode::NlJoin {
                inner_table,
                inner_index,
                est_rows,
                ..
            } => {
                format!(
                    "inner t{}.{} (~{:.0} rows)",
                    inner_table.0, inner_index, est_rows
                )
            }
            PhysNode::HashAgg {
                group_by,
                est_groups,
                ..
            } => {
                format!("{} keys (~{:.0} groups)", group_by.len(), est_groups)
            }
            PhysNode::Sort { keys, .. } => format!("{} keys", keys.len()),
            PhysNode::Top { n, .. } => format!("n={n}"),
            _ => String::new(),
        };
        out.push((
            depth,
            format!("{} {}", self.op_name(), detail)
                .trim_end()
                .to_owned(),
        ));
        for c in self.children() {
            c.render_into(depth + 1, out);
        }
    }
}

/// A complete physical plan: operator tree plus plan-level properties.
#[derive(Debug, Clone)]
pub struct PhysPlan {
    /// Operator tree root.
    pub root: PhysNode,
    /// Degree of parallelism (1 = serial plan).
    pub dop: usize,
    /// Memory grant in bytes (paper scale) reserved before execution.
    pub memory_grant: u64,
    /// Workspace the plan would ideally use (paper scale, after DOP
    /// inflation); exceeding the grant forces spills.
    pub desired_memory: u64,
    /// Optimizer's estimated serial cost in instructions (paper scale).
    pub est_cost: f64,
}

impl PhysPlan {
    /// Returns `true` for a parallel plan.
    pub fn is_parallel(&self) -> bool {
        self.dop > 1
    }

    /// Counts operators of a given name, for plan-shape assertions
    /// ("alternate plans" pitfall #6).
    pub fn count_ops(&self, name: &str) -> usize {
        fn walk(n: &PhysNode, name: &str, acc: &mut usize) {
            if n.op_name() == name {
                *acc += 1;
            }
            for c in n.children() {
                walk(c, name, acc);
            }
        }
        let mut acc = 0;
        walk(&self.root, name, &mut acc);
        acc
    }

    /// A stable one-line fingerprint of the plan shape (operator names in
    /// pre-order), used to detect plan changes across knob settings.
    pub fn shape(&self) -> String {
        let mut rows = Vec::new();
        self.root.render_into(0, &mut rows);
        rows.iter()
            .map(|(d, s)| {
                let name = s.split(" (").next().unwrap_or(s);
                format!("{}{}", "-".repeat(*d), name.trim_end())
            })
            .collect::<Vec<_>>()
            .join("|")
    }
}

impl fmt::Display for PhysPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Plan (MAXDOP={}, grant={:.1} MB, est cost={:.2e} instr){}",
            self.dop,
            self.memory_grant as f64 / (1 << 20) as f64,
            self.est_cost,
            if self.is_parallel() {
                "  <=> parallel"
            } else {
                "  -> serial"
            },
        )?;
        let mut rows = Vec::new();
        self.root.render_into(0, &mut rows);
        let marker = if self.is_parallel() { "<=>" } else { "   " };
        for (depth, line) in rows {
            writeln!(f, "  {}{} {}", "    ".repeat(depth), marker, line)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> PhysPlan {
        let scan = PhysNode::SeqScan {
            table: TableId(0),
            filter: None,
            project: None,
            est_rows: 1000.0,
        };
        let build = PhysNode::SeqScan {
            table: TableId(1),
            filter: None,
            project: None,
            est_rows: 10.0,
        };
        let join = PhysNode::HashJoin {
            probe: Box::new(scan),
            build: Box::new(build),
            probe_keys: vec![0],
            build_keys: vec![0],
            kind: JoinKind::Inner,
            swapped: false,
            est_rows: 1000.0,
            build_bytes: 4096,
        };
        let agg = PhysNode::HashAgg {
            input: Box::new(join),
            group_by: vec![1],
            aggs: vec![crate::plan::count()],
            est_groups: 10.0,
            ht_bytes: 1 << 20,
        };
        PhysPlan {
            root: agg,
            dop: 8,
            memory_grant: 2 << 20,
            desired_memory: 2 << 20,
            est_cost: 1e9,
        }
    }

    #[test]
    fn workspace_sums_over_tree() {
        let p = sample_plan();
        assert_eq!(p.root.workspace_bytes(), 4096 + (1 << 20));
    }

    #[test]
    fn rendering_includes_all_ops() {
        let p = sample_plan();
        let s = p.to_string();
        assert!(s.contains("Hash Aggregate"));
        assert!(s.contains("Hash Join"));
        assert!(s.contains("Table Scan"));
        assert!(s.contains("<=> parallel"));
        assert!(s.contains("MAXDOP=8"));
    }

    #[test]
    fn shape_fingerprint_detects_changes() {
        let a = sample_plan();
        let mut b = sample_plan();
        b.dop = 1; // DOP alone doesn't change shape
        assert_eq!(a.shape(), b.shape());
        let c = PhysPlan {
            root: PhysNode::SeqScan {
                table: TableId(0),
                filter: None,
                project: None,
                est_rows: 1.0,
            },
            dop: 1,
            memory_grant: 0,
            desired_memory: 0,
            est_cost: 0.0,
        };
        assert_ne!(a.shape(), c.shape());
    }

    #[test]
    fn nl_join_renders_inner_index() {
        let nl = PhysNode::NlJoin {
            outer: Box::new(PhysNode::SeqScan {
                table: TableId(3),
                filter: None,
                project: None,
                est_rows: 5.0,
            }),
            inner_table: TableId(9),
            inner_index: "pk".into(),
            outer_keys: vec![0],
            kind: JoinKind::Semi,
            filter: None,
            est_rows: 5.0,
        };
        let plan = PhysPlan {
            root: nl,
            dop: 1,
            memory_grant: 0,
            desired_memory: 0,
            est_cost: 1.0,
        };
        let text = plan.to_string();
        assert!(text.contains("Nested Loops (index) inner t9.pk"), "{text}");
        assert!(text.contains("-> serial"));
    }

    #[test]
    fn count_ops_walks_tree() {
        let p = sample_plan();
        assert_eq!(p.count_ops("Table Scan"), 2);
        assert_eq!(p.count_ops("Hash Join"), 1);
        assert_eq!(p.count_ops("Sort"), 0);
    }
}
