//! Logical query plans.
//!
//! Workload queries are authored as logical plan trees (SQL parsing is out
//! of scope — see DESIGN.md §2; all paper-relevant behaviour lives below
//! this level). Nodes carry cardinality estimates the builder supplies, in
//! *logical* (scaled-down) rows; the optimizer multiplies by the database's
//! row scale for costing.

use crate::db::TableId;
use crate::expr::Expr;
use dbsens_storage::value::{Key, Value};

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join (unmatched left rows padded with NULLs).
    LeftOuter,
    /// Left semi join (left rows with at least one match).
    Semi,
    /// Left anti join (left rows with no match).
    Anti,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of the expression.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Row count (expression ignored).
    Count,
}

/// One aggregate in a group-by.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Function.
    pub func: AggFunc,
    /// Input expression over the child's row layout.
    pub expr: Expr,
}

/// A logical plan node with its output-cardinality estimate.
#[derive(Debug, Clone)]
pub struct Logical {
    /// The operator.
    pub node: LogicalNode,
    /// Estimated output rows (logical scale).
    pub est_rows: f64,
}

/// Logical operators.
#[derive(Debug, Clone)]
pub enum LogicalNode {
    /// Full scan of a table with optional filter and projection.
    Scan {
        /// Source table.
        table: TableId,
        /// Row filter.
        filter: Option<Expr>,
        /// Output columns (`None` = all).
        project: Option<Vec<usize>>,
    },
    /// Range access through a named index.
    IndexRange {
        /// Source table.
        table: TableId,
        /// Index name.
        index: String,
        /// Lower key bound (inclusive).
        lo: Option<Key>,
        /// Upper key bound (exclusive).
        hi: Option<Key>,
        /// Residual filter on fetched rows.
        filter: Option<Expr>,
    },
    /// Equi-join; output rows are `left ++ right` (semi/anti keep only the
    /// left columns).
    Join {
        /// Left (often the larger/probe) input.
        left: Box<Logical>,
        /// Right (often the build/inner) input.
        right: Box<Logical>,
        /// Join key columns of the left input.
        left_keys: Vec<usize>,
        /// Join key columns of the right input.
        right_keys: Vec<usize>,
        /// Join kind.
        kind: JoinKind,
    },
    /// Grouped aggregation; output rows are group key values followed by
    /// the aggregates.
    Agg {
        /// Input.
        input: Box<Logical>,
        /// Group-by columns (empty = scalar aggregate).
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Sort by `(column, descending)` keys.
    Sort {
        /// Input.
        input: Box<Logical>,
        /// Sort keys.
        keys: Vec<(usize, bool)>,
    },
    /// First `n` rows.
    Top {
        /// Input.
        input: Box<Logical>,
        /// Row limit.
        n: usize,
    },
    /// Row-wise projection.
    Project {
        /// Input.
        input: Box<Logical>,
        /// Output expressions.
        exprs: Vec<Expr>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<Logical>,
        /// Predicate.
        pred: Expr,
    },
}

impl Logical {
    /// Scan with a cardinality estimate.
    pub fn scan(table: TableId, filter: Option<Expr>, est_rows: f64) -> Logical {
        Logical {
            node: LogicalNode::Scan {
                table,
                filter,
                project: None,
            },
            est_rows,
        }
    }

    /// Scan with projection.
    pub fn scan_project(
        table: TableId,
        filter: Option<Expr>,
        project: Vec<usize>,
        est_rows: f64,
    ) -> Logical {
        Logical {
            node: LogicalNode::Scan {
                table,
                filter,
                project: Some(project),
            },
            est_rows,
        }
    }

    /// Index range access.
    pub fn index_range(
        table: TableId,
        index: &str,
        lo: Option<Key>,
        hi: Option<Key>,
        filter: Option<Expr>,
        est_rows: f64,
    ) -> Logical {
        Logical {
            node: LogicalNode::IndexRange {
                table,
                index: index.to_owned(),
                lo,
                hi,
                filter,
            },
            est_rows,
        }
    }

    /// Inner/semi/anti/outer equi-join.
    pub fn join(
        self,
        right: Logical,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
        est_rows: f64,
    ) -> Logical {
        Logical {
            node: LogicalNode::Join {
                left: Box::new(self),
                right: Box::new(right),
                left_keys,
                right_keys,
                kind,
            },
            est_rows,
        }
    }

    /// Grouped aggregation.
    pub fn agg(self, group_by: Vec<usize>, aggs: Vec<AggSpec>, est_groups: f64) -> Logical {
        Logical {
            node: LogicalNode::Agg {
                input: Box::new(self),
                group_by,
                aggs,
            },
            est_rows: est_groups,
        }
    }

    /// Sort.
    pub fn sort(self, keys: Vec<(usize, bool)>) -> Logical {
        let est = self.est_rows;
        Logical {
            node: LogicalNode::Sort {
                input: Box::new(self),
                keys,
            },
            est_rows: est,
        }
    }

    /// Top-N.
    pub fn top(self, n: usize) -> Logical {
        Logical {
            node: LogicalNode::Top {
                input: Box::new(self),
                n,
            },
            est_rows: n as f64,
        }
    }

    /// Projection.
    pub fn project(self, exprs: Vec<Expr>) -> Logical {
        let est = self.est_rows;
        Logical {
            node: LogicalNode::Project {
                input: Box::new(self),
                exprs,
            },
            est_rows: est,
        }
    }

    /// Filter with an explicit selectivity estimate.
    pub fn filter(self, pred: Expr, selectivity: f64) -> Logical {
        let est = self.est_rows * selectivity.clamp(0.0, 1.0);
        Logical {
            node: LogicalNode::Filter {
                input: Box::new(self),
                pred,
            },
            est_rows: est,
        }
    }

    /// Number of scans referencing `table` (used by validation warnings and
    /// tests).
    pub fn scan_count(&self, table: TableId) -> usize {
        match &self.node {
            LogicalNode::Scan { table: t, .. } | LogicalNode::IndexRange { table: t, .. } => {
                usize::from(*t == table)
            }
            LogicalNode::Join { left, right, .. } => {
                left.scan_count(table) + right.scan_count(table)
            }
            LogicalNode::Agg { input, .. }
            | LogicalNode::Sort { input, .. }
            | LogicalNode::Top { input, .. }
            | LogicalNode::Project { input, .. }
            | LogicalNode::Filter { input, .. } => input.scan_count(table),
        }
    }
}

/// Convenience: a sum aggregate over a column.
pub fn sum(col: usize) -> AggSpec {
    AggSpec {
        func: AggFunc::Sum,
        expr: Expr::Col(col),
    }
}

/// Convenience: an average aggregate over a column.
pub fn avg(col: usize) -> AggSpec {
    AggSpec {
        func: AggFunc::Avg,
        expr: Expr::Col(col),
    }
}

/// Convenience: a count aggregate.
pub fn count() -> AggSpec {
    AggSpec {
        func: AggFunc::Count,
        expr: Expr::Lit(Value::Int(1)),
    }
}

/// Convenience: a min aggregate over a column.
pub fn min(col: usize) -> AggSpec {
    AggSpec {
        func: AggFunc::Min,
        expr: Expr::Col(col),
    }
}

/// Convenience: a max aggregate over a column.
pub fn max(col: usize) -> AggSpec {
    AggSpec {
        func: AggFunc::Max,
        expr: Expr::Col(col),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_propagate_estimates() {
        let t = TableId(0);
        let q = Logical::scan(t, None, 1000.0)
            .filter(Expr::lit(1i64), 0.1)
            .join(
                Logical::scan(TableId(1), None, 50.0),
                vec![0],
                vec![0],
                JoinKind::Inner,
                100.0,
            )
            .agg(vec![0], vec![sum(1), count()], 10.0)
            .sort(vec![(1, true)])
            .top(5);
        assert_eq!(q.est_rows, 5.0);
        assert_eq!(q.scan_count(t), 1);
        assert_eq!(q.scan_count(TableId(1)), 1);
        assert_eq!(q.scan_count(TableId(9)), 0);
    }

    #[test]
    fn filter_clamps_selectivity() {
        let q = Logical::scan(TableId(0), None, 100.0).filter(Expr::lit(1i64), 7.0);
        assert_eq!(q.est_rows, 100.0);
    }
}
