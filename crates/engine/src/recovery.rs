//! ARIES-lite crash recovery.
//!
//! After a simulated power loss, what survives is a [`CrashImage`]: the
//! durable prefix of the WAL (possibly with a torn tail) plus the state
//! snapshots that durable checkpoints persisted. [`recover`] rebuilds a
//! consistent database from it in the classic three passes:
//!
//! 1. **Analysis** — scan the durable log, classify every transaction as
//!    committed, aborted, or a *loser* (in flight at the crash), and collect
//!    the set of operations already compensated by durable CLRs.
//! 2. **Redo** — restart from the newest snapshot whose checkpoint record is
//!    durable (or the initial state) and repeat history: every logged
//!    operation after that point is re-applied, winners and losers alike,
//!    CLRs included.
//! 3. **Undo** — walk losers' uncompensated operations in descending LSN
//!    order, reversing each and writing a CLR, then close each loser with an
//!    `Abort` record. CLRs are forced to the log synchronously, so a crash
//!    *during* recovery leaves a log from which the next recovery continues
//!    exactly where this one stopped — recovery is idempotent.
//!
//! The undo pass accepts an optional budget of actions so the crash verifier
//! can kill recovery itself partway through and restart it.

use crate::db::{Database, TableId, UndoOp};
use dbsens_storage::btree::RowId;
use dbsens_storage::wal::{scan_log, ClrAction, Wal, WalRecord};
use std::collections::{BTreeMap, BTreeSet};

/// What survives a crash: the durable WAL image (after torn-tail rendering)
/// and the checkpoint snapshots, which model pages already written back.
#[derive(Debug)]
pub struct CrashImage {
    /// Checkpoint snapshots by checkpoint-record LSN; index 0 is the
    /// initial state at LSN 0.
    pub snapshots: Vec<(u64, Box<Database>)>,
    /// The surviving log bytes.
    pub wal_image: Vec<u8>,
}

impl CrashImage {
    /// Renders the crash image of a halted database: every durable log
    /// byte, a torn tail of the oldest in-flight flush chosen by
    /// `keep_sectors`, and the checkpoint snapshots.
    pub fn extract(db: &mut Database, keep_sectors: impl FnOnce(u64) -> u64) -> CrashImage {
        CrashImage {
            snapshots: db.take_snapshots(),
            wal_image: db.wal.crash_image(keep_sectors),
        }
    }
}

/// What recovery did, for durability reports and modeled recovery time.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Committed transactions whose effects the log guarantees.
    pub committed_txns: u64,
    /// Loser transactions rolled back by the undo pass.
    pub losers_undone: u64,
    /// Log records re-applied by the redo pass.
    pub redo_records: u64,
    /// Operations reversed (CLRs written) by the undo pass.
    pub undo_records: u64,
    /// LSN of the checkpoint the redo pass started from (0 = initial state).
    pub checkpoint_lsn: u64,
    /// Durable log bytes scanned.
    pub log_bytes: u64,
    /// Whether the log ended in a torn or corrupt frame (expected when the
    /// crash cut a flush mid-write; the chain checksum truncates it).
    pub torn_tail: bool,
    /// `false` if the undo budget ran out (a mid-recovery crash): the
    /// returned database needs another [`recover`] round.
    pub completed: bool,
    /// Two-phase-commit transactions that were prepared but had no durable
    /// decision at the crash. Their effects are kept (not undone) and the
    /// node must ask each coordinator for the outcome — presumed abort: no
    /// durable `CoordCommit` there means abort. Resolve each with
    /// [`resolve_indoubt`].
    pub in_doubt: Vec<InDoubt>,
}

/// One in-doubt transaction surfaced by the analysis pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InDoubt {
    /// The prepared transaction.
    pub txn: u64,
    /// Node id of the coordinator to consult.
    pub coordinator: u32,
}

impl RecoveryReport {
    /// Modeled wall-clock recovery time: one sequential log read plus
    /// per-record replay work.
    pub fn modeled_secs(&self, read_mbps: f64) -> f64 {
        let scan = self.log_bytes as f64 / (read_mbps.max(1.0) * 1e6);
        let replay = (self.redo_records + self.undo_records) as f64 * 2e-6;
        scan + replay
    }
}

/// The per-operation redo/undo images recoverable from a data record.
fn undo_op_of(rec: &WalRecord) -> Option<(u64, UndoOp)> {
    match rec {
        WalRecord::Insert {
            txn, table, rid, ..
        } => Some((
            *txn,
            UndoOp::Insert {
                table: TableId(*table as usize),
                rid: RowId(*rid),
            },
        )),
        WalRecord::Update {
            txn,
            table,
            rid,
            before,
            ..
        } => Some((
            *txn,
            UndoOp::Update {
                table: TableId(*table as usize),
                rid: RowId(*rid),
                before: before.clone(),
            },
        )),
        WalRecord::Delete {
            txn,
            table,
            rid,
            row,
        } => Some((
            *txn,
            UndoOp::Delete {
                table: TableId(*table as usize),
                rid: RowId(*rid),
                row: row.clone(),
            },
        )),
        _ => None,
    }
}

/// Recovers a database from a crash image.
///
/// `undo_budget` bounds how many undo actions this round may perform
/// (`None` = unbounded). When the budget runs out the report's `completed`
/// is `false`; extract a fresh [`CrashImage`] from the returned database
/// and call [`recover`] again to continue — the CLRs written so far are
/// durable, so no work is repeated.
///
/// # Panics
///
/// Panics if the image has no snapshots (every capture-mode database starts
/// with the initial LSN-0 snapshot) or if a redo record contradicts the
/// snapshot state (both indicate a harness bug, not a simulated failure).
pub fn recover(mut image: CrashImage, undo_budget: Option<usize>) -> (Database, RecoveryReport) {
    let scan = scan_log(&image.wal_image);
    let mut report = RecoveryReport {
        torn_tail: scan.torn,
        log_bytes: scan.valid_bytes as u64,
        completed: true,
        ..RecoveryReport::default()
    };

    // --- analysis ---------------------------------------------------------
    let mut committed: BTreeSet<u64> = BTreeSet::new();
    let mut aborted: BTreeSet<u64> = BTreeSet::new();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut compensated: BTreeSet<u64> = BTreeSet::new();
    let mut checkpoint_lsns: BTreeSet<u64> = BTreeSet::new();
    let mut prepared: BTreeMap<u64, u32> = BTreeMap::new();
    for (lsn, rec) in &scan.records {
        if let Some(txn) = rec.txn() {
            seen.insert(txn);
        }
        match rec {
            WalRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            WalRecord::Abort { txn } => {
                aborted.insert(*txn);
            }
            WalRecord::Clr { undo_of, .. } => {
                compensated.insert(*undo_of);
            }
            WalRecord::Checkpoint { .. } => {
                checkpoint_lsns.insert(lsn.0);
            }
            WalRecord::Prepare { txn, coordinator } => {
                prepared.insert(*txn, *coordinator);
            }
            WalRecord::CoordCommit { txn, .. } => {
                // The coordinator's own branch commits with the decision
                // record: forcing `CoordCommit` is its commit point even if
                // the crash cut the local `Commit` record that follows.
                committed.insert(*txn);
            }
            _ => {}
        }
    }
    report.committed_txns = committed.len() as u64;
    report.in_doubt = prepared
        .iter()
        .filter(|(t, _)| !committed.contains(t) && !aborted.contains(t))
        .map(|(&txn, &coordinator)| InDoubt { txn, coordinator })
        .collect();

    // --- pick the redo base ----------------------------------------------
    // The newest snapshot whose checkpoint record survived in the durable
    // log (the initial LSN-0 snapshot always qualifies).
    let base_idx = image
        .snapshots
        .iter()
        .rposition(|(lsn, _)| *lsn == 0 || checkpoint_lsns.contains(lsn))
        .expect("crash image holds at least the initial snapshot");
    report.checkpoint_lsn = image.snapshots[base_idx].0;
    let mut db = *image.snapshots[base_idx].1.clone();
    db.wal = Wal::from_image(image.wal_image.clone());
    db.clear_recovery_state();
    db.set_snapshots(std::mem::take(&mut image.snapshots));

    // --- redo: repeat history after the checkpoint ------------------------
    for (lsn, rec) in &scan.records {
        if lsn.0 <= report.checkpoint_lsn {
            continue;
        }
        let applied = match rec {
            WalRecord::Insert {
                table, rid, row, ..
            } => {
                let ok = db.restore_row(TableId(*table as usize), RowId(*rid), row.clone());
                assert!(ok, "redo insert landed on an occupied slot (lsn {})", lsn.0);
                true
            }
            WalRecord::Update {
                table, rid, after, ..
            } => {
                let image = after.clone();
                let ok = db.update_row(TableId(*table as usize), RowId(*rid), |r| *r = image);
                assert!(ok, "redo update targets a missing row (lsn {})", lsn.0);
                true
            }
            WalRecord::Delete { table, rid, .. } => {
                let old = db.delete_row(TableId(*table as usize), RowId(*rid));
                assert!(
                    old.is_some(),
                    "redo delete targets a missing row (lsn {})",
                    lsn.0
                );
                true
            }
            WalRecord::Clr {
                table, rid, action, ..
            } => {
                let table = TableId(*table as usize);
                let rid = RowId(*rid);
                match action {
                    ClrAction::Remove => {
                        db.delete_row(table, rid);
                    }
                    ClrAction::Reinsert { row } => {
                        let ok = db.restore_row(table, rid, row.clone());
                        assert!(
                            ok,
                            "redo CLR reinsert landed on an occupied slot (lsn {})",
                            lsn.0
                        );
                    }
                    ClrAction::SetTo { row } => {
                        let image = row.clone();
                        db.update_row(table, rid, |r| *r = image);
                    }
                }
                true
            }
            _ => false,
        };
        if applied {
            report.redo_records += 1;
        }
    }

    // --- undo losers ------------------------------------------------------
    // A loser appeared in the log but neither committed nor finished
    // aborting. Its uncompensated data operations are reversed newest-first
    // (one global descending-LSN pass), each writing a CLR; a finished
    // loser is closed with `Abort`. Prepared-but-undecided transactions are
    // NOT losers: their effects stay applied until in-doubt resolution.
    let losers: BTreeSet<u64> = seen
        .iter()
        .copied()
        .filter(|t| !committed.contains(t) && !aborted.contains(t) && !prepared.contains_key(t))
        .collect();
    let mut to_undo: Vec<(u64, u64, UndoOp)> = Vec::new(); // (lsn, txn, op)
    let mut remaining: BTreeMap<u64, usize> = BTreeMap::new();
    for (lsn, rec) in &scan.records {
        let Some((txn, op)) = undo_op_of(rec) else {
            continue;
        };
        if losers.contains(&txn) && !compensated.contains(&lsn.0) {
            to_undo.push((lsn.0, txn, op));
            *remaining.entry(txn).or_insert(0) += 1;
        }
    }
    report.losers_undone = losers.len() as u64;
    let mut budget = undo_budget.unwrap_or(usize::MAX);
    to_undo.sort_by_key(|e| std::cmp::Reverse(e.0));
    for (lsn, txn, op) in to_undo {
        if budget == 0 {
            report.completed = false;
            break;
        }
        budget -= 1;
        db.apply_undo(txn, lsn, &op);
        report.undo_records += 1;
        let left = remaining.get_mut(&txn).expect("undo bookkeeping");
        *left -= 1;
        if *left == 0 {
            db.finish_abort(txn);
        }
        // Recovery writes are synchronous: each CLR is durable before the
        // next undo action, which is what makes a mid-recovery crash safe.
        db.wal.force_durable();
    }
    if report.completed {
        // Losers with no data records still need closing Abort records.
        for txn in &losers {
            if !remaining.contains_key(txn) {
                db.finish_abort(*txn);
            }
        }
        db.wal.force_durable();
    }
    (db, report)
}

/// Resolves one in-doubt transaction once the coordinator's verdict is
/// known. `commit = true` writes the missing `Commit` record (the prepared
/// effects are already applied); `commit = false` reverses the
/// transaction's uncompensated operations newest-first with CLRs and
/// closes it with `Abort` — exactly what the undo pass would have done had
/// the transaction never prepared. Every record is forced durable, so a
/// crash mid-resolution leaves the transaction either still in doubt or
/// fully decided, never half-resolved.
pub fn resolve_indoubt(db: &mut Database, txn: u64, commit: bool) {
    if commit {
        db.wal.append_record(&WalRecord::Commit { txn }, 0);
        db.wal.force_durable();
        return;
    }
    let scan = scan_log(db.wal.image());
    let mut compensated: BTreeSet<u64> = BTreeSet::new();
    let mut to_undo: Vec<(u64, UndoOp)> = Vec::new();
    for (lsn, rec) in &scan.records {
        if let WalRecord::Clr { undo_of, .. } = rec {
            compensated.insert(*undo_of);
        }
        if let Some((t, op)) = undo_op_of(rec) {
            if t == txn {
                to_undo.push((lsn.0, op));
            }
        }
    }
    to_undo.retain(|(lsn, _)| !compensated.contains(lsn));
    to_undo.sort_by_key(|e| std::cmp::Reverse(e.0));
    for (lsn, op) in to_undo {
        db.apply_undo(txn, lsn, &op);
        db.wal.force_durable();
    }
    db.finish_abort(txn);
    db.wal.force_durable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsens_storage::schema::{ColType, Schema};
    use dbsens_storage::value::{Key, Value};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new(100.0, 1 << 30);
        let schema = Schema::new(&[("id", ColType::Int), ("v", ColType::Int)]);
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Int(i), Value::Int(0)])
            .collect();
        let t = db.create_table("t", schema, rows);
        db.create_index(t, "pk", &[0]);
        db.enable_crash_consistency();
        (db, t)
    }

    fn values(db: &Database, t: TableId) -> Vec<(i64, i64)> {
        let mut v: Vec<(i64, i64)> = db
            .table(t)
            .heap
            .iter()
            .map(|(_, r)| (r[0].as_int(), r[1].as_int()))
            .collect();
        v.sort_unstable();
        v
    }

    fn txn(db: &mut Database) -> dbsens_storage::lock::TxnId {
        let id = db.begin_txn();
        db.begin_txn_logged(id);
        id
    }

    #[test]
    fn committed_flushed_txn_survives_a_crash() {
        let (mut db, t) = setup();
        let tx = txn(&mut db);
        db.update_row_logged(tx, t, RowId(3), |r| r[1] = Value::Int(77));
        db.commit_txn_logged(tx);
        db.wal.flush_for_commit();
        db.wal.flush_durable(); // flush acked before the crash

        let expect = values(&db, t);
        let image = CrashImage::extract(&mut db, |_| 0);
        let (rec, report) = recover(image, None);
        assert!(report.completed);
        assert_eq!(report.committed_txns, 1);
        assert_eq!(values(&rec, t), expect);
        assert_eq!(rec.table(t).heap.get(RowId(3)).unwrap()[1].as_int(), 77);
    }

    #[test]
    fn unflushed_commit_is_lost_and_rolled_back() {
        let (mut db, t) = setup();
        let tx = txn(&mut db);
        db.update_row_logged(tx, t, RowId(3), |r| r[1] = Value::Int(77));
        db.commit_txn_logged(tx);
        db.wal.flush_for_commit();
        // Crash with the whole flush in flight and zero sectors persisted:
        // the Commit record never reached the device.
        let image = CrashImage::extract(&mut db, |_| 0);
        let (rec, report) = recover(image, None);
        assert!(report.completed);
        assert_eq!(report.committed_txns, 0);
        assert_eq!(rec.table(t).heap.get(RowId(3)).unwrap()[1].as_int(), 0);
    }

    #[test]
    fn loser_insert_and_delete_are_undone() {
        let (mut db, t) = setup();
        // A committed txn first, so there is something to keep.
        let tx = txn(&mut db);
        db.update_row_logged(tx, t, RowId(0), |r| r[1] = Value::Int(5));
        db.commit_txn_logged(tx);
        db.wal.flush_for_commit();
        db.wal.flush_durable();

        // The loser inserts a row and deletes another, then the crash hits
        // with its records durable but no Commit.
        let loser = txn(&mut db);
        db.insert_row_logged(loser, t, vec![Value::Int(100), Value::Int(1)]);
        db.delete_row_logged(loser, t, RowId(7));
        db.wal.flush_for_commit();
        db.wal.flush_durable();

        let image = CrashImage::extract(&mut db, |_| 0);
        let (rec, report) = recover(image, None);
        assert!(report.completed);
        assert_eq!(report.losers_undone, 1);
        assert_eq!(report.undo_records, 2);
        let vals = values(&rec, t);
        assert!(vals.contains(&(7, 0)), "deleted row must be reinserted");
        assert!(
            !vals.iter().any(|&(id, _)| id == 100),
            "loser insert must be removed"
        );
        assert_eq!(rec.table(t).heap.get(RowId(0)).unwrap()[1].as_int(), 5);
        // The reinserted row is findable through the index again.
        let pk = &rec.table(t).indexes[0];
        assert!(pk
            .btree
            .get(&Key::from_values(vec![Value::Int(7)]))
            .next()
            .is_some());
    }

    #[test]
    fn recovery_restarts_from_a_durable_checkpoint() {
        let (mut db, t) = setup();
        let tx = txn(&mut db);
        db.update_row_logged(tx, t, RowId(1), |r| r[1] = Value::Int(11));
        db.commit_txn_logged(tx);
        db.wal.flush_for_commit();
        db.wal.flush_durable();
        db.log_checkpoint();
        db.wal.force_durable();

        let tx2 = txn(&mut db);
        db.update_row_logged(tx2, t, RowId(2), |r| r[1] = Value::Int(22));
        db.commit_txn_logged(tx2);
        db.wal.flush_for_commit();
        db.wal.flush_durable();

        let image = CrashImage::extract(&mut db, |_| 0);
        let (rec, report) = recover(image, None);
        assert!(
            report.checkpoint_lsn > 0,
            "redo must start from the checkpoint"
        );
        assert_eq!(rec.table(t).heap.get(RowId(1)).unwrap()[1].as_int(), 11);
        assert_eq!(rec.table(t).heap.get(RowId(2)).unwrap()[1].as_int(), 22);
    }

    #[test]
    fn budgeted_recovery_resumes_after_a_mid_recovery_crash() {
        let (mut db, t) = setup();
        let loser = txn(&mut db);
        for i in 0..5 {
            db.update_row_logged(loser, t, RowId(i), |r| r[1] = Value::Int(99));
        }
        db.wal.flush_for_commit();
        db.wal.flush_durable();

        let image = CrashImage::extract(&mut db, |_| 0);
        // First recovery round dies after two undo actions.
        let (mut half, report) = recover(image, Some(2));
        assert!(!report.completed);
        assert_eq!(report.undo_records, 2);
        // Re-crash the half-recovered database and recover again.
        let image2 = CrashImage::extract(&mut half, |_| 0);
        let (rec, report2) = recover(image2, None);
        assert!(report2.completed);
        assert_eq!(
            report2.undo_records, 3,
            "CLRs from round one must not be redone"
        );
        for i in 0..5 {
            assert_eq!(rec.table(t).heap.get(RowId(i)).unwrap()[1].as_int(), 0);
        }
    }

    #[test]
    fn double_crash_during_recovery_is_idempotent() {
        let (mut db, t) = setup();
        let loser = txn(&mut db);
        for i in 0..6 {
            db.update_row_logged(loser, t, RowId(i), |r| r[1] = Value::Int(42));
        }
        db.wal.flush_for_commit();
        db.wal.flush_durable();
        let image = CrashImage::extract(&mut db, |_| 0);
        // Crash recovery twice, one undo action at a time, then finish.
        let (mut d1, r1) = recover(image, Some(1));
        assert!(!r1.completed);
        let (mut d2, r2) = recover(CrashImage::extract(&mut d1, |_| 0), Some(1));
        assert!(!r2.completed);
        let (rec, r3) = recover(CrashImage::extract(&mut d2, |_| 0), None);
        assert!(r3.completed);
        assert_eq!(r1.undo_records + r2.undo_records + r3.undo_records, 6);
        for i in 0..6 {
            assert_eq!(rec.table(t).heap.get(RowId(i)).unwrap()[1].as_int(), 0);
        }
    }

    #[test]
    fn prepared_txn_survives_recovery_in_doubt() {
        let (mut db, t) = setup();
        let tx = txn(&mut db);
        db.update_row_logged(tx, t, RowId(3), |r| r[1] = Value::Int(77));
        db.prepare_txn_logged(tx, 1);
        // Crash after the vote but before any decision arrived.
        let image = CrashImage::extract(&mut db, |_| 0);
        let (rec, report) = recover(image, None);
        assert!(report.completed);
        assert_eq!(
            report.in_doubt,
            vec![InDoubt {
                txn: tx.0,
                coordinator: 1
            }]
        );
        assert_eq!(report.losers_undone, 0, "in-doubt txns are not losers");
        assert_eq!(
            rec.table(t).heap.get(RowId(3)).unwrap()[1].as_int(),
            77,
            "prepared effects stay applied until resolution"
        );
    }

    #[test]
    fn indoubt_commit_resolution_is_durable() {
        let (mut db, t) = setup();
        let tx = txn(&mut db);
        db.update_row_logged(tx, t, RowId(4), |r| r[1] = Value::Int(44));
        db.prepare_txn_logged(tx, 0);
        let image = CrashImage::extract(&mut db, |_| 0);
        let (mut rec, report) = recover(image, None);
        assert_eq!(report.in_doubt.len(), 1);
        resolve_indoubt(&mut rec, tx.0, true);
        // Crash again: the commit decision must survive.
        let image2 = CrashImage::extract(&mut rec, |_| 0);
        let (rec2, report2) = recover(image2, None);
        assert_eq!(report2.committed_txns, 1);
        assert!(report2.in_doubt.is_empty());
        assert_eq!(rec2.table(t).heap.get(RowId(4)).unwrap()[1].as_int(), 44);
    }

    #[test]
    fn indoubt_abort_resolution_reverses_effects() {
        let (mut db, t) = setup();
        let tx = txn(&mut db);
        db.insert_row_logged(tx, t, vec![Value::Int(200), Value::Int(9)]);
        db.update_row_logged(tx, t, RowId(5), |r| r[1] = Value::Int(55));
        db.prepare_txn_logged(tx, 2);
        let image = CrashImage::extract(&mut db, |_| 0);
        let (mut rec, report) = recover(image, None);
        assert_eq!(report.in_doubt.len(), 1);
        resolve_indoubt(&mut rec, tx.0, false);
        assert_eq!(rec.table(t).heap.get(RowId(5)).unwrap()[1].as_int(), 0);
        assert!(!values(&rec, t).iter().any(|&(id, _)| id == 200));
        // Crash again: the abort is durable and nothing is in doubt.
        let image2 = CrashImage::extract(&mut rec, |_| 0);
        let (rec2, report2) = recover(image2, None);
        assert!(report2.in_doubt.is_empty());
        assert_eq!(rec2.table(t).heap.get(RowId(5)).unwrap()[1].as_int(), 0);
        assert!(!values(&rec2, t).iter().any(|&(id, _)| id == 200));
    }

    #[test]
    fn torn_tail_truncates_to_last_whole_flush() {
        let (mut db, t) = setup();
        let tx = txn(&mut db);
        db.update_row_logged(tx, t, RowId(4), |r| r[1] = Value::Int(4));
        db.commit_txn_logged(tx);
        db.wal.flush_for_commit();
        db.wal.flush_durable();

        let tx2 = txn(&mut db);
        for pass in 0..2 {
            for i in 5..10 {
                db.update_row_logged(tx2, t, RowId(i), |r| r[1] = Value::Int(50 + pass));
            }
        }
        db.commit_txn_logged(tx2);
        db.wal.flush_for_commit();
        // Crash mid-flush: the in-flight range spans several sectors and
        // only the first persists, so the trailing Commit record is torn
        // off and tx2 must be rolled back.
        let image = CrashImage::extract(&mut db, |sectors| {
            assert!(sectors > 1, "test needs a multi-sector flush");
            1
        });
        let (rec, report) = recover(image, None);
        assert!(report.completed);
        assert!(report.torn_tail, "a mid-flush crash leaves a torn tail");
        assert_eq!(rec.table(t).heap.get(RowId(4)).unwrap()[1].as_int(), 4);
        for i in 5..10 {
            assert_eq!(rec.table(t).heap.get(RowId(i)).unwrap()[1].as_int(), 0);
        }
    }
}
