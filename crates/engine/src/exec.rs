//! Query executor: logical evaluation plus paper-scale demand traces.
//!
//! Execution is split in two (DESIGN.md §1): this module runs the physical
//! plan against the *logical* (scaled-down) data to produce actual result
//! rows, while simultaneously emitting a [`DemandTrace`] describing the
//! *paper-scale* hardware work — instruction counts, LLC access patterns,
//! buffer-pool page runs, and spill I/O. The traces are grouped into
//! [`Stage`]s (pipelines separated by blocking operators); each stage's
//! items are distributed round-robin across `dop` worker traces which the
//! query task later replays concurrently on the simulated hardware.

use crate::db::{Database, TableId};
use crate::expr::Expr;
use crate::optimizer::workspace_width;
use crate::physplan::{PhysNode, PhysPlan};
use crate::plan::{AggFunc, AggSpec, JoinKind};
use dbsens_hwsim::fx::FxHashMap;
use dbsens_hwsim::mem::{MemProfile, Region};
use dbsens_storage::value::{cmp_values, Key, Row, Value};
use std::cmp::Ordering;

/// One element of a demand trace, resolved against shared state (buffer
/// pool, SSD) at replay time.
#[derive(Debug, Clone)]
pub enum TraceItem {
    /// A compute burst.
    Compute {
        /// Instructions retired.
        instructions: u64,
        /// LLC-level memory behaviour.
        mem: MemProfile,
    },
    /// A sequential page-run access through the buffer pool.
    PageRun {
        /// First global page.
        start: u64,
        /// Page count.
        pages: u64,
        /// Whether the pages are dirtied.
        write: bool,
    },
    /// Random page accesses within a span (nested-loops inner seeks).
    RandomPages {
        /// Span start page.
        start: u64,
        /// Span length in pages.
        span: u64,
        /// Number of page touches.
        count: u64,
    },
    /// Workspace spill to tempdb.
    SpillWrite {
        /// Bytes written.
        bytes: u64,
    },
    /// Reading spilled workspace back.
    SpillRead {
        /// Bytes read.
        bytes: u64,
    },
}

/// A sequence of trace items replayed by one worker.
#[derive(Debug, Clone, Default)]
pub struct DemandTrace {
    /// The items, in order.
    pub items: Vec<TraceItem>,
}

/// A pipeline stage: its items split across `dop` workers.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Worker traces (length = effective DOP of the stage).
    pub workers: Vec<DemandTrace>,
}

impl Stage {
    /// Total items across workers.
    pub fn total_items(&self) -> usize {
        self.workers.iter().map(|w| w.items.len()).sum()
    }
}

/// A morsel-driven pipeline stage: a shared queue of per-morsel demand
/// traces claimed by `partitions` worker partitions.
///
/// Produced by the push executor ([`crate::pushexec`]). Unlike [`Stage`],
/// whose items are pre-assigned to workers round-robin, a morsel stage's
/// traces are claimed dynamically at replay time, so partition load balance
/// emerges from the simulated hardware rather than from the plan.
#[derive(Debug, Clone, Default)]
pub struct MorselStage {
    /// Worker partitions scheduled for the stage (effective DOP).
    pub partitions: usize,
    /// One demand trace per morsel, claimed in order by idle partitions.
    pub morsels: Vec<DemandTrace>,
}

impl MorselStage {
    /// Total trace items across all morsels.
    pub fn total_items(&self) -> usize {
        self.morsels.iter().map(|m| m.items.len()).sum()
    }
}

/// The product of executing a plan: logical rows plus the staged demand
/// trace and memory accounting.
#[derive(Debug)]
pub struct QueryExecution {
    /// Actual result rows (logical scale).
    pub rows: Vec<Row>,
    /// Pipeline stages to replay in order.
    pub stages: Vec<Stage>,
    /// Morsel-driven pipeline stages (set by the push executor; empty on
    /// the volcano path). When non-empty, replay uses these instead of
    /// `stages`.
    pub pipelines: Vec<MorselStage>,
    /// Plan degree of parallelism.
    pub dop: usize,
    /// Memory grant to acquire before running (paper scale).
    pub grant: u64,
    /// Workspace the plan wanted.
    pub desired: u64,
    /// Bytes spilled to tempdb because the grant was insufficient.
    pub spilled_bytes: u64,
}

/// Order-sensitive digest of a query's result rows (FNV-1a over the
/// canonical byte encoding of each value).
///
/// Used to prove the push and volcano executors produce byte-identical
/// results and that results are invariant across DOP settings. Collisions
/// are astronomically unlikely for the workloads' result sizes.
pub fn rows_digest(rows: &[Row]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for row in rows {
        eat(&[0xA0]); // row separator
        for v in row {
            match v {
                Value::Int(i) => {
                    eat(&[1]);
                    eat(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    eat(&[2]);
                    eat(&f.to_bits().to_le_bytes());
                }
                Value::Str(s) => {
                    eat(&[3]);
                    eat(&(s.len() as u64).to_le_bytes());
                    eat(s.as_bytes());
                }
                Value::Null => eat(&[4]),
            }
        }
    }
    h
}

struct TraceBuilder {
    stages: Vec<Stage>,
    dop: usize,
    rr: usize,
}

impl TraceBuilder {
    fn new(dop: usize) -> Self {
        TraceBuilder {
            stages: vec![Stage {
                workers: vec![DemandTrace::default(); dop],
            }],
            dop,
            rr: 0,
        }
    }

    fn emit(&mut self, item: TraceItem) {
        let stage = self.stages.last_mut().expect("at least one stage");
        stage.workers[self.rr % self.dop].items.push(item);
        self.rr += 1;
    }

    fn new_stage(&mut self) {
        self.stages.push(Stage {
            workers: vec![DemandTrace::default(); self.dop],
        });
        self.rr = 0;
    }
}

/// Base region id for transient per-query structures (hash tables, sort
/// runs). Reusing ids across queries mirrors real allocators reusing
/// memory.
const TRANSIENT_REGION_BASE: u64 = 1 << 40;

/// Executes a physical plan against the database.
///
/// # Examples
///
/// ```
/// use dbsens_engine::db::Database;
/// use dbsens_engine::exec::execute;
/// use dbsens_engine::optimizer::{optimize, PlanContext};
/// use dbsens_engine::plan::Logical;
/// use dbsens_storage::schema::{ColType, Schema};
/// use dbsens_storage::value::Value;
///
/// let mut db = Database::new(100.0, 1 << 30);
/// let schema = Schema::new(&[("id", ColType::Int)]);
/// let rows: Vec<Vec<Value>> = (0..50).map(|i| vec![Value::Int(i)]).collect();
/// let t = db.create_table("t", schema, rows);
/// let ctx = PlanContext { maxdop: 4, grant_cap_bytes: 1 << 30, cost_threshold: 1e9, bufferpool_bytes: 1 << 30, db_bytes: 1 << 30 };
/// let plan = optimize(&db, &Logical::scan(t, None, 50.0), &ctx);
/// let exec = execute(&db, &plan);
/// assert_eq!(exec.rows.len(), 50);
/// assert!(!exec.stages.is_empty());
/// ```
pub fn execute(db: &Database, plan: &PhysPlan) -> QueryExecution {
    let mut ex = Executor {
        db,
        tb: TraceBuilder::new(plan.dop.max(1)),
        grant: plan.memory_grant,
        desired: plan.desired_memory.max(1),
        spilled: 0,
        next_region: TRANSIENT_REGION_BASE,
        dop: plan.dop.max(1),
    };
    if ex.dop > 1 {
        // Parallel startup cost, paid once per worker.
        for _ in 0..ex.dop {
            ex.tb.emit(TraceItem::Compute {
                instructions: db.cost.parallel_startup,
                mem: MemProfile::new(),
            });
        }
    }
    let rows = ex.exec(&plan.root);
    QueryExecution {
        rows,
        stages: ex.tb.stages,
        pipelines: Vec::new(),
        dop: ex.dop,
        grant: plan.memory_grant,
        desired: plan.desired_memory,
        spilled_bytes: ex.spilled,
    }
}

struct Executor<'a> {
    db: &'a Database,
    tb: TraceBuilder,
    grant: u64,
    desired: u64,
    spilled: u64,
    next_region: u64,
    dop: usize,
}

/// Hashable join/group key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum KeyPart {
    I(i64),
    S(String),
    F(u64),
    N,
}

impl KeyPart {
    /// The key part as an owned [`Value`] (exact: floats round-trip through
    /// their bit pattern).
    pub(crate) fn to_value(&self) -> Value {
        match self {
            KeyPart::I(i) => Value::Int(*i),
            KeyPart::S(s) => Value::Str(s.clone()),
            KeyPart::F(bits) => Value::Float(f64::from_bits(*bits)),
            KeyPart::N => Value::Null,
        }
    }
}

pub(crate) fn key_sig(row: &Row, cols: &[usize]) -> Vec<KeyPart> {
    let mut out = Vec::with_capacity(cols.len());
    key_sig_into(row, cols, &mut out);
    out
}

/// Fills `out` (cleared first) with the hashable key of `row` at `cols`,
/// reusing the buffer — per-row hash-table *lookups* must not allocate a
/// fresh key vector.
pub(crate) fn key_sig_into(row: &Row, cols: &[usize], out: &mut Vec<KeyPart>) {
    out.clear();
    out.extend(cols.iter().map(|&c| match &row[c] {
        Value::Int(i) => KeyPart::I(*i),
        Value::Str(s) => KeyPart::S(s.clone()),
        Value::Float(f) => KeyPart::F(f.to_bits()),
        Value::Null => KeyPart::N,
    }));
}

impl<'a> Executor<'a> {
    fn fresh_region(&mut self) -> Region {
        self.next_region += 1;
        Region::new(self.next_region)
    }

    /// Modeled rows represented by `logical` logical rows.
    fn modeled(&self, logical: usize) -> f64 {
        logical as f64 * self.db.row_scale
    }

    /// Workspace available to an operator wanting `bytes`, sharing the
    /// grant proportionally; returns bytes to spill (0 if it fits).
    fn spill_bytes(&mut self, want: u64) -> u64 {
        if want == 0 || self.desired == 0 {
            return 0;
        }
        let share = (self.grant as f64 * want as f64 / self.desired as f64) as u64;
        if want > share {
            let spill = want - share;
            self.spilled += spill;
            spill
        } else {
            0
        }
    }

    /// Emits a compute burst, splitting very large bursts into
    /// chunk-per-worker granules so parallel stages balance.
    fn emit_compute(&mut self, instructions: f64, mem: MemProfile) {
        let total = instructions.max(0.0) as u64;
        if total == 0 && mem.is_empty() {
            return;
        }
        let chunk_target = self.db.cost.trace_chunk_rows * 30; // ~instructions per chunk
        let chunks = (total / chunk_target.max(1)).clamp(1, 512) as usize;
        let per = total / chunks as u64;
        // The profile describes the whole burst; split its counts across
        // chunks so parallel workers replay balanced shares.
        let per_chunk_mem = if chunks == 1 {
            mem.clone()
        } else {
            scale_profile(&mem, 1.0 / chunks as f64)
        };
        for _ in 0..chunks {
            self.tb.emit(TraceItem::Compute {
                instructions: per,
                mem: per_chunk_mem.clone(),
            });
        }
    }

    /// Emits spill I/O split into per-worker granules. Every worker of the
    /// stage owns a share of the tempdb traffic and blocks on it, so an
    /// insufficient grant puts the spill on the stage's critical path —
    /// emitted whole, it lands on a single worker and hides behind the
    /// others' compute, making queries grant-insensitive (Figure 8).
    fn emit_spill(&mut self, bytes: u64, write: bool) {
        if bytes == 0 {
            return;
        }
        let chunks = (bytes / (8 << 20)).clamp(self.dop as u64, 256) as usize;
        let per = bytes / chunks as u64;
        let rem = bytes - per * chunks as u64;
        for i in 0..chunks {
            let b = per + if i == 0 { rem } else { 0 };
            if b == 0 {
                continue;
            }
            self.tb.emit(if write {
                TraceItem::SpillWrite { bytes: b }
            } else {
                TraceItem::SpillRead { bytes: b }
            });
        }
    }

    /// Emits the page runs of a sequential scan, chunked.
    /// Emits a scan's page runs interleaved with its compute chunks, so a
    /// replaying worker overlaps read-ahead I/O with processing (the
    /// overlap behind Figure 5's concave response).
    fn emit_scan_interleaved(&mut self, runs: &[(u64, u64)], instructions: f64, mem: MemProfile) {
        let chunk_pages = 1024u64;
        let mut chunks: Vec<(u64, u64)> = Vec::new();
        for &(start, pages) in runs {
            let mut p = start;
            let end = start + pages;
            while p < end {
                let n = chunk_pages.min(end - p);
                chunks.push((p, n));
                p += n;
            }
        }
        if chunks.is_empty() {
            self.emit_compute(instructions, mem);
            return;
        }
        // Bound trace size for very large tables: merge chunks if needed.
        const MAX_CHUNKS: usize = 1024;
        if chunks.len() > MAX_CHUNKS {
            let stride = chunks.len().div_ceil(MAX_CHUNKS);
            chunks = chunks
                .chunks(stride)
                .map(|group| {
                    let start = group[0].0;
                    let pages: u64 = group.iter().map(|(_, n)| n).sum();
                    (start, pages)
                })
                .collect();
        }
        let n = chunks.len();
        let per_instr = (instructions.max(0.0) as u64) / n as u64;
        let per_mem = scale_profile(&mem, 1.0 / n as f64);
        for (start, pages) in chunks {
            self.tb.emit(TraceItem::PageRun {
                start,
                pages,
                write: false,
            });
            self.tb.emit(TraceItem::Compute {
                instructions: per_instr,
                mem: per_mem.clone(),
            });
        }
    }

    fn exec(&mut self, n: &PhysNode) -> Vec<Row> {
        match n {
            PhysNode::SeqScan {
                table,
                filter,
                project,
                ..
            } => self.exec_seq_scan(*table, filter.as_ref(), project.as_deref()),
            PhysNode::ColumnstoreScan {
                table,
                filter,
                elim,
                project,
                ..
            } => self.exec_cs_scan(*table, filter.as_ref(), elim.as_ref(), project.as_deref()),
            PhysNode::IndexRange {
                table,
                index,
                lo,
                hi,
                filter,
                ..
            } => self.exec_index_range(*table, index, lo.as_ref(), hi.as_ref(), filter.as_ref()),
            PhysNode::HashJoin {
                probe,
                build,
                probe_keys,
                build_keys,
                kind,
                swapped,
                ..
            } => self.exec_hash_join(probe, build, probe_keys, build_keys, *kind, *swapped),
            PhysNode::NlJoin {
                outer,
                inner_table,
                inner_index,
                outer_keys,
                kind,
                filter,
                ..
            } => self.exec_nl_join(
                outer,
                *inner_table,
                inner_index,
                outer_keys,
                *kind,
                filter.as_ref(),
            ),
            PhysNode::HashAgg {
                input,
                group_by,
                aggs,
                ..
            } => self.exec_hash_agg(input, group_by, aggs),
            PhysNode::StreamAgg { input, aggs } => self.exec_stream_agg(input, aggs),
            PhysNode::Sort { input, keys, .. } => self.exec_sort(input, keys),
            PhysNode::Top { input, n } => {
                let mut rows = self.exec(input);
                rows.truncate(*n);
                rows
            }
            PhysNode::Project { input, exprs } => {
                let rows = self.exec(input);
                let instr = self.modeled(rows.len())
                    * (exprs.iter().map(Expr::node_count).sum::<u64>() * self.db.cost.expr_node)
                        as f64;
                self.emit_compute(instr, MemProfile::new());
                rows.iter()
                    .map(|r| exprs.iter().map(|e| e.eval(r)).collect())
                    .collect()
            }
            PhysNode::Filter { input, pred } => {
                let rows = self.exec(input);
                let instr =
                    self.modeled(rows.len()) * (pred.node_count() * self.db.cost.expr_node) as f64;
                self.emit_compute(instr, MemProfile::new());
                rows.into_iter().filter(|r| pred.matches(r)).collect()
            }
        }
    }

    fn exec_seq_scan(
        &mut self,
        table: TableId,
        filter: Option<&Expr>,
        project: Option<&[usize]>,
    ) -> Vec<Row> {
        let t = self.db.table(table);
        let modeled_rows = t.layout.modeled_rows() as f64;
        let expr_nodes = filter.map_or(0, Expr::node_count);
        let instr =
            modeled_rows * (self.db.cost.scan_row + expr_nodes * self.db.cost.expr_node) as f64;
        let mut mem = MemProfile::new();
        t.layout.scan_mem(&mut mem, 1.0);
        mem.random(
            self.db.batch_region(),
            self.db.cost.batch_footprint_bytes,
            (modeled_rows as u64).max(1),
        );
        let (start, pages) = t.layout.scan_run();
        self.emit_scan_interleaved(&[(start, pages)], instr, mem);
        t.heap
            .iter()
            .map(|(_, r)| r)
            .filter(|r| filter.is_none_or(|f| f.matches(r)))
            .map(|r| match project {
                Some(p) => p.iter().map(|&c| r[c].clone()).collect(),
                None => r.clone(),
            })
            .collect()
    }

    fn exec_cs_scan(
        &mut self,
        table: TableId,
        filter: Option<&Expr>,
        elim: Option<&(usize, Option<Value>, Option<Value>)>,
        project: Option<&[usize]>,
    ) -> Vec<Row> {
        let t = self.db.table(table);
        let cs = t
            .columnstore
            .as_ref()
            .unwrap_or_else(|| panic!("columnstore scan on {} without columnstore", t.name));
        // Segment elimination fraction.
        let (elim_arg, frac) = match elim {
            Some((c, lo, hi)) => {
                let total = cs.store.groups().len().max(1);
                let surviving = cs
                    .store
                    .groups()
                    .iter()
                    .filter(|g| g.segment(*c).overlaps(lo.as_ref(), hi.as_ref()))
                    .count();
                (
                    Some((*c, lo.as_ref(), hi.as_ref())),
                    surviving as f64 / total as f64,
                )
            }
            None => (None, 1.0),
        };
        let schema_len = t.heap.schema().len();
        let cols: Vec<usize> = match project {
            Some(p) => {
                let mut c = p.to_vec();
                if let Some(f) = filter {
                    collect_cols(f, &mut c);
                }
                if let Some((ec, _, _)) = elim {
                    c.push(*ec);
                }
                c.sort_unstable();
                c.dedup();
                c
            }
            None => (0..schema_len).collect(),
        };
        let modeled_rows = t.layout.modeled_rows() as f64 * frac;
        let expr_nodes = filter.map_or(0, Expr::node_count);
        let instr = modeled_rows
            * (cols.len() as u64 * self.db.cost.columnstore_row_per_col
                + expr_nodes * self.db.cost.expr_node) as f64;
        let mut mem = MemProfile::new();
        let mut runs = Vec::with_capacity(cols.len());
        for &c in &cols {
            cs.layout.column_scan_mem(&mut mem, c, frac);
            runs.push(cs.layout.column_scan_run(c, frac));
        }
        // Batch buffers and dictionaries: the reusable footprint that makes
        // analytical scans cache-sensitive (Figure 2, Table 4).
        mem.random(
            self.db.batch_region(),
            self.db.cost.batch_footprint_bytes,
            ((modeled_rows as u64) * self.db.cost.batch_accesses_per_row).max(1),
        );
        self.emit_scan_interleaved(&runs, instr, mem);

        let rows = cs.store.scan_rows(elim_arg);
        rows.into_iter()
            .filter(|r| filter.is_none_or(|f| f.matches(r)))
            .map(|r| match project {
                Some(p) => p.iter().map(|&c| r[c].clone()).collect(),
                None => r,
            })
            .collect()
    }

    fn exec_index_range(
        &mut self,
        table: TableId,
        index: &str,
        lo: Option<&Key>,
        hi: Option<&Key>,
        filter: Option<&Expr>,
    ) -> Vec<Row> {
        let t = self.db.table(table);
        let idx = t.index(index);
        let rids: Vec<_> = match (lo, hi) {
            (Some(lo), Some(hi)) => idx.btree.range(lo, hi).map(|(_, rid)| rid).collect(),
            (Some(lo), None) => idx.btree.seek(lo).map(|(_, rid)| rid).collect(),
            (None, Some(hi)) => idx
                .btree
                .iter()
                .take_while(|(k, _)| *k < hi)
                .map(|(_, rid)| rid)
                .collect(),
            (None, None) => idx.btree.iter().map(|(_, rid)| rid).collect(),
        };
        let total = idx.btree.len().max(1);
        let frac = (rids.len() as f64 / total as f64).clamp(0.0, 1.0);
        let start_frac = rids
            .first()
            .map(|r| r.0 as f64 / t.heap.slot_count().max(1) as f64)
            .unwrap_or(0.0)
            .clamp(0.0, 1.0);

        let modeled = self.modeled(rids.len());
        let instr = idx.layout.levels() as f64 * self.db.cost.btree_level as f64
            + modeled * self.db.cost.scan_row as f64
            + modeled * filter.map_or(0, Expr::node_count) as f64 * self.db.cost.expr_node as f64;
        let mut mem = MemProfile::new();
        idx.layout.probe_mem(&mut mem, 1);
        t.layout.scan_mem(&mut mem, frac);
        let (lstart, lpages) = idx.layout.leaf_scan_run(start_frac, frac);
        // Fetch the base rows (roughly clustered with the key order for our
        // generators).
        let tpages = ((t.layout.pages() as f64 * frac).ceil() as u64)
            .max(1)
            .min(t.layout.pages());
        self.emit_scan_interleaved(
            &[
                (lstart, lpages),
                (t.layout.page_of_fraction(start_frac), tpages),
            ],
            instr,
            mem,
        );

        rids.iter()
            .filter_map(|&rid| t.heap.get(rid))
            .filter(|r| filter.is_none_or(|f| f.matches(r)))
            .cloned()
            .collect()
    }

    fn exec_hash_join(
        &mut self,
        probe: &PhysNode,
        build: &PhysNode,
        probe_keys: &[usize],
        build_keys: &[usize],
        kind: JoinKind,
        swapped: bool,
    ) -> Vec<Row> {
        // Build pipeline.
        let build_rows = self.exec(build);
        let build_modeled = self.modeled(build_rows.len());
        let width = build_rows.first().map_or(8, |r| workspace_width(r.len()));
        let ht_bytes = (build_modeled * (self.db.cost.hash_bytes_per_row + width) as f64) as u64;
        let spill = self.spill_bytes(ht_bytes);
        let ht_region = self.fresh_region();
        let mut mem = MemProfile::new();
        mem.random(ht_region, ht_bytes.max(4096), build_modeled as u64);
        // Batch-mode operator buffers (shared hot footprint).
        mem.random(
            self.db.batch_region(),
            self.db.cost.batch_footprint_bytes,
            ((build_modeled as u64) * 2).max(1),
        );
        self.emit_compute(build_modeled * self.db.cost.hash_build_row as f64, mem);
        if spill > 0 {
            // Partitions that overflow the grant are written out before
            // probing can start (grace-join pass 1 ends at a barrier).
            self.tb.new_stage();
            self.emit_spill(spill, true);
        }

        // Probe pipeline.
        self.tb.new_stage();
        let probe_rows = self.exec(probe);
        let probe_modeled = self.modeled(probe_rows.len());
        if spill > 0 {
            // Grace-join style: spilled partitions of the probe side too,
            // then read both back.
            let probe_bytes = (probe_modeled * width as f64 * 0.5) as u64;
            let probe_spill = (probe_bytes as f64 * (spill as f64 / ht_bytes.max(1) as f64)) as u64;
            self.emit_spill(probe_spill, true);
            // Pass 2: spilled build/probe partition pairs come back from
            // tempdb and are re-built and probed only after the in-memory
            // pass finishes — the round trip cannot overlap pass 1, which
            // is what makes grant starvation hurt (Figure 8).
            self.tb.new_stage();
            self.emit_spill(spill + probe_spill, false);
            let spilled_rows = build_modeled * (spill as f64 / ht_bytes.max(1) as f64);
            let mut mem = MemProfile::new();
            mem.random(ht_region, spill.max(4096), spilled_rows as u64);
            self.emit_compute(spilled_rows * self.db.cost.hash_build_row as f64, mem);
            self.spilled += probe_spill;
        }
        let mut mem = MemProfile::new();
        // Per probe: the payload lookup misses over the full table, but the
        // bucket headers / bitmap (Bloom) filter live in a small hot
        // footprint — the cache-sensitive share of join work.
        mem.random(ht_region, ht_bytes.max(4096), (probe_modeled * 0.6) as u64);
        mem.random(
            self.db.batch_region(),
            self.db.cost.batch_footprint_bytes,
            ((probe_modeled as u64) * 3).max(1),
        );
        let mut probe_instr = probe_modeled * self.db.cost.hash_probe_row as f64;
        if self.dop > 1 {
            probe_instr += (probe_modeled + build_modeled) * self.db.cost.exchange_row as f64;
        }
        self.emit_compute(probe_instr, mem);

        // Logical join.
        let mut ht: FxHashMap<Vec<KeyPart>, Vec<usize>> = FxHashMap::default();
        for (i, r) in build_rows.iter().enumerate() {
            ht.entry(key_sig(r, build_keys)).or_default().push(i);
        }
        let build_width = build_rows.first().map_or(0, Vec::len);
        let mut out = Vec::new();
        let mut probe_sig = Vec::new();
        for pr in &probe_rows {
            key_sig_into(pr, probe_keys, &mut probe_sig);
            let matches = ht.get(&probe_sig);
            match kind {
                JoinKind::Inner => {
                    if let Some(ms) = matches {
                        for &bi in ms {
                            // `swapped` means the logical left is the build
                            // side; restore left ++ right column order.
                            let mut row = if swapped {
                                build_rows[bi].clone()
                            } else {
                                pr.clone()
                            };
                            row.extend(if swapped {
                                pr.iter().cloned()
                            } else {
                                build_rows[bi].iter().cloned()
                            });
                            out.push(row);
                        }
                    }
                }
                JoinKind::LeftOuter => match matches {
                    Some(ms) => {
                        for &bi in ms {
                            let mut row = pr.clone();
                            row.extend(build_rows[bi].iter().cloned());
                            out.push(row);
                        }
                    }
                    None => {
                        let mut row = pr.clone();
                        row.extend(std::iter::repeat_with(|| Value::Null).take(build_width));
                        out.push(row);
                    }
                },
                JoinKind::Semi => {
                    if matches.is_some() {
                        out.push(pr.clone());
                    }
                }
                JoinKind::Anti => {
                    if matches.is_none() {
                        out.push(pr.clone());
                    }
                }
            }
        }
        out
    }

    fn exec_nl_join(
        &mut self,
        outer: &PhysNode,
        inner_table: TableId,
        inner_index: &str,
        outer_keys: &[usize],
        kind: JoinKind,
        filter: Option<&Expr>,
    ) -> Vec<Row> {
        let outer_rows = self.exec(outer);
        let t = self.db.table(inner_table);
        let idx = t.index(inner_index);
        let outer_modeled = self.modeled(outer_rows.len());

        let mut mem = MemProfile::new();
        idx.layout.probe_mem(&mut mem, outer_modeled as u64);
        let instr = outer_modeled * idx.layout.levels() as f64 * self.db.cost.btree_level as f64;
        // Random leaf and base-table pages: emitted as sampled random
        // accesses so buffer-pool behaviour reflects the working set.
        let (lstart, lpages) = idx.layout.leaf_scan_run(0.0, 1.0);
        if outer_modeled >= 1.0 {
            self.tb.emit(TraceItem::RandomPages {
                start: lstart,
                span: lpages,
                count: outer_modeled as u64,
            });
            self.tb.emit(TraceItem::RandomPages {
                start: t.layout.start_page(),
                span: t.layout.pages(),
                count: outer_modeled as u64,
            });
        }
        self.emit_compute(instr, mem);

        let mut out = Vec::new();
        let inner_arity = t.heap.schema().len();
        for orow in &outer_rows {
            let key = Key::from_values(outer_keys.iter().map(|&c| orow[c].clone()).collect());
            let mut matched = false;
            for rid in idx.btree.get(&key) {
                let Some(irow) = t.heap.get(rid) else {
                    continue;
                };
                let mut row = orow.clone();
                row.extend(irow.iter().cloned());
                if filter.is_none_or(|f| f.matches(&row)) {
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter => out.push(row),
                        JoinKind::Semi => {
                            out.push(orow.clone());
                            break;
                        }
                        JoinKind::Anti => break,
                    }
                }
            }
            if !matched {
                match kind {
                    JoinKind::Anti => out.push(orow.clone()),
                    JoinKind::LeftOuter => {
                        let mut row = orow.clone();
                        row.extend(std::iter::repeat_with(|| Value::Null).take(inner_arity));
                        out.push(row);
                    }
                    _ => {}
                }
            }
        }
        out
    }

    fn exec_hash_agg(
        &mut self,
        input: &PhysNode,
        group_by: &[usize],
        aggs: &[AggSpec],
    ) -> Vec<Row> {
        let rows = self.exec(input);
        let in_modeled = self.modeled(rows.len());

        let mut groups: FxHashMap<Vec<KeyPart>, (Row, Vec<AggAcc>)> = FxHashMap::default();
        let mut sig = Vec::new();
        for r in &rows {
            // Lookup through a reusable key buffer; a key vector is only
            // materialized for the (rare) first row of each group.
            key_sig_into(r, group_by, &mut sig);
            if !groups.contains_key(&sig) {
                groups.insert(
                    sig.clone(),
                    (
                        group_by.iter().map(|&c| r[c].clone()).collect(),
                        aggs.iter().map(|a| AggAcc::new(a.func)).collect(),
                    ),
                );
            }
            let entry = groups.get_mut(&sig).expect("group just ensured");
            for (acc, spec) in entry.1.iter_mut().zip(aggs) {
                acc.update(&spec.expr.eval(r));
            }
        }
        let groups_modeled = self.modeled(groups.len());
        let width = workspace_width(group_by.len() + aggs.len());
        let ht_bytes = (groups_modeled * (self.db.cost.hash_bytes_per_row + width) as f64) as u64;
        let spill = self.spill_bytes(ht_bytes);
        let region = self.fresh_region();
        let mut mem = MemProfile::new();
        mem.random(region, ht_bytes.max(4096), (in_modeled * 0.6) as u64);
        mem.random(
            self.db.batch_region(),
            self.db.cost.batch_footprint_bytes,
            ((in_modeled as u64) * 3).max(1),
        );
        let agg_nodes: u64 = aggs.iter().map(|a| a.expr.node_count()).sum();
        self.emit_compute(
            in_modeled * (self.db.cost.agg_row + agg_nodes * self.db.cost.expr_node) as f64,
            mem,
        );
        if spill > 0 {
            // Overflowed groups round-trip through tempdb and are merged
            // back in a second pass after the in-memory aggregation.
            self.emit_spill(spill, true);
            self.tb.new_stage();
            self.emit_spill(spill, false);
            let spilled_groups = groups_modeled * (spill as f64 / ht_bytes.max(1) as f64);
            self.emit_compute(
                spilled_groups * self.db.cost.agg_row as f64,
                MemProfile::new(),
            );
        }

        groups
            .into_values()
            .map(|(mut key_vals, accs)| {
                key_vals.extend(accs.into_iter().map(AggAcc::finish));
                key_vals
            })
            .collect()
    }

    fn exec_stream_agg(&mut self, input: &PhysNode, aggs: &[AggSpec]) -> Vec<Row> {
        let rows = self.exec(input);
        let in_modeled = self.modeled(rows.len());
        let agg_nodes: u64 = aggs.iter().map(|a| a.expr.node_count()).sum();
        self.emit_compute(
            in_modeled
                * ((self.db.cost.agg_row as f64 * 0.4)
                    + (agg_nodes * self.db.cost.expr_node) as f64),
            MemProfile::new(),
        );
        let mut accs: Vec<AggAcc> = aggs.iter().map(|a| AggAcc::new(a.func)).collect();
        for r in &rows {
            for (acc, spec) in accs.iter_mut().zip(aggs) {
                acc.update(&spec.expr.eval(r));
            }
        }
        vec![accs.into_iter().map(AggAcc::finish).collect()]
    }

    fn exec_sort(&mut self, input: &PhysNode, keys: &[(usize, bool)]) -> Vec<Row> {
        let mut rows = self.exec(input);
        let modeled = self.modeled(rows.len()).max(2.0);
        let width = rows.first().map_or(8, |r| workspace_width(r.len()));
        let sort_bytes = (modeled * (self.db.cost.sort_bytes_per_row + width) as f64) as u64;
        let spill = self.spill_bytes(sort_bytes);
        let region = self.fresh_region();
        let mut mem = MemProfile::new();
        mem.random(region, sort_bytes.max(4096), modeled as u64);
        self.emit_compute(
            modeled * modeled.log2() * self.db.cost.sort_row_log as f64,
            mem,
        );
        if spill > 0 {
            // External merge sort: spilled runs are written out, then read
            // back and merged in a pass that follows run generation.
            self.emit_spill(spill, true);
            self.tb.new_stage();
            self.emit_spill(spill, false);
            let spilled_rows = modeled * (spill as f64 / sort_bytes.max(1) as f64);
            self.emit_compute(
                spilled_rows * self.db.cost.sort_row_log as f64,
                MemProfile::new(),
            );
        }
        rows.sort_by(|a, b| {
            for &(c, desc) in keys {
                let ord = cmp_values(&a[c], &b[c]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        rows
    }
}

pub(crate) fn scale_profile(mem: &MemProfile, factor: f64) -> MemProfile {
    use dbsens_hwsim::mem::AccessPattern;
    let mut out = MemProfile::new();
    for p in mem.patterns() {
        match *p {
            AccessPattern::Stream { region, bytes } => {
                out.stream(region, (bytes as f64 * factor) as u64);
            }
            AccessPattern::Random {
                region,
                footprint,
                count,
            } => {
                out.random(region, footprint, ((count as f64 * factor) as u64).max(1));
            }
        }
    }
    out
}

pub(crate) fn collect_cols(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::Col(c) => out.push(*c),
        Expr::Lit(_) => {}
        Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mul(a, b)
        | Expr::Div(a, b)
        | Expr::Cmp(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b) => {
            collect_cols(a, out);
            collect_cols(b, out);
        }
        Expr::Not(a)
        | Expr::StartsWith(a, _)
        | Expr::Contains(a, _)
        | Expr::Between(a, _, _)
        | Expr::IsNull(a) => collect_cols(a, out),
        Expr::IntDiv(a, b) => {
            collect_cols(a, out);
            collect_cols(b, out);
        }
        Expr::InList(a, _) => collect_cols(a, out),
    }
}

/// Aggregate accumulator.
#[derive(Debug)]
pub(crate) enum AggAcc {
    Sum(f64, bool),
    Avg(f64, u64),
    Min(Option<Value>),
    Max(Option<Value>),
    Count(u64),
}

impl AggAcc {
    pub(crate) fn new(f: AggFunc) -> Self {
        match f {
            AggFunc::Sum => AggAcc::Sum(0.0, false),
            AggFunc::Avg => AggAcc::Avg(0.0, 0),
            AggFunc::Min => AggAcc::Min(None),
            AggFunc::Max => AggAcc::Max(None),
            AggFunc::Count => AggAcc::Count(0),
        }
    }

    pub(crate) fn update(&mut self, v: &Value) {
        match self {
            AggAcc::Sum(s, any) => {
                if !v.is_null() {
                    *s += v.as_f64();
                    *any = true;
                }
            }
            AggAcc::Avg(s, n) => {
                if !v.is_null() {
                    *s += v.as_f64();
                    *n += 1;
                }
            }
            AggAcc::Min(m) => {
                if !v.is_null()
                    && m.as_ref()
                        .is_none_or(|cur| cmp_values(v, cur) == Ordering::Less)
                {
                    *m = Some(v.clone());
                }
            }
            AggAcc::Max(m) => {
                if !v.is_null()
                    && m.as_ref()
                        .is_none_or(|cur| cmp_values(v, cur) == Ordering::Greater)
                {
                    *m = Some(v.clone());
                }
            }
            AggAcc::Count(n) => *n += 1,
        }
    }

    /// Updates from entry `i` of a columnar vector without materializing an
    /// owned [`Value`] — typed dense columns feed the accumulator directly,
    /// so the per-row aggregate path does not clone strings it will drop.
    pub(crate) fn update_col(&mut self, col: &crate::batch::ColumnVector, i: usize) {
        use crate::batch::ColumnVector;
        match col {
            ColumnVector::Int(v) => self.update(&Value::Int(v[i])),
            ColumnVector::Float(v) => self.update(&Value::Float(v[i])),
            ColumnVector::Mixed(v) => self.update(&v[i]),
            ColumnVector::Str(v) => {
                let s = v[i].as_str();
                match self {
                    AggAcc::Count(n) => *n += 1,
                    AggAcc::Min(m) => {
                        // `cmp_values` sorts strings after numerics, so a
                        // string never undercuts a numeric minimum.
                        let replace = match m.as_ref() {
                            None => true,
                            Some(Value::Str(cur)) => s < cur.as_str(),
                            Some(_) => false,
                        };
                        if replace {
                            *m = Some(Value::Str(s.to_owned()));
                        }
                    }
                    AggAcc::Max(m) => {
                        let replace = match m.as_ref() {
                            None => true,
                            Some(Value::Str(cur)) => s > cur.as_str(),
                            Some(_) => true,
                        };
                        if replace {
                            *m = Some(Value::Str(s.to_owned()));
                        }
                    }
                    AggAcc::Sum(..) | AggAcc::Avg(..) => {
                        // Matches `Value::as_f64`'s contract on a string.
                        panic!("expected numeric, got Str({s:?})")
                    }
                }
            }
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggAcc::Sum(s, any) => {
                if any {
                    Value::Float(s)
                } else {
                    Value::Null
                }
            }
            AggAcc::Avg(s, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(s / n as f64)
                }
            }
            AggAcc::Min(m) | AggAcc::Max(m) => m.unwrap_or(Value::Null),
            AggAcc::Count(n) => Value::Int(n as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::optimizer::{optimize, PlanContext};
    use crate::plan::{avg, count, sum, Logical};
    use dbsens_storage::schema::{ColType, Schema};

    fn setup() -> (Database, TableId, TableId) {
        let mut db = Database::new(50.0, 1 << 30);
        let fact_schema = Schema::new(&[
            ("id", ColType::Int),
            ("fk", ColType::Int),
            ("qty", ColType::Int),
            ("price", ColType::Float),
        ]);
        let fact_rows: Vec<Row> = (0..400)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 20),
                    Value::Int(i % 7),
                    Value::Float(i as f64 * 1.5),
                ]
            })
            .collect();
        let fact = db.create_table("fact", fact_schema, fact_rows);
        let dim_schema = Schema::new(&[("id", ColType::Int), ("name", ColType::Str(8))]);
        let dim_rows: Vec<Row> = (0..20)
            .map(|i| vec![Value::Int(i), Value::Str(format!("n{i}"))])
            .collect();
        let dim = db.create_table("dim", dim_schema, dim_rows);
        db.create_index(dim, "pk", &[0]);
        db.create_index(fact, "pk", &[0]);
        (db, fact, dim)
    }

    fn ctx() -> PlanContext {
        PlanContext {
            maxdop: 4,
            grant_cap_bytes: 1 << 30,
            cost_threshold: 1e18, // force serial unless a test overrides
            bufferpool_bytes: 1 << 30,
            db_bytes: 1 << 30,
        }
    }

    fn run(db: &Database, q: &Logical, ctx: &PlanContext) -> QueryExecution {
        let plan = optimize(db, q, ctx);
        execute(db, &plan)
    }

    #[test]
    fn scan_filter_project_results() {
        let (db, fact, _) = setup();
        let q = Logical::scan(
            fact,
            Some(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(10i64))),
            10.0,
        )
        .project(vec![Expr::Col(0), Expr::Col(2)]);
        let out = run(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 10);
        assert_eq!(out.rows[0].len(), 2);
        assert!(out.stages[0].total_items() > 0);
    }

    #[test]
    fn hash_join_inner_matches_expected_count() {
        let (db, fact, dim) = setup();
        let q = Logical::scan(fact, None, 400.0).join(
            Logical::scan(dim, None, 20.0),
            vec![1],
            vec![0],
            JoinKind::Inner,
            400.0,
        );
        let out = run(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 400); // every fact row matches one dim
        assert_eq!(out.rows[0].len(), 6);
        // Build + probe pipelines.
        assert!(out.stages.len() >= 2);
    }

    #[test]
    fn semi_and_anti_join() {
        let (db, fact, dim) = setup();
        // dim ids 0..20; fact fk 0..20 — restrict dim to 0..5.
        let dim_small = Logical::scan(
            dim,
            Some(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(5i64))),
            5.0,
        );
        let semi = Logical::scan(fact, None, 400.0).join(
            dim_small.clone(),
            vec![1],
            vec![0],
            JoinKind::Semi,
            100.0,
        );
        let out = run(&db, &semi, &ctx());
        assert_eq!(out.rows.len(), 100);
        assert_eq!(out.rows[0].len(), 4); // left columns only
        let anti = Logical::scan(fact, None, 400.0).join(
            dim_small,
            vec![1],
            vec![0],
            JoinKind::Anti,
            300.0,
        );
        let out = run(&db, &anti, &ctx());
        assert_eq!(out.rows.len(), 300);
    }

    #[test]
    fn aggregate_values_are_correct() {
        let (db, fact, _) = setup();
        // Group by qty (0..7), count and sum id.
        let q = Logical::scan(fact, None, 400.0).agg(vec![2], vec![count(), sum(0)], 7.0);
        let out = run(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 7);
        let total: i64 = out.rows.iter().map(|r| r[1].as_int()).sum();
        assert_eq!(total, 400);
        // Scalar aggregate.
        let q = Logical::scan(fact, None, 400.0).agg(vec![], vec![avg(2), count()], 1.0);
        let out = run(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][1].as_int(), 400);
    }

    #[test]
    fn sort_and_top() {
        let (db, fact, _) = setup();
        let q = Logical::scan(fact, None, 400.0)
            .sort(vec![(3, true)])
            .top(5);
        let out = run(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 5);
        assert_eq!(out.rows[0][0].as_int(), 399); // highest price first
        assert!(out
            .rows
            .windows(2)
            .all(|w| w[0][3].as_f64() >= w[1][3].as_f64()));
    }

    #[test]
    fn nl_join_produces_same_rows_as_hash() {
        let (db, fact, dim) = setup();
        let q = Logical::scan(fact, None, 400.0)
            .filter(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(40i64)), 0.1)
            .join(
                Logical::scan(dim, None, 20.0),
                vec![1],
                vec![0],
                JoinKind::Inner,
                40.0,
            );
        // Force NL by making the probe side huge relative to hash costs:
        // instead, lower the plan twice and compare row sets whichever
        // algorithms were chosen.
        let out = run(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 40);
        assert_eq!(out.rows[0].len(), 6);
    }

    #[test]
    fn parallel_plan_splits_trace_across_workers() {
        let (db, fact, _) = setup();
        let q = Logical::scan(fact, None, 400.0);
        let mut c = ctx();
        c.cost_threshold = 0.0; // force parallel
        let out = run(&db, &q, &c);
        assert_eq!(out.dop, 4);
        let busy_workers = out.stages[0]
            .workers
            .iter()
            .filter(|w| !w.items.is_empty())
            .count();
        assert!(busy_workers >= 2, "trace not distributed: {busy_workers}");
    }

    #[test]
    fn insufficient_grant_causes_spill() {
        let (db, fact, dim) = setup();
        let q = Logical::scan(fact, None, 400.0).join(
            Logical::scan(dim, None, 20.0),
            vec![1],
            vec![1], // no index on col 1: hash join
            JoinKind::Inner,
            400.0,
        );
        let mut c = ctx();
        c.grant_cap_bytes = 1; // starve the query
        let out = run(&db, &q, &c);
        assert!(out.spilled_bytes > 0);
        let has_spill = out
            .stages
            .iter()
            .flat_map(|s| &s.workers)
            .flat_map(|w| &w.items)
            .any(|i| matches!(i, TraceItem::SpillWrite { .. }));
        assert!(has_spill);
    }

    #[test]
    fn columnstore_scan_execution() {
        let (mut db, fact, _) = setup();
        db.create_columnstore(fact, 64);
        let q = Logical::scan_project(
            fact,
            Some(Expr::cmp(CmpOp::Ge, Expr::Col(0), Expr::lit(300i64))),
            vec![0, 3],
            100.0,
        );
        let out = run(&db, &q, &ctx());
        assert_eq!(out.rows.len(), 100);
        assert_eq!(out.rows[0].len(), 2);
    }
}
