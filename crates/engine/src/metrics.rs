//! Run metrics shared by all workload tasks.

use dbsens_hwsim::fx::FxHashMap;
use dbsens_hwsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One completed query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Query label (e.g. "Q20").
    pub name: String,
    /// Start time.
    pub started: SimTime,
    /// Wall-clock (virtual) duration.
    pub duration: SimDuration,
}

/// Shared metrics collected during a run.
///
/// # Examples
///
/// ```
/// use dbsens_engine::metrics::RunMetrics;
/// use dbsens_hwsim::time::{SimDuration, SimTime};
///
/// let mut m = RunMetrics::new();
/// m.record_txn("NewOrder", SimDuration::from_micros(300));
/// m.record_query("Q1", SimTime::ZERO, SimDuration::from_secs(2));
/// assert_eq!(m.txns_committed(), 1);
/// assert_eq!(m.queries().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct RunMetrics {
    txns: u64,
    txn_latencies_ns: Vec<u64>,
    txns_by_type: FxHashMap<String, u64>,
    queries: Vec<QueryRecord>,
    /// log2 of the current latency sampling stride: only every
    /// `1 << latency_decimation`-th transaction is retained, for old
    /// *and* new samples alike, so percentiles stay unbiased after the
    /// cap trips.
    latency_decimation: u32,
    /// Transactions seen so far (retained or not), for stride alignment.
    latency_seen: u64,
    retries: u64,
    gave_up: u64,
    deadline_misses: u64,
    /// First-seen result-row digest per query name, for cross-executor
    /// result verification (push vs. volcano must agree byte for byte).
    query_results: BTreeMap<String, u64>,
}

/// Latency sample cap; beyond it, samples are decimated (keep every other
/// retained sample and double the sampling stride) to bound memory in
/// hour-long runs.
const LATENCY_CAP: usize = 1 << 20;

impl RunMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        RunMetrics::default()
    }

    /// Records a committed transaction.
    ///
    /// Latency samples are kept at a uniform stride: when the buffer
    /// reaches `LATENCY_CAP`, every other retained sample is dropped
    /// and the stride doubles — applying to incoming samples too, so the
    /// retained set stays a uniform subsample of the whole run rather
    /// than over-weighting recent transactions.
    pub fn record_txn(&mut self, txn_type: &str, latency: SimDuration) {
        self.txns += 1;
        // `entry()` would allocate a String per commit even for the common
        // already-present key; probe with the borrowed &str first.
        match self.txns_by_type.get_mut(txn_type) {
            Some(n) => *n += 1,
            None => {
                self.txns_by_type.insert(txn_type.to_owned(), 1);
            }
        }
        let stride = 1u64 << self.latency_decimation;
        if self.latency_seen.is_multiple_of(stride) {
            self.txn_latencies_ns.push(latency.as_nanos());
            if self.txn_latencies_ns.len() >= LATENCY_CAP {
                // Retained samples sit at multiples of `stride`; keeping
                // the even-indexed ones leaves exact multiples of the
                // doubled stride, so incoming samples stay aligned.
                let mut keep = Vec::with_capacity(LATENCY_CAP / 2 + 1);
                for (i, v) in self.txn_latencies_ns.drain(..).enumerate() {
                    if i % 2 == 0 {
                        keep.push(v);
                    }
                }
                self.txn_latencies_ns = keep;
                self.latency_decimation += 1;
            }
        }
        self.latency_seen += 1;
    }

    /// Records a completed query.
    pub fn record_query(&mut self, name: &str, started: SimTime, duration: SimDuration) {
        self.queries.push(QueryRecord {
            name: name.to_owned(),
            started,
            duration,
        });
    }

    /// Records one recovery retry (an I/O reissued after a transient error,
    /// or a transaction aborted and re-run).
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Records a unit of work abandoned after exhausting its retry budget.
    pub fn record_gave_up(&mut self) {
        self.gave_up += 1;
    }

    /// Records a query cancelled for exceeding its deadline.
    pub fn record_deadline_miss(&mut self) {
        self.deadline_misses += 1;
    }

    /// Records the result-row digest of a query the first time it runs
    /// (repeats of the same query on a deterministic database produce the
    /// same rows, so first-seen is representative).
    pub fn record_query_result(&mut self, name: &str, digest: u64) {
        if !self.query_results.contains_key(name) {
            self.query_results.insert(name.to_owned(), digest);
        }
    }

    /// Per-query result digests recorded via
    /// [`record_query_result`](RunMetrics::record_query_result), keyed by
    /// query name.
    pub fn query_result_digests(&self) -> &BTreeMap<String, u64> {
        &self.query_results
    }

    /// A stable combined digest over all recorded query results (FNV-1a
    /// over name/digest pairs in name order), or an empty string when no
    /// results were recorded. Two runs agree iff every query produced
    /// byte-identical rows.
    pub fn result_digest(&self) -> String {
        if self.query_results.is_empty() {
            return String::new();
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (name, digest) in &self.query_results {
            eat(name.as_bytes());
            eat(&digest.to_le_bytes());
        }
        format!("{h:016x}")
    }

    /// Recovery retries performed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Work items abandoned after exhausting retries.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Queries cancelled at their deadline.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// Returns `true` if the run needed any graceful-degradation response
    /// (retries, abandoned work, or deadline cancellations).
    pub fn degraded(&self) -> bool {
        self.retries > 0 || self.gave_up > 0 || self.deadline_misses > 0
    }

    /// Total committed transactions.
    pub fn txns_committed(&self) -> u64 {
        self.txns
    }

    /// Commits per transaction type.
    pub fn txns_by_type(&self) -> &FxHashMap<String, u64> {
        &self.txns_by_type
    }

    /// Completed queries.
    pub fn queries(&self) -> &[QueryRecord] {
        &self.queries
    }

    /// Transactions per second over a run of `elapsed`.
    pub fn tps(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.txns as f64 / secs
        }
    }

    /// Queries per second over a run of `elapsed`.
    pub fn qps(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.queries.len() as f64 / secs
        }
    }

    /// Queries per hour over a run of `elapsed`.
    pub fn qph(&self, elapsed: SimDuration) -> f64 {
        self.qps(elapsed) * 3600.0
    }

    /// The `p`-th percentile transaction latency (e.g. `0.99`).
    pub fn txn_latency_percentile(&self, p: f64) -> Option<SimDuration> {
        if self.txn_latencies_ns.is_empty() {
            return None;
        }
        let mut sorted = self.txn_latencies_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
        Some(SimDuration::from_nanos(sorted[idx]))
    }

    /// Mean duration of queries whose name matches `name`.
    pub fn mean_query_duration(&self, name: &str) -> Option<SimDuration> {
        let durations: Vec<u64> = self
            .queries
            .iter()
            .filter(|q| q.name == name)
            .map(|q| q.duration.as_nanos())
            .collect();
        if durations.is_empty() {
            return None;
        }
        Some(SimDuration::from_nanos(
            durations.iter().sum::<u64>() / durations.len() as u64,
        ))
    }
}

/// Windowed latency aggregator for online (service-mode) monitoring.
///
/// Service mode needs per-control-window tail latencies — the signal the
/// admission backpressure loop and the online sensitivity estimator both
/// read — without keeping a run's full latency history per window.
/// Latencies accumulate in milliseconds; [`LatencyWindow::drain`] closes
/// the window, returning its summary and recycling the buffer.
///
/// # Examples
///
/// ```
/// use dbsens_engine::metrics::LatencyWindow;
///
/// let mut w = LatencyWindow::new();
/// for ms in [1.0, 2.0, 50.0] {
///     w.record(ms);
/// }
/// assert_eq!(w.len(), 3);
/// let summary = w.drain();
/// assert_eq!(summary.count, 3);
/// assert_eq!(summary.p99_ms, 50.0);
/// assert!(w.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct LatencyWindow {
    lat_ms: Vec<f64>,
}

/// Closed-window summary produced by [`LatencyWindow::drain`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// Latencies recorded in the window.
    pub count: u64,
    /// 99th-percentile latency (0 for an empty window).
    pub p99_ms: f64,
    /// Mean latency (0 for an empty window).
    pub mean_ms: f64,
}

impl LatencyWindow {
    /// An empty window.
    pub fn new() -> Self {
        LatencyWindow::default()
    }

    /// Records one completion latency in milliseconds.
    pub fn record(&mut self, ms: f64) {
        self.lat_ms.push(ms);
    }

    /// Latencies recorded in the open window.
    pub fn len(&self) -> usize {
        self.lat_ms.len()
    }

    /// Whether the open window has no samples.
    pub fn is_empty(&self) -> bool {
        self.lat_ms.is_empty()
    }

    /// The 99th-percentile latency of the open window without closing it
    /// (`None` when empty).
    pub fn p99_ms(&self) -> Option<f64> {
        if self.lat_ms.is_empty() {
            return None;
        }
        let mut sorted = self.lat_ms.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let idx = ((sorted.len() as f64 - 1.0) * 0.99).round() as usize;
        Some(sorted[idx])
    }

    /// Appends every sample of `other`'s open window to this one
    /// (merging per-tenant windows into an aggregate).
    pub fn extend_from(&mut self, other: &LatencyWindow) {
        self.lat_ms.extend_from_slice(&other.lat_ms);
    }

    /// Closes the window: returns its summary and clears the buffer (the
    /// allocation is kept for the next window).
    pub fn drain(&mut self) -> WindowSummary {
        let count = self.lat_ms.len() as u64;
        let summary = WindowSummary {
            count,
            p99_ms: self.p99_ms().unwrap_or(0.0),
            mean_ms: if count == 0 {
                0.0
            } else {
                self.lat_ms.iter().sum::<f64>() / count as f64
            },
        };
        self.lat_ms.clear();
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_percentiles() {
        let mut m = RunMetrics::new();
        for i in 0..100 {
            m.record_txn("T", SimDuration::from_micros(i + 1));
        }
        assert_eq!(m.txns_committed(), 100);
        assert_eq!(m.tps(SimDuration::from_secs(10)), 10.0);
        let p99 = m.txn_latency_percentile(0.99).unwrap();
        assert!(p99 >= SimDuration::from_micros(98), "p99={p99}");
        assert_eq!(
            m.txn_latency_percentile(0.0).unwrap(),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn query_stats() {
        let mut m = RunMetrics::new();
        m.record_query("Q1", SimTime::ZERO, SimDuration::from_secs(2));
        m.record_query("Q1", SimTime::ZERO, SimDuration::from_secs(4));
        m.record_query("Q2", SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(
            m.mean_query_duration("Q1").unwrap(),
            SimDuration::from_secs(3)
        );
        assert!(m.mean_query_duration("Q9").is_none());
        assert!((m.qph(SimDuration::from_secs(3600)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn latency_buffer_decimates_not_grows() {
        let mut m = RunMetrics::new();
        for _ in 0..(LATENCY_CAP + 10) {
            m.record_txn("T", SimDuration::from_micros(5));
        }
        assert!(m.txn_latencies_ns.len() < LATENCY_CAP);
        assert_eq!(m.txns_committed() as usize, LATENCY_CAP + 10);
    }

    #[test]
    fn decimation_keeps_percentiles_unbiased() {
        // A monotonic latency ramp: sample i has latency i ns, so over n
        // transactions the true p-th percentile is p*n and the median is
        // n/2. Uniform-stride decimation must preserve both; the old
        // keep-every-other-old-sample scheme over-weighted recent (large)
        // samples, inflating mid percentiles after the cap tripped.
        let mut m = RunMetrics::new();
        let before_cap = (LATENCY_CAP - 1) as u64;
        for i in 0..before_cap {
            m.record_txn("T", SimDuration::from_nanos(i));
        }
        let p99_before =
            m.txn_latency_percentile(0.99).unwrap().as_nanos() as f64 / before_cap as f64;

        // Push through several decimation rounds.
        let total = 4 * LATENCY_CAP as u64;
        for i in before_cap..total {
            m.record_txn("T", SimDuration::from_nanos(i));
        }
        assert!(m.txn_latencies_ns.len() < LATENCY_CAP);
        let p99_after = m.txn_latency_percentile(0.99).unwrap().as_nanos() as f64 / total as f64;
        let p50_after = m.txn_latency_percentile(0.50).unwrap().as_nanos() as f64 / total as f64;

        // Normalized p99 is the same before and after the cap trips...
        assert!(
            (p99_before - p99_after).abs() < 0.005,
            "p99/n drifted across the cap: before={p99_before:.4} after={p99_after:.4}"
        );
        // ...and the retained set stays a uniform subsample of the run.
        assert!(
            (p99_after - 0.99).abs() < 0.005,
            "p99/n = {p99_after:.4}, want ~0.99"
        );
        assert!(
            (p50_after - 0.50).abs() < 0.01,
            "p50/n = {p50_after:.4}, want ~0.50 (recency bias?)"
        );
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = RunMetrics::new();
        assert_eq!(m.tps(SimDuration::ZERO), 0.0);
        assert!(m.txn_latency_percentile(0.5).is_none());
    }

    #[test]
    fn degradation_counters_accumulate() {
        let mut m = RunMetrics::new();
        assert!(!m.degraded());
        m.record_retry();
        m.record_retry();
        m.record_gave_up();
        m.record_deadline_miss();
        assert_eq!(m.retries(), 2);
        assert_eq!(m.gave_up(), 1);
        assert_eq!(m.deadline_misses(), 1);
        assert!(m.degraded());
    }

    #[test]
    fn latency_window_summarizes_and_recycles() {
        let mut w = LatencyWindow::new();
        assert!(w.p99_ms().is_none());
        let empty = w.drain();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99_ms, 0.0);

        for i in 1..=100 {
            w.record(i as f64);
        }
        assert_eq!(w.p99_ms(), Some(99.0));
        let s = w.drain();
        assert_eq!(s.count, 100);
        assert_eq!(s.p99_ms, 99.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-12);
        assert!(w.is_empty(), "drain must start a fresh window");

        // Unsorted input and duplicate values don't skew the tail.
        for v in [5.0, 1.0, 5.0, 1.0, 5.0] {
            w.record(v);
        }
        assert_eq!(w.drain().p99_ms, 5.0);
    }
}
