#!/usr/bin/env python3
"""Splices `repro all` output into EXPERIMENTS.md's placeholder sections.

Usage: python3 scripts/fill_experiments.py /tmp/repro_all.txt
"""
import re
import sys


def section(text, start_marker, end_markers):
    """Extract from start_marker up to the first of end_markers."""
    i = text.find(start_marker)
    if i < 0:
        return f"(missing: {start_marker})"
    j = len(text)
    for m in end_markers:
        k = text.find(m, i + len(start_marker))
        if 0 <= k < j:
            j = k
    return text[i:j].rstrip() + "\n"


def main():
    repro = open(sys.argv[1]).read()
    exp_path = "EXPERIMENTS.md"
    exp = open(exp_path).read()

    all_heads = [
        "# Table 2", "# Figure 2", "# Table 3", "# Table 4", "# Figure 3",
        "# Figure 4", "# Figure 5", "# Figure 6", "# Figure 7", "# Figure 8",
        "# Ablation", "# §6",
    ]

    def grab(head):
        others = [h for h in all_heads if h != head]
        return section(repro, head, others)

    fills = {
        "<!-- TABLE2 -->": grab("# Table 2"),
        "<!-- TABLE3 -->": grab("# Table 3"),
        "<!-- TABLE4 -->": grab("# Table 4"),
        "<!-- FIG5 -->": grab("# Figure 5"),
        "<!-- FIG7 -->": grab("# Figure 7"),
        "<!-- FIG8 -->": grab("# Figure 8"),
        "<!-- WRITE_LIMITS -->": grab("# §6"),
        "<!-- ABLATION -->": grab("# Ablation"),
    }

    # Figure 2: keep only the hyper-threading table plus a pointer (the
    # full series are long); Figures 3/4 keep the CDF tables.
    ht = section(repro, "## Hyper-threading", ["# "])
    fills["<!-- FIG2 -->"] = (
        ht + "\nFull per-configuration series: `results/fig2.json` "
        "(or rerun `repro fig2`).\n"
    )
    fig3 = section(repro, "# Figure 3", ["# Figure 4"])
    fig4 = section(repro, "# Figure 4", ["# Table", "# Figure 5", "# §6", "# Ablation"])
    fills["<!-- FIG34 -->"] = fig3 + "\n" + fig4

    # Figure 6: keep both rendered panels (they include the
    # insensitive-query comparison lines).
    fig6_parts = re.findall(r"# Figure 6:.*?(?=\n# |\Z)", repro, re.S)
    fills["<!-- FIG6 -->"] = "\n\n".join(p.rstrip() for p in fig6_parts) + "\n"

    for marker, content in fills.items():
        block = "```text\n" + content.rstrip() + "\n```"
        exp = exp.replace(marker, block)

    open(exp_path, "w").write(exp)
    print("EXPERIMENTS.md filled")


if __name__ == "__main__":
    main()
