//! Cache sizing study: how much LLC does a workload actually need?
//!
//! Reproduces the paper's Table 4 methodology for a workload of your
//! choice: sweep CAT allocations, find the knee, and report the smallest
//! allocation reaching 90%/95% of full performance.
//!
//! ```text
//! cargo run --release -p dbsens-core --example cache_sizing [tpce|asdb|htap|tpch] [sf]
//! ```

use dbsens_core::analysis::{knee, sufficient_allocation, CurvePoint};
use dbsens_core::knobs::ResourceKnobs;
use dbsens_core::progress::StderrReporter;
use dbsens_core::runner::Runner;
use dbsens_workloads::driver::WorkloadSpec;
use dbsens_workloads::scale::ScaleCfg;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = args.first().map(String::as_str).unwrap_or("tpce");
    let sf: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000.0);
    let spec = match kind {
        "tpch" => WorkloadSpec::TpchPower { sf },
        other => WorkloadSpec::paper_spec(other, sf),
    };
    let metric = spec.primary_metric();

    let knobs = ResourceKnobs::paper_full().with_run_secs(10);
    let scale = ScaleCfg::test();

    println!(
        "sweeping LLC allocations for {} (this builds the database once per point)...",
        spec.name()
    );
    let runner = Runner::new()
        .threads(8)
        .progress(Arc::new(StderrReporter::new("sizing")));
    let results = runner.llc_sweep(&spec, &knobs, &scale).ok_points();

    let curve: Vec<CurvePoint> = results
        .iter()
        .map(|(mb, r)| CurvePoint {
            x: *mb as f64,
            y: r.metric(metric),
        })
        .collect();
    println!("\n  LLC MB   perf       MPKI");
    for (mb, r) in &results {
        println!("  {:>6} {:>8.1} {:>8.2}", mb, r.metric(metric), r.mpki);
    }

    println!();
    if let Some(k) = knee(&curve, 0.3) {
        println!("knee of the performance curve : ~{k:.0} MB");
    }
    match (
        sufficient_allocation(&curve, 0.90),
        sufficient_allocation(&curve, 0.95),
    ) {
        (Some(a), Some(b)) => {
            println!("sufficient for >=90% of full  : {a:.0} MB");
            println!("sufficient for >=95% of full  : {b:.0} MB");
            println!(
                "\nOn a 40 MB machine, {:.0} MB of LLC could serve other tenants \n\
                 with <10% impact on this workload (paper §10, research Q5).",
                40.0 - a
            );
        }
        _ => println!("curve too flat to size"),
    }
}
