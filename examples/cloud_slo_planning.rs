//! Cloud SLO planning: picking an I/O bandwidth allocation for a
//! performance target.
//!
//! Reproduces the paper's Figure 5 insight: the QPS response to SSD read
//! bandwidth is non-linear, so a linear model over-allocates (and
//! over-prices) the bandwidth needed for a target QPS.
//!
//! ```text
//! cargo run --release -p dbsens-core --example cloud_slo_planning
//! ```

use dbsens_core::analysis::{linear_model_gap, CurvePoint};
use dbsens_core::knobs::ResourceKnobs;
use dbsens_core::progress::StderrReporter;
use dbsens_core::runner::Runner;
use dbsens_workloads::driver::WorkloadSpec;
use dbsens_workloads::scale::ScaleCfg;
use std::sync::Arc;

fn main() {
    // An analytical tenant on data much larger than memory (paper: TPC-H
    // SF=300), scaled down for the example.
    let spec = WorkloadSpec::TpchPower { sf: 30.0 };
    let knobs = ResourceKnobs::paper_full().with_run_secs(600);
    let scale = ScaleCfg::test();

    let limits = [100.0, 200.0, 400.0, 800.0, 1600.0, 2500.0];
    println!("sweeping SSD read-bandwidth limits for {}...", spec.name());
    let runner = Runner::new()
        .threads(6)
        .progress(Arc::new(StderrReporter::new("slo")));
    let results = runner
        .read_limit_sweep(&spec, &limits, &knobs, &scale)
        .ok_points();

    println!("\n  limit MB/s      QPS");
    let curve: Vec<CurvePoint> = results
        .iter()
        .map(|(l, r)| CurvePoint { x: *l, y: r.qps })
        .collect();
    for (l, r) in &results {
        println!("  {:>10.0} {:>8.4}", l, r.qps);
    }

    let peak = curve.iter().map(|p| p.y).fold(0.0, f64::max);
    for target_frac in [0.6, 0.8] {
        if let Some((linear, actual, over)) = linear_model_gap(&curve, peak * target_frac) {
            println!(
                "\ntarget = {:.0}% of peak QPS:\n  linear model buys {linear:>6.0} MB/s\n  \
                 the workload needs {actual:>5.0} MB/s\n  over-allocation  {:>6.0}%  \
                 (the paper reports ~20% at its operating point)",
                target_frac * 100.0,
                over * 100.0
            );
        }
    }
}
