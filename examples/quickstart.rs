//! Quickstart: measure one workload's sensitivity to losing half its
//! cores.
//!
//! ```text
//! cargo run --release -p dbsens-core --example quickstart
//! ```

use dbsens_core::experiment::Experiment;
use dbsens_core::knobs::ResourceKnobs;
use dbsens_workloads::driver::WorkloadSpec;
use dbsens_workloads::scale::ScaleCfg;

fn main() {
    // A TPC-E-style brokerage workload, as in the paper's setup (§3),
    // scaled down for a quick demo.
    let workload = WorkloadSpec::TpcE {
        sf: 1000.0,
        users: 50,
    };
    let scale = ScaleCfg::test();

    let knobs = ResourceKnobs::paper_full().with_run_secs(10);

    println!(
        "building and running {} at full allocation...",
        workload.name()
    );
    let full = Experiment {
        workload: workload.clone(),
        knobs: knobs.clone(),
        scale: scale.clone(),
    }
    .run();

    println!("again with 16 of 32 logical cores...");
    let half = Experiment {
        workload: workload.clone(),
        knobs: knobs.clone().with_cores(16),
        scale: scale.clone(),
    }
    .run();

    println!("with half the LLC (20 of 40 MB)...");
    let half_cache = Experiment {
        workload: workload.clone(),
        knobs: knobs.clone().with_llc_mb(20),
        scale: scale.clone(),
    }
    .run();

    println!("and starved to 4 MB of LLC...");
    let small_cache = Experiment {
        workload,
        knobs: knobs.with_llc_mb(4),
        scale,
    }
    .run();

    println!();
    println!(
        "full allocation  : {:>8.0} TPS (p99 {:.2} ms, MPKI {:.2})",
        full.tps,
        full.p99_txn_ms.unwrap_or(0.0),
        full.mpki
    );
    println!(
        "16 cores (half)  : {:>8.0} TPS ({:.0}% of full)",
        half.tps,
        100.0 * half.tps / full.tps
    );
    println!(
        "20 MB LLC (half) : {:>8.0} TPS ({:.0}% of full, MPKI {:.2})",
        half_cache.tps,
        100.0 * half_cache.tps / full.tps,
        half_cache.mpki
    );
    println!(
        "4 MB LLC         : {:>8.0} TPS ({:.0}% of full, MPKI {:.2})",
        small_cache.tps,
        100.0 * small_cache.tps / full.tps,
        small_cache.mpki
    );
    println!();
    println!(
        "Reading the result (the paper's central observation): beyond a\n\
         critical cache size, cache capacity barely matters — halving the\n\
         LLC keeps {:.0}% of throughput while halving cores keeps {:.0}% —\n\
         but starving the cache below its knee costs {:.0}%.",
        100.0 * half_cache.tps / full.tps,
        100.0 * half.tps / full.tps,
        100.0 * (1.0 - small_cache.tps / full.tps)
    );
}
