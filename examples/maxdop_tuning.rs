//! MAXDOP tuning: how parallelism-sensitive are individual queries, and
//! when does the optimizer change the plan shape?
//!
//! Reproduces the paper's §7 methodology on TPC-H Q20 (Listing 1 /
//! Figure 7): run the query at several MAXDOP settings (cores limited to
//! MAXDOP), report speedups, and print the plans when the shape changes.
//!
//! ```text
//! cargo run --release -p dbsens-core --example maxdop_tuning [query] [sf]
//! ```

use dbsens_core::knobs::ResourceKnobs;
use dbsens_core::queryexp::TpchHarness;
use dbsens_workloads::scale::ScaleCfg;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let q: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(20);
    let sf: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100.0);

    println!("building TPC-H SF={sf} (once; reused across runs)...");
    let harness = TpchHarness::new(sf, &ScaleCfg::test());
    let base = ResourceKnobs::paper_full();

    let mut results = Vec::new();
    for dop in [1usize, 2, 4, 8, 16, 32] {
        let r = harness.run_query_at_dop(q, dop, &base);
        println!(
            "MAXDOP={dop:>2}: {:>8.2}s  plan dop={:>2}  grant={:>7.1} MB",
            r.secs, r.dop, r.grant_mb
        );
        results.push(r);
    }

    let base_secs = results.last().expect("ran").secs;
    println!("\nspeedup relative to MAXDOP=32:");
    for (dop, r) in [1usize, 2, 4, 8, 16, 32].iter().zip(&results) {
        println!("  MAXDOP={dop:>2}: {:.2}x", base_secs / r.secs.max(1e-9));
    }

    let serial = &results[0];
    let parallel = results.last().expect("ran");
    if serial.plan_shape != parallel.plan_shape {
        println!("\nThe optimizer changed the plan shape with MAXDOP (paper Figure 7):");
        println!("--- serial plan ---\n{}", serial.plan_text);
        println!("--- parallel plan ---\n{}", parallel.plan_text);
    } else {
        println!("\nPlan shape is MAXDOP-insensitive at this scale factor ");
        println!(
            "(the paper observes this for Q20 at SF=10/30).\n{}",
            serial.plan_text
        );
    }
}
