//! Integration-test-only crate; see `tests/` directory.
