//! Integration-test-only crate; see `tests/` directory.
//!
//! The library part hosts shared harness code: [`slt`] is the minimal
//! sqllogictest runner behind `tests/sqllogic/`.

pub mod slt;
