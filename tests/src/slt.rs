//! A minimal sqllogictest runner for the `dbsens_sql` frontend.
//!
//! The dialect is the classic sqllogictest record format, reduced to what
//! the corpus under `tests/sqllogic/` needs:
//!
//! ```text
//! # comment
//! statement ok
//! CREATE TABLE t (a INT, b TEXT)
//!
//! statement error unknown column
//! SELECT nope FROM t
//!
//! query
//! SELECT a, b FROM t ORDER BY a
//! ----
//! 1 x
//! 2 y
//! ```
//!
//! Records are separated by blank lines. `statement error` takes an
//! optional message substring on the directive line. `query` expectations
//! follow a `----` separator, one row per line, values space-separated
//! with `NULL` for SQL NULL; integral floats print without a decimal
//! point (the engine's aggregates accumulate in f64).

use dbsens_engine::db::Database;
use dbsens_engine::exec::rows_digest;
use dbsens_engine::governor::ExecMode;
use dbsens_sql::{run_statement, StatementOutcome};
use dbsens_storage::value::{Row, Value};

/// What one file's run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SltOutcome {
    /// Total records executed (statements + queries).
    pub records: usize,
    /// How many of those were `query` records.
    pub queries: usize,
    /// Row digests of each `query` record, in file order; compared
    /// across executor paths by the harness.
    pub query_digests: Vec<u64>,
}

/// Renders one result row the way the corpus writes expectations.
pub fn render_row(row: &Row) -> String {
    row.iter()
        .map(|v| match v {
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 1e15 => format!("{}", *f as i64),
            other => other.to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

enum Record {
    StatementOk(String),
    StatementError(String, Option<String>),
    Query(String, Vec<String>),
}

fn parse_records(content: &str) -> Result<Vec<(usize, Record)>, String> {
    let mut records = Vec::new();
    let mut lines = content.lines().enumerate().peekable();
    while let Some((ln, line)) = lines.next() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = ln + 1;
        let mut body = String::new();
        let mut take_body =
            |lines: &mut std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'_>>>,
             until_dashes: bool| {
                let mut hit_dashes = false;
                while let Some((_, l)) = lines.peek() {
                    let l = l.trim_end();
                    if l.is_empty() || (until_dashes && l == "----") {
                        hit_dashes = l == "----";
                        if hit_dashes {
                            lines.next();
                        }
                        break;
                    }
                    if !body.is_empty() {
                        body.push('\n');
                    }
                    body.push_str(l);
                    lines.next();
                }
                hit_dashes
            };
        if line == "statement ok" {
            take_body(&mut lines, false);
            records.push((lineno, Record::StatementOk(std::mem::take(&mut body))));
        } else if let Some(rest) = line.strip_prefix("statement error") {
            let want = rest.trim();
            let want = (!want.is_empty()).then(|| want.to_string());
            take_body(&mut lines, false);
            records.push((
                lineno,
                Record::StatementError(std::mem::take(&mut body), want),
            ));
        } else if line == "query" {
            let separated = take_body(&mut lines, true);
            if !separated {
                return Err(format!(
                    "line {lineno}: query record without ---- separator"
                ));
            }
            let sql = std::mem::take(&mut body);
            let mut expected = Vec::new();
            while let Some((_, l)) = lines.peek() {
                let l = l.trim_end();
                if l.is_empty() {
                    break;
                }
                expected.push(l.to_string());
                lines.next();
            }
            records.push((lineno, Record::Query(sql, expected)));
        } else {
            return Err(format!(
                "line {lineno}: expected a record directive, got '{line}'"
            ));
        }
    }
    Ok(records)
}

/// Runs one sqllogictest file's content against a fresh in-memory
/// database on the given executor path. Errors name the first failing
/// record's line.
pub fn run_slt(content: &str, mode: ExecMode) -> Result<SltOutcome, String> {
    let mut db = Database::new(1000.0, 1 << 30);
    let mut outcome = SltOutcome {
        records: 0,
        queries: 0,
        query_digests: Vec::new(),
    };
    for (lineno, record) in parse_records(content)? {
        outcome.records += 1;
        match record {
            Record::StatementOk(sql) => {
                run_one(&mut db, &sql, mode)
                    .map_err(|e| format!("line {lineno}: statement failed: {e}\n  {sql}"))?;
            }
            Record::StatementError(sql, want) => match run_one(&mut db, &sql, mode) {
                Ok(_) => {
                    return Err(format!(
                        "line {lineno}: statement succeeded but an error was expected\n  {sql}"
                    ));
                }
                Err(e) => {
                    if let Some(want) = want {
                        if !e.contains(&want) {
                            return Err(format!(
                                "line {lineno}: error message mismatch: wanted a message \
                                 containing '{want}', got '{e}'\n  {sql}"
                            ));
                        }
                    }
                }
            },
            Record::Query(sql, expected) => {
                outcome.queries += 1;
                let rows = match run_one(&mut db, &sql, mode)
                    .map_err(|e| format!("line {lineno}: query failed: {e}\n  {sql}"))?
                {
                    StatementOutcome::Rows(rows) => rows,
                    other => {
                        return Err(format!(
                            "line {lineno}: expected rows, got {other:?}\n  {sql}"
                        ));
                    }
                };
                outcome.query_digests.push(rows_digest(&rows));
                let got: Vec<String> = rows.iter().map(render_row).collect();
                if got != expected {
                    return Err(format!(
                        "line {lineno}: result mismatch\n  {sql}\nexpected:\n  {}\ngot:\n  {}",
                        expected.join("\n  "),
                        got.join("\n  ")
                    ));
                }
            }
        }
    }
    Ok(outcome)
}

fn run_one(db: &mut Database, sql: &str, mode: ExecMode) -> Result<StatementOutcome, String> {
    let stmts = dbsens_sql::parse(sql).map_err(|e| e.to_string())?;
    let [stmt] = stmts.as_slice() else {
        return Err(format!(
            "expected one statement per record, got {}",
            stmts.len()
        ));
    };
    run_statement(db, stmt, mode).map_err(|e| e.to_string())
}
