//! Cross-checks: the engine's query answers must equal brute-force
//! computations over the generated logical data, independent of plan
//! choice, DOP, or memory grants (pitfall #6: resource knobs must change
//! performance, never answers).

use dbsens_engine::exec::execute;
use dbsens_engine::governor::Governor;
use dbsens_engine::optimizer::optimize;
use dbsens_storage::value::Value;
use dbsens_workloads::dates::date;
use dbsens_workloads::scale::ScaleCfg;
use dbsens_workloads::tpch::{self, col::li, TpchDb};

fn tpch() -> TpchDb {
    tpch::build(
        2.0,
        &ScaleCfg {
            row_scale: 300_000.0,
            oltp_row_scale: 3_000.0,
            seed: 123,
        },
    )
}

fn run(t: &TpchDb, q: usize, maxdop: usize, grant_fraction: f64) -> Vec<Vec<Value>> {
    let mut gov = Governor::paper_default(maxdop);
    gov.grant_fraction = grant_fraction;
    let plan = optimize(&t.db, &t.query(q), &gov.plan_context(&t.db));
    execute(&t.db, &plan).rows
}

#[test]
fn q6_matches_brute_force() {
    let t = tpch();
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1);
    let expected: f64 =
        t.db.table(t.t.lineitem)
            .heap
            .iter()
            .map(|(_, r)| r)
            .filter(|r| {
                let ship = r[li::SHIPDATE].as_int();
                let disc = r[li::DISCOUNT].as_f64();
                ship >= lo
                    && ship < hi
                    && (0.05..=0.07).contains(&disc)
                    && r[li::QUANTITY].as_int() < 24
            })
            .map(|r| r[li::EXTENDEDPRICE].as_f64() * r[li::DISCOUNT].as_f64())
            .sum();
    let rows = run(&t, 6, 32, 0.25);
    assert_eq!(rows.len(), 1);
    let got = match &rows[0][0] {
        Value::Float(f) => *f,
        Value::Null => 0.0,
        other => panic!("unexpected {other:?}"),
    };
    assert!(
        (got - expected).abs() < 1e-6 * expected.abs().max(1.0),
        "{got} vs {expected}"
    );
}

#[test]
fn q1_group_counts_match_brute_force() {
    let t = tpch();
    let cutoff = date(1998, 9, 2);
    let mut expected: std::collections::BTreeMap<(String, String), i64> =
        std::collections::BTreeMap::new();
    for (_, r) in t.db.table(t.t.lineitem).heap.iter() {
        if r[li::SHIPDATE].as_int() <= cutoff {
            *expected
                .entry((
                    r[li::RETURNFLAG].as_str().into(),
                    r[li::LINESTATUS].as_str().into(),
                ))
                .or_insert(0) += 1;
        }
    }
    let rows = run(&t, 1, 32, 0.25);
    assert_eq!(rows.len(), expected.len());
    for row in &rows {
        let key = (row[0].as_str().to_string(), row[1].as_str().to_string());
        // Layout: group keys, then 8 aggregates; count is last.
        let count = row.last().expect("count column").as_int();
        assert_eq!(Some(&count), expected.get(&key), "group {key:?}");
    }
}

#[test]
fn answers_are_invariant_to_maxdop_and_grants() {
    let t = tpch();
    for q in [3usize, 5, 10, 18] {
        let baseline = run(&t, q, 32, 0.25);
        let serial = run(&t, q, 1, 0.25);
        let starved = run(&t, q, 32, 0.02);
        assert_eq!(baseline, serial, "Q{q}: DOP changed the answer");
        assert_eq!(
            baseline, starved,
            "Q{q}: the memory grant changed the answer"
        );
    }
}

#[test]
fn q4_semi_join_matches_brute_force() {
    let t = tpch();
    use dbsens_workloads::tpch::col::ord;
    let lo = date(1993, 7, 1);
    let hi = date(1993, 10, 1);
    // Orders in the window with at least one late lineitem.
    let late_orders: std::collections::HashSet<i64> =
        t.db.table(t.t.lineitem)
            .heap
            .iter()
            .filter(|(_, r)| r[li::COMMITDATE].as_int() < r[li::RECEIPTDATE].as_int())
            .map(|(_, r)| r[li::ORDERKEY].as_int())
            .collect();
    let expected: i64 =
        t.db.table(t.t.orders)
            .heap
            .iter()
            .filter(|(_, r)| {
                let d = r[ord::ORDERDATE].as_int();
                d >= lo && d < hi && late_orders.contains(&r[ord::ORDERKEY].as_int())
            })
            .count() as i64;
    let rows = run(&t, 4, 32, 0.25);
    let total: i64 = rows.iter().map(|r| r[1].as_int()).sum();
    assert_eq!(total, expected);
}

#[test]
fn htap_analytics_see_fresh_oltp_writes() {
    // The HTAP promise (§2.3): analytics on the same tables see committed
    // OLTP changes without ETL.
    use dbsens_engine::db::Database;
    use dbsens_workloads::htap;
    use dbsens_workloads::tpce;

    let scale = ScaleCfg {
        row_scale: 300_000.0,
        oltp_row_scale: 3_000.0,
        seed: 5,
    };
    let h = htap::build(300.0, &scale);
    let mut db: Database = h.db;
    let before = {
        let gov = Governor::paper_default(4);
        let q = &htap::analytical_queries_for(&h.t, &h.n)[0].1;
        let plan = optimize(&db, q, &gov.plan_context(&db));
        execute(&db, &plan).rows.len()
    };
    let _ = before;
    // Insert a trade for a brand-new security id and re-run A1 (top
    // securities): the new id must appear in the scan's input.
    let new_sec = 999_999i64;
    db.insert_row(
        h.t.trade,
        vec![
            Value::Int(888_888),
            Value::Int(0),
            Value::Int(new_sec),
            Value::Str("BUY".into()),
            Value::Str("CMPT".into()),
            Value::Int(10_000_000),
            Value::Float(1000.0),
            Value::Int(0),
            Value::Str("tdata".into()),
        ],
    );
    let gov = Governor::paper_default(4);
    let q = &htap::analytical_queries_for(&h.t, &h.n)[0].1;
    let plan = optimize(&db, q, &gov.plan_context(&db));
    let rows = execute(&db, &plan).rows;
    assert!(
        rows.iter().any(|r| r[0].as_int() == new_sec),
        "the freshly inserted security must dominate A1's top-10"
    );
    let _ = tpce::sizing; // keep the import meaningful across refactors
}
