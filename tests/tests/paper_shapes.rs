//! Integration tests asserting the paper's headline qualitative findings
//! hold in the reproduction (shapes, not absolute numbers).

use dbsens_core::experiment::Experiment;
use dbsens_core::knobs::ResourceKnobs;
use dbsens_core::queryexp::TpchHarness;
use dbsens_workloads::driver::WorkloadSpec;
use dbsens_workloads::scale::ScaleCfg;

fn quick_knobs(secs: u64) -> ResourceKnobs {
    ResourceKnobs::paper_full().with_run_secs(secs)
}

fn scale() -> ScaleCfg {
    ScaleCfg::test()
}

#[test]
fn oltp_throughput_scales_with_cores() {
    let spec = WorkloadSpec::Asdb {
        sf: 200.0,
        clients: 48,
    };
    let run = |cores: usize| {
        Experiment {
            workload: spec.clone(),
            knobs: quick_knobs(4).with_cores(cores),
            scale: scale(),
        }
        .run()
        .tps
    };
    let t1 = run(1);
    let t8 = run(8);
    let t32 = run(32);
    assert!(t8 > t1 * 3.0, "8 cores ({t8}) should be >3x 1 core ({t1})");
    assert!(
        t32 > t8 * 1.5,
        "32 cores ({t32}) should beat 8 cores ({t8})"
    );
}

#[test]
fn hyperthreading_helps_oltp() {
    // §4: using the second logical core of each physical core improves
    // transactional throughput.
    let spec = WorkloadSpec::TpcE {
        sf: 500.0,
        users: 64,
    };
    let run = |cores: usize| {
        Experiment {
            workload: spec.clone(),
            knobs: quick_knobs(4).with_cores(cores),
            scale: scale(),
        }
        .run()
        .tps
    };
    let t16 = run(16);
    let t32 = run(32);
    assert!(
        t32 > t16 * 1.02,
        "hyper-threaded cores should improve TPC-E: 16c={t16}, 32c={t32}"
    );
}

#[test]
fn small_llc_degrades_oltp_and_raises_mpki() {
    // §5: performance increases with LLC with a dramatic change at small
    // sizes; MPKI falls as allocations grow (Figure 2).
    let spec = WorkloadSpec::TpcE {
        sf: 500.0,
        users: 64,
    };
    let run = |mb: u32| {
        Experiment {
            workload: spec.clone(),
            knobs: quick_knobs(4).with_llc_mb(mb),
            scale: scale(),
        }
        .run()
    };
    let starved = run(2);
    let knee = run(12);
    let full = run(40);
    assert!(
        starved.tps < full.tps * 0.92,
        "2 MB should cost >8%: {} vs {}",
        starved.tps,
        full.tps
    );
    assert!(starved.mpki > full.mpki * 3.0, "MPKI must fall with LLC");
    // Table 4 shape: by ~12 MB the workload is within 10% of full.
    assert!(
        knee.tps > full.tps * 0.9,
        "knee too late: {} vs {}",
        knee.tps,
        full.tps
    );
}

#[test]
fn analytic_queries_speed_up_with_llc() {
    // §5: TPC-H gains dramatically from small-to-medium LLC allocations.
    let h = TpchHarness::new(30.0, &scale());
    let q1_starved = h.run_query(1, &ResourceKnobs::paper_full().with_llc_mb(2));
    let q1_mid = h.run_query(1, &ResourceKnobs::paper_full().with_llc_mb(20));
    let q1_full = h.run_query(1, &ResourceKnobs::paper_full());
    assert!(
        q1_starved.secs > q1_mid.secs * 1.25,
        "2 MB -> 20 MB should speed Q1 up noticeably: {} vs {}",
        q1_starved.secs,
        q1_mid.secs
    );
    let further = q1_mid.secs / q1_full.secs;
    assert!(
        further < q1_starved.secs / q1_mid.secs,
        "gains must diminish beyond the knee (20->40 gain {further})"
    );
}

#[test]
fn tpce_wait_profile_shifts_with_scale_factor() {
    // Table 3: at the larger SF, LOCK waits drop while PAGEIOLATCH waits
    // explode; TPS does not collapse despite the extra I/O.
    let run = |sf: f64| {
        Experiment {
            workload: WorkloadSpec::TpcE { sf, users: 64 },
            knobs: quick_knobs(5),
            scale: scale(),
        }
        .run()
    };
    let small = run(1000.0);
    // Large enough that the modeled database exceeds the 45 GB buffer pool.
    let large = run(15_000.0);
    let lock_ratio = large.wait_secs("LOCK") / small.wait_secs("LOCK").max(1e-9);
    let io_ratio = large.wait_secs("PAGEIOLATCH") / small.wait_secs("PAGEIOLATCH").max(1e-9);
    assert!(
        lock_ratio < 1.0,
        "LOCK waits must fall with SF (ratio {lock_ratio})"
    );
    assert!(
        io_ratio > 2.0,
        "PAGEIOLATCH waits must grow with SF (ratio {io_ratio})"
    );
    assert!(
        large.tps > small.tps * 0.7,
        "TPS must not collapse at the larger SF"
    );
}

#[test]
fn q20_plan_changes_with_maxdop_at_large_sf() {
    // Figure 7: Q20's plan shape flips between serial and parallel
    // settings at a large scale factor, and the serial plan wants less
    // memory (§8: ~45% less in the paper).
    let h = TpchHarness::new(300.0, &scale());
    let base = ResourceKnobs::paper_full();
    let serial = h.run_query_at_dop(20, 1, &base);
    let parallel = h.run_query_at_dop(20, 32, &base);
    assert_eq!(serial.dop, 1);
    assert!(parallel.dop > 1, "Q20 at SF300 must go parallel");
    assert_ne!(
        serial.plan_shape, parallel.plan_shape,
        "plan shape must change"
    );
    assert!(
        serial.desired_mb < parallel.desired_mb,
        "serial plan should want less memory: {} vs {}",
        serial.desired_mb,
        parallel.desired_mb
    );
    assert!(
        parallel.secs < serial.secs * 0.5,
        "Q20 must speed up with DOP at SF300: {} vs {}",
        parallel.secs,
        serial.secs
    );
}

#[test]
fn some_queries_keep_serial_plans_at_small_sf() {
    // §7: at small scale factors the optimizer keeps serial plans for
    // cheap queries regardless of MAXDOP, making them DOP-insensitive.
    let h = TpchHarness::new(3.0, &scale());
    let base = ResourceKnobs::paper_full();
    let r = h.run_query_at_dop(6, 32, &base);
    assert_eq!(r.dop, 1, "Q6 at a tiny SF should keep a serial plan");
}

#[test]
fn memory_grant_starvation_slows_heavy_queries() {
    // Figure 8: grant-heavy queries (Q18's big aggregate) degrade when
    // the per-query grant shrinks; light queries (Q6) do not.
    let h = TpchHarness::new(100.0, &scale());
    let base = ResourceKnobs::paper_full();
    let q18_full = h.run_query_at_grant(18, 0.25, &base);
    let q18_starved = h.run_query_at_grant(18, 0.02, &base);
    assert!(
        q18_starved.secs > q18_full.secs * 1.1,
        "Q18 must slow under a 2% grant: {} vs {}",
        q18_starved.secs,
        q18_full.secs
    );
    let q6_full = h.run_query_at_grant(6, 0.25, &base);
    let q6_starved = h.run_query_at_grant(6, 0.02, &base);
    assert!(
        q6_starved.secs < q6_full.secs * 1.1,
        "Q6 must be grant-insensitive: {} vs {}",
        q6_starved.secs,
        q6_full.secs
    );
}

#[test]
fn write_bandwidth_limit_hurts_in_memory_oltp() {
    // §6: transactional workloads are write-bandwidth sensitive even when
    // the database fits in memory.
    let spec = WorkloadSpec::Asdb {
        sf: 200.0,
        clients: 48,
    };
    let free = Experiment {
        workload: spec.clone(),
        knobs: quick_knobs(8),
        scale: scale(),
    }
    .run();
    let limited = quick_knobs(8).with_write_limit_mbps(10.0);
    let capped = Experiment {
        workload: spec,
        knobs: limited,
        scale: scale(),
    }
    .run();
    assert!(
        capped.tps < free.tps * 0.95,
        "a tight write limit must cost TPS: {} vs {}",
        capped.tps,
        free.tps
    );
}

#[test]
fn read_bandwidth_limit_throttles_analytics_nonlinearly() {
    // Figure 5: QPS responds to the read limit with diminishing returns.
    let run = |mbps: f64| {
        let knobs = quick_knobs(600).with_read_limit_mbps(mbps);
        Experiment {
            workload: WorkloadSpec::TpchPower { sf: 30.0 },
            knobs,
            scale: scale(),
        }
        .run()
        .qps
    };
    let q_low = run(100.0);
    let q_mid = run(800.0);
    let q_high = run(2500.0);
    assert!(q_mid > q_low, "more bandwidth, more QPS");
    let gain_low = q_mid / q_low.max(1e-12);
    let gain_high = q_high / q_mid.max(1e-12);
    assert!(
        gain_high < gain_low,
        "returns must diminish: {gain_low} then {gain_high}"
    );
}
