//! Runs the sqllogictest corpus under `tests/sqllogic/` on both executor
//! paths and requires identical results (rendered rows and row digests).

use dbsens_engine::governor::ExecMode;
use dbsens_tests::slt;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("sqllogic")
}

fn corpus() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("tests/sqllogic exists")
        .filter_map(|e| {
            let path = e.ok()?.path();
            (path.extension()? == "slt").then(|| {
                (
                    path.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read_to_string(&path).unwrap(),
                )
            })
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .slt files found in tests/sqllogic");
    files
}

#[test]
fn corpus_passes_on_both_executor_paths() {
    let mut total_records = 0;
    for (name, content) in corpus() {
        let morsel = slt::run_slt(&content, ExecMode::Morsel)
            .unwrap_or_else(|e| panic!("{name} (morsel): {e}"));
        let volcano = slt::run_slt(&content, ExecMode::Volcano)
            .unwrap_or_else(|e| panic!("{name} (volcano): {e}"));
        assert_eq!(
            morsel, volcano,
            "{name}: executor paths disagree on outcomes/digests"
        );
        total_records += morsel.records;
    }
    assert!(
        total_records >= 60,
        "sqllogictest corpus shrank to {total_records} records (floor: 60)"
    );
}

#[test]
fn runner_reports_failures_with_line_numbers() {
    let bad_result = "query\nSELECT x FROM nope\n----\n1\n";
    let err = slt::run_slt(bad_result, ExecMode::Morsel).unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    assert!(err.contains("unknown table"), "{err}");

    let mismatch = "statement ok\nCREATE TABLE t (a INT)\n\nstatement ok\nINSERT INTO t VALUES (7)\n\nquery\nSELECT a FROM t\n----\n8\n";
    let err = slt::run_slt(mismatch, ExecMode::Morsel).unwrap_err();
    assert!(err.contains("result mismatch"), "{err}");
    assert!(err.contains("line 7"), "{err}");

    let no_sep = "query\nSELECT 1 FROM t\n";
    let err = slt::run_slt(no_sep, ExecMode::Morsel).unwrap_err();
    assert!(err.contains("----"), "{err}");
}
