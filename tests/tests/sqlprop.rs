//! Property tests for the SQL frontend: the optimizer must never change
//! query results on either executor path, and the parser must reject
//! arbitrary garbage with positioned errors instead of panicking.

use dbsens_engine::db::Database;
use dbsens_engine::exec::{execute, rows_digest};
use dbsens_engine::governor::Governor;
use dbsens_engine::optimizer::optimize as engine_optimize;
use dbsens_engine::pushexec::execute_push;
use dbsens_sql::{bind, lower, optimize, BoundStatement};
use dbsens_storage::schema::{ColType, Schema};
use dbsens_storage::value::Value;
use proptest::prelude::*;

/// Two joinable tables with enough value variety to exercise filters,
/// group keys, and NULL handling.
fn db() -> Database {
    let mut db = Database::new(100.0, 1 << 30);
    db.create_table(
        "t",
        Schema::new(&[
            ("a", ColType::Int),
            ("b", ColType::Int),
            ("s", ColType::Str(8)),
        ]),
        (0..60)
            .map(|i| {
                vec![
                    Value::Int(i % 10),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i * 3 % 17)
                    },
                    Value::Str(format!("s{}", i % 5)),
                ]
            })
            .collect(),
    );
    db.create_table(
        "u",
        Schema::new(&[("a", ColType::Int), ("w", ColType::Int)]),
        (0..15)
            .map(|i| vec![Value::Int(i % 12), Value::Int(i * i % 23)])
            .collect(),
    );
    db
}

fn arb_pred() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (0..20i64).prop_map(|k| format!("t.a < {k}")),
        (0..20i64).prop_map(|k| format!("t.b > {k}")),
        (0..20i64).prop_map(|k| format!("t.b = {k}")),
        (0..5i64).prop_map(|k| format!("t.s = 's{k}'")),
        Just("t.b IS NULL".to_string()),
        Just("t.b IS NOT NULL".to_string()),
        Just("t.s LIKE 's%'".to_string()),
        (0..10i64, 0..10i64)
            .prop_map(|(x, y)| { format!("t.a BETWEEN {} AND {}", x.min(y), x.max(y)) }),
        Just("t.a IN (1, 3, 5, 7)".to_string()),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
            inner.prop_map(|a| format!("NOT {a}")),
        ]
    })
}

/// Random queries over t (optionally joined with u), with optional
/// grouping — always with a deterministic ORDER BY so row order is
/// well-defined for digest comparison.
fn arb_query() -> impl Strategy<Value = String> {
    (
        arb_pred(),
        any::<bool>(),
        any::<bool>(),
        1usize..40,
        any::<bool>(),
    )
        .prop_map(|(pred, join, group, limit, use_limit)| {
            let from = if join { "t JOIN u ON t.a = u.a" } else { "t" };
            let limit_clause = if use_limit {
                format!(" LIMIT {limit}")
            } else {
                String::new()
            };
            if group {
                format!(
                    "SELECT t.a, COUNT(*) AS n, SUM(t.b) AS s FROM {from} \
                     WHERE {pred} GROUP BY t.a ORDER BY t.a{limit_clause}"
                )
            } else if join {
                format!(
                    "SELECT t.a, t.b, u.w FROM {from} WHERE {pred} \
                     ORDER BY t.a, t.b, u.w{limit_clause}"
                )
            } else {
                format!(
                    "SELECT t.a, t.b, t.s FROM t WHERE {pred} \
                     ORDER BY t.a, t.b, t.s{limit_clause}"
                )
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For generated queries, the frontend optimizer and both executor
    /// paths agree on the exact result rows (byte-identical digests).
    #[test]
    fn optimizer_and_executors_preserve_results(sql in arb_query()) {
        let db = db();
        let stmts = dbsens_sql::parse(&sql).unwrap();
        let BoundStatement::Select(plan) = bind(&db, &stmts[0]).unwrap() else {
            unreachable!()
        };
        let mut digests = Vec::new();
        for plan in [plan.clone(), optimize(&db, &plan)] {
            let logical = lower(&db, &plan).unwrap();
            let ctx = Governor::paper_default(4).plan_context(&db);
            let phys = engine_optimize(&db, &logical, &ctx);
            let volcano = rows_digest(&execute(&db, &phys).rows);
            let morsel = execute_push(&db, &phys)
                .map(|r| rows_digest(&r.rows))
                .unwrap_or(volcano);
            prop_assert_eq!(volcano, morsel, "executors diverged: {}", sql);
            digests.push(volcano);
        }
        prop_assert_eq!(digests[0], digests[1], "optimizer changed results: {}", sql);
    }

    /// The parser never panics on arbitrary input, and every error is
    /// annotated with a 1-based position.
    #[test]
    fn parser_is_total_on_arbitrary_input(input in "\\PC{0,120}") {
        if let Err(e) = dbsens_sql::parse(&input) {
            prop_assert!(e.line >= 1, "unpositioned error {:?} for {:?}", e, input);
            prop_assert!(e.col >= 1, "unpositioned error {:?} for {:?}", e, input);
            prop_assert!(!e.msg.is_empty());
        }
    }

    /// SQL-looking garbage (keywords, idents, and punctuation shuffled
    /// together) also never panics the parser or the binder.
    #[test]
    fn binder_is_total_on_sql_shaped_garbage(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("JOIN"), Just("ON"), Just("ORDER"),
                Just("LIMIT"), Just("t"), Just("u"), Just("a"), Just("b"),
                Just("("), Just(")"), Just(","), Just("="), Just("<"),
                Just("*"), Just("1"), Just("'x'"), Just("AND"), Just("COUNT"),
            ],
            0..24,
        ),
    ) {
        let sql = words.join(" ");
        if let Ok(stmts) = dbsens_sql::parse(&sql) {
            let db = db();
            for stmt in &stmts {
                let _ = bind(&db, stmt); // must not panic
            }
        }
    }
}
