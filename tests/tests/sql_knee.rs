//! Acceptance: a hand-written SQL join+aggregation swept over MAXDOP
//! finds the same parallelism knee as the equivalent fixed TPC-H
//! workload (Q3) on the same catalog — within one grid step.
//!
//! Runs at SF 30 because below roughly SF 20 the governor prices every
//! plan under its parallelism cost threshold and both the SQL and the
//! fixed query stay serial, which would make the comparison vacuous.

use dbsens_core::knobs::ResourceKnobs;
use dbsens_core::queryexp::TpchHarness;
use dbsens_core::sqlexp::{sweep_sql, SweepAxis};
use dbsens_core::sweep::KnobGrid;
use dbsens_workloads::scale::ScaleCfg;

const DOPS: [usize; 5] = [1, 2, 4, 8, 16];
const SLACK: f64 = 1.1;

/// Q3 without the l_shipdate conjunct, which the fixed plan also drops
/// at this selectivity; revenue per order date over the pre-cutoff
/// window.
const SQL_Q3ISH: &str = "SELECT o.o_orderdate, SUM(l.l_extendedprice * (1 - l.l_discount)) AS rev \
     FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey \
     WHERE o.o_orderdate < DATE '1995-03-15' \
     GROUP BY o.o_orderdate ORDER BY rev DESC LIMIT 10";

/// Knee index into `DOPS` under the same slack rule `AxisSweep::knee`
/// uses: smallest DOP within `SLACK` of the best runtime.
fn knee_index(secs: &[f64]) -> usize {
    let best = secs.iter().copied().fold(f64::INFINITY, f64::min);
    secs.iter().position(|&s| s <= best * SLACK).unwrap()
}

#[test]
fn sql_sweep_finds_the_fixed_workload_maxdop_knee() {
    let h = TpchHarness::new(
        30.0,
        &ScaleCfg {
            row_scale: 400_000.0,
            oltp_row_scale: 2_000.0,
            seed: 5,
        },
    );
    let base = ResourceKnobs::paper_full();
    let grid = KnobGrid::builder().dop(DOPS).build();

    // SQL path: parse → optimize → lower → sweep.
    let report = sweep_sql(&h, SQL_Q3ISH, &[SweepAxis::Dop], &grid, &base).expect("SQL sweep runs");
    let sweep = &report.axes[0];
    assert_eq!(sweep.points.len(), DOPS.len());
    let sql_secs: Vec<f64> = sweep.points.iter().map(|p| p.secs).collect();
    let sql_knee = knee_index(&sql_secs);
    assert_eq!(
        sweep.knee(SLACK).expect("knee exists").value,
        DOPS[sql_knee] as f64,
        "AxisSweep::knee disagrees with the reference rule"
    );

    // The comparison is only meaningful if the plan actually went
    // parallel at this scale.
    assert!(
        sweep.points.iter().any(|p| p.dop > 1),
        "SQL plan never parallelized at SF 30; sweep: {sql_secs:?}"
    );

    // Fixed path: the harness's built-in Q3 at the same DOP steps.
    let fixed_secs: Vec<f64> = DOPS
        .iter()
        .map(|&d| h.run_query_at_dop(3, d, &base).secs)
        .collect();
    let fixed_knee = knee_index(&fixed_secs);

    assert!(
        sql_knee.abs_diff(fixed_knee) <= 1,
        "knees diverge: SQL knee MAXDOP={} {sql_secs:?} vs fixed Q3 knee MAXDOP={} {fixed_secs:?}",
        DOPS[sql_knee],
        DOPS[fixed_knee],
    );
}
