//! Byte-identical regression fence for the simulator's hot path.
//!
//! Runs a small fixed-seed sweep — healthy OLTP and OLAP points, one
//! faulted point, and one crash-verify point — and compares each result's
//! content digest against the committed goldens in
//! `tests/golden/digests.txt`. Any change to event ordering, RNG
//! consumption, float arithmetic, or metric accounting changes a digest
//! and fails here, so performance work on the kernel/cache/engine is
//! provably behavior-preserving.
//!
//! When a digest changes *intentionally* (a modeling change, not an
//! optimization), regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dbsens-tests --test golden
//! ```
//!
//! and commit the diff — the review then sees exactly which points moved.

use dbsens_core::crashverify::{verify_class, CrashClass, CrashVerifyConfig};
use dbsens_core::digest::of_json;
use dbsens_core::experiment::Experiment;
use dbsens_core::knobs::ResourceKnobs;
use dbsens_core::queryexp::TpchHarness;
use dbsens_core::serve::{simulate, Scenario, ServeConfig};
use dbsens_core::sqlexp::{sweep_sql, SweepAxis};
use dbsens_core::sweep::KnobGrid;
use dbsens_core::topoexp::{simulate as topo_simulate, TopoConfig};
use dbsens_engine::governor::ExecMode;
use dbsens_hwsim::faults::{FaultSpec, NetFaultSpec};
use dbsens_hwsim::topology::Deployment;
use dbsens_workloads::driver::WorkloadSpec;
use dbsens_workloads::scale::ScaleCfg;
use std::path::PathBuf;

/// One golden point: a name and the digest of its full result.
///
/// The analytical points exist in both executor flavors: `olap-tpch` and
/// `htap-constrained` pin the legacy volcano walker (their digests are
/// frozen from before the push executor landed and must never move), and
/// `olap-tpch-pipeline`/`htap-pipeline` cover the morsel-driven default.
fn sweep() -> Vec<(&'static str, String)> {
    let scale = ScaleCfg::experiment();
    let base = ResourceKnobs::paper_full().with_seed(42);
    let run = |name: &'static str, workload: WorkloadSpec, knobs: ResourceKnobs| {
        let result = Experiment {
            workload,
            knobs,
            scale: scale.clone(),
        }
        .run();
        (name, result.digest())
    };
    let faults = FaultSpec::none()
        .with_seed(1337)
        .with_ssd_throttle(2, 0.25)
        .with_ssd_errors(1, 0.02)
        .with_fault_secs(1.0);
    let olap = WorkloadSpec::TpchThroughput {
        sf: 10.0,
        streams: 2,
    };
    let htap = WorkloadSpec::Htap {
        sf: 5000.0,
        users: 8,
    };
    let mut points = vec![
        run(
            "oltp-tpce",
            WorkloadSpec::TpcE {
                sf: 300.0,
                users: 16,
            },
            base.clone().with_run_secs(3),
        ),
        run(
            "olap-tpch",
            olap.clone(),
            base.clone()
                .with_run_secs(30)
                .with_exec_mode(ExecMode::Volcano),
        ),
        run("olap-tpch-pipeline", olap, base.clone().with_run_secs(30)),
        run(
            "htap-constrained",
            htap.clone(),
            base.clone()
                .with_run_secs(3)
                .with_cores(8)
                .with_llc_mb(10)
                .with_exec_mode(ExecMode::Volcano),
        ),
        run(
            "htap-pipeline",
            htap,
            base.clone().with_run_secs(3).with_cores(8).with_llc_mb(10),
        ),
        run(
            "oltp-faulted",
            WorkloadSpec::Asdb {
                sf: 2000.0,
                clients: 16,
            },
            base.with_run_secs(4).with_faults(faults),
        ),
    ];
    let crash = verify_class(&CrashVerifyConfig {
        class: CrashClass::Oltp,
        points: 2,
        seed: 42,
    });
    assert!(
        crash.passed(),
        "crash-verify golden point found a durability violation"
    );
    points.push(("crash-verify-oltp", of_json(&crash)));
    // Service-mode point: the decision-trace digest of a fixed-seed
    // overload run fences every admission, shedding, breaker, and
    // governance decision the service loop takes.
    let serve =
        simulate(&ServeConfig::scenario_stress(Scenario::Overload, 42).with_duration_secs(8.0));
    points.push(("serve-overload", serve.trace_digest));
    // SQL-frontend points: the full parse → optimize → lower → sweep
    // pipeline on both executor paths. The digests cover the rendered
    // physical plan, every timing point, and the result-row digests, so
    // a change anywhere in the SQL stack (or in how it lowers onto the
    // engine) moves one of these lines.
    let harness = TpchHarness::new(
        1.0,
        &ScaleCfg {
            row_scale: 100_000.0,
            oltp_row_scale: 2_000.0,
            seed: 42,
        },
    );
    let sql_base = ResourceKnobs::paper_full().with_seed(42);
    let dop_sweep = sweep_sql(
        &harness,
        "SELECT l_returnflag, COUNT(*) AS n, SUM(l_extendedprice) AS s \
         FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
        &[SweepAxis::Dop],
        &KnobGrid::builder().dop([1, 4]).build(),
        &sql_base,
    )
    .expect("golden SQL dop sweep runs");
    points.push(("sql-agg-dop", of_json(&dop_sweep)));
    let grant_sweep = sweep_sql(
        &harness,
        "SELECT o_orderdate, SUM(l_extendedprice * (1 - l_discount)) AS rev \
         FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
         WHERE o_orderdate < DATE '1995-03-15' \
         GROUP BY o_orderdate ORDER BY rev DESC LIMIT 5",
        &[SweepAxis::Grant],
        &KnobGrid::builder().grant_fractions([0.25, 0.05]).build(),
        &sql_base.clone().with_exec_mode(ExecMode::Volcano),
    )
    .expect("golden SQL grant sweep runs");
    points.push(("sql-join-grant", of_json(&grant_sweep)));
    // Deployment-topology points: the cluster simulator's decision-trace
    // digest fences routing, 2PC message ordering, slot scheduling, and
    // fault handling. One healthy sharded run, one with node-crash
    // windows (which also exercises crash-time abort/in-doubt paths).
    let sharded = topo_simulate(
        &TopoConfig::paper_default(Deployment::Sharded, 4)
            .with_seed(42)
            .with_run_secs(0.5),
    );
    points.push(("topo-sharded", of_json(&sharded)));
    let crashed = topo_simulate(
        &TopoConfig::paper_default(Deployment::Sharded, 4)
            .with_seed(42)
            .with_run_secs(0.5)
            .with_net_faults(NetFaultSpec::none().with_node_crashes(2).with_seed(42)),
    );
    points.push(("topo-node-crash", of_json(&crashed)));
    points
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("digests.txt")
}

fn render(points: &[(&str, String)]) -> String {
    let mut out = String::new();
    for (name, digest) in points {
        out.push_str(&format!("{name} {digest}\n"));
    }
    out
}

#[test]
fn pipeline_results_are_dop_invariant() {
    // The morsel-driven executor must compute the same rows at every
    // degree of parallelism: one full TPC-H power pass, identical query
    // result digests across MAXDOP 1/4/16.
    let digest_at = |dop: usize| {
        Experiment {
            workload: WorkloadSpec::TpchPower { sf: 10.0 },
            knobs: ResourceKnobs::paper_full()
                .with_seed(42)
                .with_run_secs(60)
                .with_maxdop_and_cores(dop),
            scale: ScaleCfg::test(),
        }
        .run_with_result_digest()
        .1
    };
    let d1 = digest_at(1);
    let d4 = digest_at(4);
    let d16 = digest_at(16);
    assert!(!d1.is_empty(), "power pass recorded no query results");
    assert_eq!(d1, d4, "results differ between MAXDOP 1 and 4");
    assert_eq!(d1, d16, "results differ between MAXDOP 1 and 16");
}

#[test]
fn fixed_seed_sweep_matches_committed_goldens() {
    let points = sweep();
    let rendered = render(&points);
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("golden digests rewritten at {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test -p dbsens-tests --test golden",
            path.display()
        )
    });
    assert_eq!(
        committed, rendered,
        "fixed-seed digests diverged from tests/golden/digests.txt — an \
         optimization changed simulation behavior. If the change is an \
         intentional modeling change, regenerate with UPDATE_GOLDEN=1."
    );
}
