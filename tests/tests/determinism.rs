//! Determinism: identical seeds give bit-identical experiment results,
//! regardless of host threading; different seeds differ.

use dbsens_core::experiment::Experiment;
use dbsens_core::knobs::ResourceKnobs;
use dbsens_core::runner::Runner;
use dbsens_workloads::driver::WorkloadSpec;
use dbsens_workloads::scale::ScaleCfg;

fn experiment(seed: u64) -> Experiment {
    Experiment {
        workload: WorkloadSpec::TpcE {
            sf: 300.0,
            users: 24,
        },
        knobs: ResourceKnobs::paper_full().with_run_secs(3).with_seed(seed),
        scale: ScaleCfg {
            seed,
            ..ScaleCfg::test()
        },
    }
}

#[test]
fn same_seed_same_result() {
    let a = experiment(7).run();
    let b = experiment(7).run();
    assert_eq!(a.txns, b.txns);
    assert_eq!(a.tps, b.tps);
    assert_eq!(a.mpki, b.mpki);
    assert_eq!(a.waits, b.waits);
    assert_eq!(a.samples.len(), b.samples.len());
}

#[test]
fn different_seed_different_result() {
    let a = experiment(7).run();
    let b = experiment(8).run();
    assert_ne!(a.txns, b.txns, "different seeds should not collide exactly");
}

#[test]
fn host_parallelism_does_not_change_results() {
    let run = |threads: usize| {
        Runner::new()
            .threads(threads)
            .run(vec![experiment(1), experiment(2)])
            .into_iter()
            .map(|r| r.expect("experiment ok"))
            .collect::<Vec<_>>()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial[0].txns, parallel[0].txns);
    assert_eq!(serial[1].txns, parallel[1].txns);
    assert_eq!(serial[0].mpki, parallel[0].mpki);
}

#[test]
fn cached_rerun_is_bit_identical_to_the_original() {
    use dbsens_core::cache::ResultCache;
    let dir = std::env::temp_dir().join(format!("dbsens-determinism-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::new(&dir);
    let runner = Runner::new().cache(cache.clone());
    let first = runner.run(vec![experiment(5)]);
    let second = runner.run(vec![experiment(5)]);
    assert_eq!(
        first[0].as_ref().expect("first run ok"),
        second[0].as_ref().expect("cached run ok"),
        "a cache round-trip must preserve the result exactly"
    );
    let _ = cache.clear();
}

#[test]
fn query_runs_are_deterministic() {
    use dbsens_core::queryexp::TpchHarness;
    let run = || {
        let h = TpchHarness::new(10.0, &ScaleCfg::test());
        h.run_query(5, &ResourceKnobs::paper_full()).secs
    };
    assert_eq!(run(), run());
}
