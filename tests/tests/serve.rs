//! Property-based invariants of the overload-robust service mode.
//!
//! Three families, each over random seeds, scenarios, and run lengths:
//!
//! 1. **Conservation** — every offered arrival is accounted for exactly
//!    once: shed, completed, cancelled, still queued, or in flight.
//! 2. **Bounded queues** — with shedding armed, no per-tenant queue can
//!    end above its admission bound (and disarmed runs shed nothing).
//! 3. **Bit-determinism** — identical `(seed, scenario)` inputs produce
//!    byte-identical outcomes and decision-trace digests.

use dbsens_core::serve::{simulate, Scenario, ServeConfig};
use proptest::prelude::*;

fn scenario_from_index(i: u8) -> Scenario {
    Scenario::ALL[i as usize % Scenario::ALL.len()]
}

fn config(scenario: Scenario, seed: u64, stressed: bool, dur_s: f64, shed: bool) -> ServeConfig {
    let cfg = if stressed {
        ServeConfig::scenario_stress(scenario, seed)
    } else {
        ServeConfig::scenario_baseline(scenario, seed)
    };
    let cfg = cfg.with_duration_secs(dur_s);
    if shed {
        cfg
    } else {
        cfg.without_shedding()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// shed + completed + cancelled + queued + in-flight == offered, per
    /// tenant and in aggregate, for any seed/scenario/shape.
    #[test]
    fn every_arrival_is_accounted_for_exactly_once(
        seed in any::<u64>(),
        scenario_ix in 0u8..3,
        stressed in any::<bool>(),
        shed in any::<bool>(),
        dur_s in 2.0f64..5.0,
    ) {
        let scenario = scenario_from_index(scenario_ix);
        let out = simulate(&config(scenario, seed, stressed, dur_s, shed));
        let mut offered = 0u64;
        let mut admitted = 0u64;
        for t in &out.tenants {
            prop_assert_eq!(
                t.offered,
                t.admitted + t.shed(),
                "tenant {}: offered != admitted + shed", &t.tenant
            );
            prop_assert_eq!(
                t.admitted,
                t.completed_ok
                    + t.completed_late
                    + t.cancelled
                    + t.queued_at_end
                    + t.in_flight_at_end,
                "tenant {}: admitted work leaked", &t.tenant
            );
            offered += t.offered;
            admitted += t.admitted;
        }
        prop_assert_eq!(out.offered, offered);
        prop_assert_eq!(out.admitted, admitted);
    }

    /// With shedding armed, a tenant's queue can never end past its
    /// admission bound of 1.5x its core slots; with shedding disarmed,
    /// nothing is ever rejected (that is the point of the comparison).
    #[test]
    fn queues_respect_the_admission_bound(
        seed in any::<u64>(),
        scenario_ix in 0u8..3,
        shed in any::<bool>(),
        dur_s in 2.0f64..5.0,
    ) {
        let scenario = scenario_from_index(scenario_ix);
        let out = simulate(&config(scenario, seed, true, dur_s, shed));
        for t in &out.tenants {
            if shed {
                let bound = (3 * t.cores as u64) / 2;
                prop_assert!(
                    t.queued_at_end <= bound,
                    "tenant {} ended with {} queued, bound {}",
                    &t.tenant, t.queued_at_end, bound
                );
            } else {
                prop_assert_eq!(t.shed(), 0, "disarmed run shed work");
            }
        }
    }

    /// Identical (seed, scenario) inputs give byte-identical outcomes,
    /// decision counts, and trace digests.
    #[test]
    fn identical_inputs_are_bit_identical(
        seed in any::<u64>(),
        scenario_ix in 0u8..3,
        stressed in any::<bool>(),
        dur_s in 2.0f64..5.0,
    ) {
        let scenario = scenario_from_index(scenario_ix);
        let cfg = config(scenario, seed, stressed, dur_s, true);
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        prop_assert_eq!(&a.trace_digest, &b.trace_digest);
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a, b);
    }
}

/// Different seeds must not collide on the decision trace: the digest
/// covers every admission/dispatch/completion decision, so two distinct
/// arrival processes agreeing bit-for-bit would mean the seed is dead.
#[test]
fn different_seeds_diverge() {
    let a = simulate(&ServeConfig::scenario_stress(Scenario::Overload, 1).with_duration_secs(3.0));
    let b = simulate(&ServeConfig::scenario_stress(Scenario::Overload, 2).with_duration_secs(3.0));
    assert_ne!(a.trace_digest, b.trace_digest);
}
