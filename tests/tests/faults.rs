//! Fault-injection integration tests: determinism of fault schedules and
//! graceful degradation of faulted runs (the acceptance criteria of the
//! resilience characterization work).

use dbsens_core::experiment::Experiment;
use dbsens_core::knobs::ResourceKnobs;
use dbsens_core::runner::{RunClass, Runner};
use dbsens_hwsim::faults::{FaultPlan, FaultSpec};
use dbsens_hwsim::time::SimDuration;
use dbsens_workloads::driver::WorkloadSpec;
use dbsens_workloads::scale::ScaleCfg;

/// The `ssd-brownout` profile shipped by the bench crate, reconstructed
/// here so the tests crate stays independent of `dbsens-bench`.
fn brownout() -> FaultSpec {
    FaultSpec::none()
        .with_seed(7)
        .with_ssd_latency_spikes(2, 500)
        .with_ssd_errors(2, 0.05)
        .with_ssd_throttle(1, 0.25)
}

fn tpce(knobs: ResourceKnobs) -> Experiment {
    Experiment {
        workload: WorkloadSpec::TpcE {
            sf: 300.0,
            users: 16,
        },
        knobs,
        scale: ScaleCfg::test(),
    }
}

#[test]
fn same_seed_gives_bit_identical_schedules_and_metrics() {
    let run = SimDuration::from_secs(6);
    assert_eq!(
        FaultPlan::generate(&brownout(), run),
        FaultPlan::generate(&brownout(), run)
    );

    let knobs = ResourceKnobs::paper_full()
        .with_run_secs(6)
        .with_faults(brownout());
    let a = tpce(knobs.clone()).run();
    let b = tpce(knobs).run();
    // Bit-identical everything: throughput, latencies, counters, and the
    // realized fault log.
    assert_eq!(a, b);
    assert!(!a.fault_events.is_empty(), "windows should have opened");
}

#[test]
fn ssd_brownout_degrades_gracefully_not_fatally() {
    let knobs = ResourceKnobs::paper_full()
        .with_run_secs(6)
        .with_faults(brownout());
    let outcome = Runner::new()
        .threads(1)
        .run(vec![tpce(knobs)])
        .into_iter()
        .next()
        .unwrap();
    assert_eq!(RunClass::of(&outcome), RunClass::Degraded);
    let r = outcome.expect("brownout must degrade, not fail");
    assert!(
        r.retries > 0,
        "expected recovery retries, got {}",
        r.retries
    );
    assert!(r.tps > 0.0, "engine kept committing through the brownout");
    assert!(!r.fault_events.is_empty());
}

#[test]
fn pipeline_path_still_degrades_and_tags_partitions() {
    // An analytical workload on the default morsel-driven executor must
    // keep the graceful-degradation classification under an SSD brownout,
    // and the realized fault windows must name the pipeline partitions
    // they overlapped.
    let knobs = ResourceKnobs::paper_full()
        .with_run_secs(6)
        .with_faults(brownout());
    let exp = Experiment {
        workload: WorkloadSpec::TpchThroughput {
            sf: 10.0,
            streams: 2,
        },
        knobs,
        scale: ScaleCfg::test(),
    };
    let outcome = Runner::new()
        .threads(1)
        .run(vec![exp])
        .into_iter()
        .next()
        .unwrap();
    assert_eq!(RunClass::of(&outcome), RunClass::Degraded);
    let r = outcome.expect("brownout must degrade, not fail");
    assert!(r.tps > 0.0 || r.qps > 0.0, "work kept completing");
    assert!(!r.fault_events.is_empty(), "windows should have opened");
    assert!(
        r.fault_events.iter().any(|e| !e.partitions.is_empty()),
        "fault windows should record the pipeline partitions they hit: {:?}",
        r.fault_events
    );
}

#[test]
fn faulted_run_loses_throughput_but_survives() {
    let healthy = tpce(ResourceKnobs::paper_full().with_run_secs(6)).run();
    let harsh = brownout()
        .with_ssd_throttle(2, 0.1)
        .with_ssd_latency_spikes(3, 2_000);
    let faulted = tpce(
        ResourceKnobs::paper_full()
            .with_run_secs(6)
            .with_faults(harsh),
    )
    .run();
    assert!(faulted.tps > 0.0, "no starvation under faults");
    assert!(
        faulted.tps < healthy.tps,
        "faults should cost throughput: faulted {} vs healthy {}",
        faulted.tps,
        healthy.tps
    );
}

#[test]
fn disabled_faults_leave_no_trace_and_stay_deterministic() {
    let knobs = ResourceKnobs::paper_full().with_run_secs(4);
    let a = tpce(knobs.clone()).run();
    let b = tpce(knobs).run();
    assert_eq!(a, b);
    assert!(a.fault_events.is_empty());
    assert_eq!(a.retries, 0);
    assert_eq!(a.gave_up, 0);
    assert_eq!(a.deadline_misses, 0);
    assert_eq!(RunClass::of(&Ok(a)), RunClass::Ok);
}

#[test]
fn fault_spec_enables_governor_recovery() {
    let faulted = ResourceKnobs::paper_full().with_faults(brownout());
    let g = faulted.governor();
    assert!(g.fault_recovery);
    assert_eq!(g.io_retry_attempts, 4);
    assert_eq!(g.txn_retry_attempts, 5);
    assert!(!faulted.sim_config().faults.is_empty());

    let healthy = ResourceKnobs::paper_full();
    assert!(!healthy.governor().fault_recovery);
    assert!(healthy.sim_config().faults.is_empty());
}
